"""Legacy setup shim for environments without PEP 517 build isolation."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Patel, Evers & Patt (ISCA 1998): Improving Trace "
        "Cache Effectiveness with Branch Promotion and Trace Packing"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
