#!/usr/bin/env python
"""Promotion threshold study (the paper's Table 2 and Figure 7, one benchmark).

Sweeps the branch bias table's promotion threshold and reports, for one
benchmark, how the effective fetch rate, promotion activity, faulting and
misprediction counts move.  ``plot`` (gnuplot) is the interesting default:
its population of *nearly* biased branches promotes prematurely at low
thresholds and faults — the behaviour the paper calls out.

Run:  python examples/promotion_threshold_study.py [benchmark] [instructions]
"""

import sys

from repro import (
    BASELINE,
    FrontEndSimulator,
    compute_oracle,
    generate_program,
    promotion_with_threshold,
)
from repro.report import format_table


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "plot"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 150_000

    program = generate_program(benchmark)
    oracle = compute_oracle(program, budget)

    base = FrontEndSimulator(program, BASELINE, oracle=oracle).run()
    rows = [["baseline (no promotion)", base.effective_fetch_rate,
             0, 0, 0, base.stats.total_cond_mispredicts]]
    for threshold in (8, 16, 32, 64, 128, 256):
        config = promotion_with_threshold(threshold)
        result = FrontEndSimulator(program, config, oracle=oracle).run()
        rows.append([
            f"threshold = {threshold}",
            result.effective_fetch_rate,
            result.promotions,
            result.demotions,
            result.stats.promoted_faults,
            result.stats.total_cond_mispredicts,
        ])

    print(format_table(
        ["Configuration", "EFR", "Promotions", "Demotions", "Faults",
         "Mispredicted branches"],
        rows,
        title=f"Branch promotion threshold sweep on '{benchmark}' "
              f"({budget} instructions)",
    ))
    print("\nLow thresholds promote prematurely: watch the fault column "
          "fall as the threshold rises (the paper's Figure 7 story for "
          "gnuplot).")


if __name__ == "__main__":
    main()
