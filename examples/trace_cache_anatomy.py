#!/usr/bin/env python
"""Anatomy of a trace cache: population, redundancy, warmup.

Uses the analysis toolkit to show *why* the paper's techniques work on a
given workload:

1. the dynamic branch population (the paper's ">50% strongly biased"
   motivating statistic, run-length promotability);
2. what trace packing does to the cache's contents (instruction
   duplication — the redundancy the paper's Table 4 regulates);
3. the fetch-rate warmup curve.

Run:  python examples/trace_cache_anatomy.py [benchmark]
"""

import sys

from repro import BASELINE, PROMOTION, PROMOTION_PACKING, FrontEndSimulator, generate_program
from repro.analysis import profile_branches, redundancy_report, run_with_timeline
from repro.report import format_bar_chart, format_table


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "compress"
    program = generate_program(benchmark)

    # 1. Branch population.
    population = profile_branches(program, max_instructions=80_000)
    print(f"Branch population of '{benchmark}' "
          f"({population.dynamic_branches} dynamic branches, "
          f"{len(population.sites)} sites):")
    print(f"  strongly biased (>=95%) execution share: "
          f"{100 * population.strongly_biased_fraction():.1f}%"
          f"   (the paper's motivating statistic: >50%)")
    print(f"  promotable at threshold 64:              "
          f"{100 * population.promotable_fraction(64):.1f}%")
    print(format_bar_chart(population.class_mix(),
                           title="  dynamic execution share by behaviour class",
                           fmt="{:6.2f}"))
    print()
    rows = [[f"0x{site.addr:x}", site.executions, f"{site.taken_rate:.2f}",
             site.longest_run, site.classify()]
            for site in population.top_sites(6)]
    print(format_table(["site", "execs", "taken rate", "longest run", "class"],
                       rows, title="  hottest branch sites"))
    print()

    # 2. Trace cache contents under three fill policies.
    print("Trace cache contents after 80k instructions:")
    for label, config in (("baseline (atomic)", BASELINE),
                          ("promotion", PROMOTION),
                          ("promotion+packing", PROMOTION_PACKING)):
        simulator = FrontEndSimulator(program, config, max_instructions=80_000)
        simulator.run()
        report = redundancy_report(simulator.engine.trace_cache)
        print(f"  {label:18} {report.summary()}")
        print(f"  {'':18} promoted/dynamic branch slots: "
              f"{report.promoted_branch_slots}/{report.dynamic_branch_slots}")
    print()

    # 3. Warmup curve.
    timeline = run_with_timeline(program, PROMOTION, max_instructions=80_000,
                                 window=8_000)
    efr = {f"{(i + 1) * 8}k": rate for i, rate in enumerate(timeline.windowed_efr())}
    print(format_bar_chart(efr, title="Effective fetch rate per 8k-instruction window "
                                      "(promotion@64 warming up)", fmt="{:6.2f}"))


if __name__ == "__main__":
    main()
