#!/usr/bin/env python
"""End-to-end IPC on the cycle-level machine (the paper's Figs. 11 and 16).

Runs the full out-of-order machine — checkpoint repair, wrong-path
execution, inactive issue — under three front ends and both memory
schedulers, showing the paper's central finding: the front-end techniques'
gain is capped by the execution core until memory disambiguation is
aggressive.

Run:  python examples/end_to_end_ipc.py [benchmark] [instructions]
"""

import sys

from repro import (
    BASELINE,
    ICACHE,
    PROMOTION_COST_REG,
    CoreConfig,
    MachineConfig,
    generate_program,
    simulate_machine,
)
from repro.report import format_table


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "m88ksim"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 60_000

    program = generate_program(benchmark)
    rows = []
    for core_label, perfect in (("conservative", False), ("perfect disambiguation", True)):
        for fe_label, frontend in (("icache", ICACHE), ("baseline TC", BASELINE),
                                   ("promo+pack", PROMOTION_COST_REG)):
            config = MachineConfig(
                frontend=frontend,
                core=CoreConfig(perfect_disambiguation=perfect),
            )
            result = simulate_machine(program, config, max_instructions=budget)
            rows.append([
                core_label, fe_label, result.ipc,
                result.total_mispredicted_branches,
                result.avg_resolution_time,
                result.cycles,
            ])
            print(f"  ran {fe_label:12} / {core_label:22} "
                  f"IPC={result.ipc:.2f}")

    print()
    print(format_table(
        ["Memory scheduler", "Front end", "IPC", "Mispredicted", "Resolve (cyc)",
         "Cycles"],
        rows,
        title=f"End-to-end performance on '{benchmark}' ({budget} instructions)",
    ))
    print("\nThe paper: promotion+packing gains only ~4% on the conservative "
          "core because misprediction resolution time grows; with perfect "
          "memory disambiguation the gain reaches ~11%.")


if __name__ == "__main__":
    main()
