#!/usr/bin/env python
"""Quickstart: measure what branch promotion and trace packing buy.

Generates the synthetic ``gcc`` workload, runs the oracle-driven front-end
simulator under the paper's five configurations, and prints the effective
fetch rates — a one-benchmark slice of the paper's Figure 10.

Run:  python examples/quickstart.py [benchmark] [instructions]
"""

import sys

from repro import (
    BASELINE,
    ICACHE,
    PACKING,
    PROMOTION,
    PROMOTION_PACKING,
    FrontEndSimulator,
    compute_oracle,
    generate_program,
)
from repro.report import format_table


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 150_000

    print(f"Generating the synthetic '{benchmark}' workload ...")
    program = generate_program(benchmark)
    print(f"  {len(program)} static instructions, "
          f"{len(program.data)} initialized data words")

    print(f"Computing the correct-path stream ({budget} instructions) ...")
    oracle = compute_oracle(program, budget)

    configs = [
        ("icache (reference)", ICACHE),
        ("trace cache (baseline)", BASELINE),
        ("+ trace packing", PACKING),
        ("+ branch promotion", PROMOTION),
        ("+ promotion + packing", PROMOTION_PACKING),
    ]
    rows = []
    baseline_efr = None
    for label, config in configs:
        result = FrontEndSimulator(program, config, oracle=oracle).run()
        efr = result.effective_fetch_rate
        if label.startswith("trace cache"):
            baseline_efr = efr
        change = ("" if baseline_efr is None
                  else f"{100 * (efr / baseline_efr - 1):+.1f}%")
        rows.append([label, efr,
                     f"{100 * result.stats.cond_mispredict_rate:.1f}%",
                     result.promotions, change])

    print()
    print(format_table(
        ["Front end", "Eff. fetch rate", "Mispredict", "Promotions", "vs baseline"],
        rows,
        title=f"Effective fetch rate on '{benchmark}' "
              f"({budget} retired instructions)",
    ))
    print("\nThe paper reports +17% for promotion+packing over the baseline "
          "averaged over 15 benchmarks (our scaled runs land lower; see "
          "EXPERIMENTS.md).")


if __name__ == "__main__":
    main()
