#!/usr/bin/env python
"""Trace-packing policy comparison (the paper's Table 4, one benchmark).

Compares the fill unit's block policies — atomic, unregulated packing,
chunked (n=2/4) and cost-regulated packing — on a big-footprint benchmark
where the redundancy cost matters.  Reports effective fetch rate and
trace-cache behaviour per policy.

Run:  python examples/packing_policies.py [benchmark] [instructions]
"""

import sys
from dataclasses import replace

from repro import (
    PROMOTION,
    FrontEndSimulator,
    compute_oracle,
    generate_program,
)
from repro.report import format_table
from repro.trace.fill_unit import PackingPolicy


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "tex"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 200_000

    program = generate_program(benchmark)
    oracle = compute_oracle(program, budget)

    rows = []
    baseline_misses = None
    for policy in (PackingPolicy.ATOMIC, PackingPolicy.UNREGULATED,
                   PackingPolicy.CHUNK2, PackingPolicy.CHUNK4,
                   PackingPolicy.COST_REGULATED):
        config = replace(PROMOTION, packing=policy)
        result = FrontEndSimulator(program, config, oracle=oracle).run()
        if baseline_misses is None:
            baseline_misses = max(1, result.tc_misses)
        hit_rate = result.tc_hits / max(1, result.tc_hits + result.tc_misses)
        rows.append([
            policy.value,
            result.effective_fetch_rate,
            f"{100 * hit_rate:.1f}%",
            result.tc_misses,
            f"{100 * (result.tc_misses / baseline_misses - 1):+.1f}%",
            result.stats.cache_miss_cycles,
        ])

    print(format_table(
        ["Fill policy", "EFR", "TC hit rate", "TC misses", "miss change",
         "icache stall cycles"],
        rows,
        title=f"Packing policies on '{benchmark}' with promotion@64 "
              f"({budget} instructions)",
    ))
    print("\nUnregulated packing buys fetch rate at the cost of redundancy "
          "misses; cost regulation (the paper's recommendation, used for "
          "its end-to-end results) keeps most of the benefit at a fraction "
          "of the miss inflation.")


if __name__ == "__main__":
    main()
