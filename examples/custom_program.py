#!/usr/bin/env python
"""Simulate a hand-written assembly program through the whole stack.

Shows the library as a general trace-cache laboratory rather than a fixed
benchmark harness: write a program in the simulator ISA, run it through
the functional executor, the front-end simulator, and the full machine,
and inspect what the fill unit built.

Run:  python examples/custom_program.py
"""

from repro import (
    BASELINE,
    PROMOTION,
    FrontEndSimulator,
    MachineConfig,
    assemble,
    simulate_machine,
)

#: A hash-table update loop: one strongly biased branch (hit check), one
#: loop backedge, and a rarely taken overflow path — a miniature of the
#: populations branch promotion feeds on.
SOURCE = """
        .data
table:  .space 64
keys:   .words 3 9 17 25 3 9 40 17 3 25 9 3 17 9 25 3
        .text
main:   ADDI r10, r0, 400          ; iterations
        ADDI r11, r0, 0            ; index
loop:   ANDI r1, r11, 15
        LD r2, keys(r1)            ; key
        ANDI r3, r2, 63
        LD r4, table(r3)           ; bucket
        BNE r4, r0, hit            ; strongly biased once the table warms
        ADDI r5, r5, 1             ; miss path: insert
        ST r2, table(r3)
        JMP next
hit:    ADDI r6, r6, 1
next:   ADDI r11, r11, 1
        ADDI r10, r10, -1
        BNE r10, r0, loop
        HALT
"""


def main() -> None:
    program = assemble(SOURCE, name="hashloop")
    print("Program listing:")
    print(program.listing())
    print()

    for label, config in (("baseline", BASELINE), ("promotion@64", PROMOTION)):
        front = FrontEndSimulator(program, config, max_instructions=None).run()
        print(f"[{label}] effective fetch rate {front.effective_fetch_rate:.2f}, "
              f"{front.stats.fetches} fetches, "
              f"{front.stats.total_cond_mispredicts} mispredicted branches, "
              f"{front.promotions} promotions")

    machine = simulate_machine(program, MachineConfig(frontend=PROMOTION),
                               max_instructions=None)
    print(f"\nFull machine: {machine.retired} instructions in {machine.cycles} "
          f"cycles (IPC {machine.ipc:.2f}); hits={machine.tc_hits} "
          f"misses={machine.tc_misses} in the trace cache")


if __name__ == "__main__":
    main()
