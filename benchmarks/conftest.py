"""Shared infrastructure for the paper-reproduction benchmark harness.

Every ``bench_*`` function regenerates one of the paper's tables or
figures, prints it, saves it under ``benchmarks/output/``, and asserts the
qualitative shape the paper reports.  Timings come from pytest-benchmark
(one round: these are simulations, not microbenchmarks).

Set ``REPRO_QUICK=1`` for a fast pass at quarter-length runs.
"""

import os
import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def strict() -> bool:
    """Full-scale runs assert the paper's quantitative shapes; quick runs
    (REPRO_QUICK=1) only smoke-test structure — promotion and trace-cache
    warmup need the full run lengths."""
    return not os.environ.get("REPRO_QUICK")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def emit():
    """Print a rendered artifact and persist it for EXPERIMENTS.md."""

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


@pytest.fixture(scope="session", autouse=True)
def _announce_scale():
    if os.environ.get("REPRO_QUICK"):
        print("\n[repro] REPRO_QUICK=1: quarter-length simulation runs\n")
    yield


@pytest.fixture(scope="session", autouse=True)
def _cold_cache_if_requested():
    """``REPRO_COLD=1``: purge the persistent result cache up front.

    By default the harness benefits from the on-disk cache (re-running a
    figure after an unrelated edit is instant); set ``REPRO_COLD=1`` when
    the point is to *time* the simulations themselves.
    """
    if os.environ.get("REPRO_COLD"):
        from repro.experiments import clear_caches

        clear_caches(disk=True)
        print("\n[repro] REPRO_COLD=1: purged the on-disk result cache\n")
    yield
