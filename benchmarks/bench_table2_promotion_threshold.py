"""Table 2: average effective fetch rate vs promotion threshold."""

from conftest import run_once

from repro.experiments import table2_rows
from repro.report import format_table


def bench_table2_promotion_threshold(benchmark, emit):
    rows = run_once(benchmark, table2_rows)
    text = format_table(
        ["Configuration", "Ave effective fetch rate"],
        [[r["configuration"], r["efr"]] for r in rows],
        title="Table 2. Effective fetch rate with and without branch promotion\n"
              "(paper: icache 5.11, baseline 10.67, threshold=64 11.40)",
    )
    emit("table2", text)
    efr = {r["configuration"]: r["efr"] for r in rows}
    # The trace cache roughly doubles the icache's fetch rate.
    assert efr["baseline"] > 1.5 * efr["icache"]
    # Promotion at the paper's default threshold does not hurt on average.
    assert efr["threshold = 64"] > 0.98 * efr["baseline"]
    # The sweep is flat-ish: no threshold collapses.
    values = [v for k, v in efr.items() if k.startswith("threshold")]
    assert max(values) - min(values) < 0.15 * efr["baseline"]
