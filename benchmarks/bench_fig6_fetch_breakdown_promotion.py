"""Figure 6: fetch-size breakdown for gcc with branch promotion @ 64."""

from conftest import run_once

from repro.config import BASELINE, PROMOTION
from repro.experiments import fetch_breakdown
from repro.frontend.stats import FetchReason
from repro.report import format_bar_chart, format_histogram


def bench_fig6_fetch_breakdown_promotion(benchmark, emit):
    promo = run_once(benchmark, fetch_breakdown, "gcc", PROMOTION)
    base = fetch_breakdown("gcc", BASELINE)  # cached from fig4 when warm
    sizes = {}
    for (size, _reason), frac in promo["histogram"].items():
        sizes[size] = sizes.get(size, 0.0) + frac
    text = "\n\n".join([
        format_histogram(sizes, title="Figure 6. Fetch width breakdown, gcc, promotion@64"),
        format_bar_chart({r.value: f for r, f in promo["reasons"].items()},
                         title="Termination reasons (fraction of fetches)",
                         fmt="{:6.3f}"),
        f"Average fetch size: {promo['avg']:.2f} vs baseline {base['avg']:.2f}"
        " (paper: 10.24 vs 9.64)",
    ])
    emit("fig6", text)
    # The paper's Figure 4 -> 6 shift: fewer fetches end at the branch
    # limit once strongly biased branches are promoted.
    base_brs = base["reasons"].get(FetchReason.MAXIMUM_BRS, 0.0)
    promo_brs = promo["reasons"].get(FetchReason.MAXIMUM_BRS, 0.0)
    assert promo_brs <= base_brs + 1e-9
    assert promo["avg"] > 0.97 * base["avg"]
