"""Figure 7: % change in mispredicted conditional branches under promotion."""

from conftest import run_once

from repro.experiments import figure7_rows
from repro.report import format_table


def bench_fig7_mispred_change(benchmark, emit):
    rows = run_once(benchmark, figure7_rows)
    text = format_table(
        ["Benchmark", "thr=64 (%)", "thr=128 (%)", "thr=256 (%)"],
        [[r["benchmark"], r["threshold=64"], r["threshold=128"], r["threshold=256"]]
         for r in rows],
        title="Figure 7. Percent change in mispredicted conditional branches\n"
              "vs baseline (faults count as mispredictions; paper: mostly\n"
              "negative, gcc/go about -20% at threshold 64)",
    )
    emit("fig7", text)
    # Promotion reduces mispredictions for a majority of benchmarks.
    improved = sum(1 for r in rows if r["threshold=64"] < 0)
    assert improved >= len(rows) // 2
    # Average change is a reduction.
    mean64 = sum(r["threshold=64"] for r in rows) / len(rows)
    assert mean64 < 2.0
