"""Figure 15: % change in mispredicted-branch resolution time."""

from conftest import run_once

from repro.experiments import figure15_rows
from repro.report import format_table


def bench_fig15_resolution_time(benchmark, emit):
    rows = run_once(benchmark, figure15_rows)
    text = format_table(
        ["Benchmark", "baseline (cyc)", "promo+pack (cyc)", "change (%)"],
        [[r["benchmark"], r["baseline_cycles"], r["new_cycles"], r["pct_change"]]
         for r in rows],
        title="Figure 15. Mispredicted-branch resolution time\n"
              "(paper: +8% on average — branches fetched earlier wait longer\n"
              "for operands and resources; the execution core is the bottleneck)",
    )
    mean = sum(r["pct_change"] for r in rows) / len(rows)
    emit("fig15", text + f"\n\nAverage change: {mean:+.1f}% (paper: +8%)")
    # Resolution times are pipeline-scale numbers.
    for r in rows:
        assert 3.0 < r["baseline_cycles"] < 60.0
    # A meaningful set of benchmarks sees longer resolution with the
    # higher-bandwidth front end.
    increased = sum(1 for r in rows if r["pct_change"] > 0)
    assert increased >= len(rows) // 3
