"""Front-end fetch speed: compiled fast stack vs the frozen reference.

Measures the complete front-end simulation — fetch engine, predictors,
fill unit, trace cache — on the Fig-4/6-class grid (the fetch-breakdown
benchmarks x {baseline, promotion}), running each point once on the fast
stack (``build_engine(..., fast=True)``: array-backed predictors +
compiled segment fetch plans) and once on the frozen reference stack
(``fast=False``), and asserting the serialized results are
byte-identical before recording the speedup.  Timings land in
``output/BENCH_frontend.json``.

The packing configuration is recorded as extra rows (parity asserted,
speedup tracked) but excluded from the asserted grid: packing keeps the
fill unit's merge state from converging at these run lengths, so its
speedup is warmup-bound and noisier than the Fig-4/6 cells.

Per-point jitter on a shared 1-core container is real; the grid total is
the stable number, so only it carries the >= 2x floor, and each point is
a best-of-N minimum.
"""

import json
import os
import time

from conftest import OUTPUT_DIR, run_once, strict

from repro.config import BASELINE, PROMOTION, PROMOTION_PACKING
from repro.experiments import runner
from repro.experiments.cachekey import canonical_json
from repro.experiments.serialize import frontend_result_to_dict
from repro.frontend.build import build_engine
from repro.frontend.simulator import FrontEndSimulator

#: Fig-4/6-class grid: the fetch-breakdown figures run these benchmarks
#: under the baseline (Fig 4) and promotion (Fig 6) front ends.
GRID_BENCHMARKS = ("compress", "gcc")
GRID_CONFIGS = (("baseline", BASELINE), ("promotion", PROMOTION))
#: Recorded but outside the asserted grid (see module docstring).
EXTRA_CONFIGS = (("promotion_packing", PROMOTION_PACKING),)
#: Best-of-N minima per point.
REPEATS = 2


def _time_frontend() -> dict:
    report = {"schema": 1, "grid": [], "extra": [], "grid_total": {}}
    os.environ["REPRO_DISK_CACHE"] = "0"
    try:
        runner.clear_caches()
        total_ref = total_fast = 0.0
        for name in GRID_BENCHMARKS:
            program = runner.get_program(name)
            n = runner.default_length(name)
            oracle = runner.get_oracle(name, n)

            def run_point(config, fast):
                start = time.perf_counter()
                engine = build_engine(program, config, fast=fast)
                result = FrontEndSimulator(program, config, oracle=oracle,
                                           engine=engine).run()
                return time.perf_counter() - start, result

            for rows, configs in (("grid", GRID_CONFIGS),
                                  ("extra", EXTRA_CONFIGS)):
                for label, config in configs:
                    fast_runs = [run_point(config, True)
                                 for _ in range(REPEATS)]
                    ref_runs = [run_point(config, False)
                                for _ in range(REPEATS)]
                    fast_s, fast_result = min(fast_runs, key=lambda r: r[0])
                    ref_s, ref_result = min(ref_runs, key=lambda r: r[0])
                    identical = (
                        canonical_json(frontend_result_to_dict(fast_result))
                        == canonical_json(frontend_result_to_dict(ref_result)))
                    if rows == "grid":
                        total_ref += ref_s
                        total_fast += fast_s
                    report[rows].append({
                        "benchmark": name,
                        "config": label,
                        "instructions": n,
                        "reference_seconds": ref_s,
                        "fast_seconds": fast_s,
                        "speedup": ref_s / fast_s if fast_s else 0.0,
                        "inst_per_sec":
                            fast_result.instructions_retired / fast_s
                            if fast_s else 0.0,
                        "results_identical": identical,
                    })
        report["grid_total"] = {
            "reference_seconds": total_ref,
            "fast_seconds": total_fast,
            "speedup": total_ref / total_fast if total_fast else 0.0,
        }
    finally:
        os.environ.pop("REPRO_DISK_CACHE", None)
    return report


def bench_frontend_fetch(benchmark, emit):
    report = run_once(benchmark, _time_frontend)

    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_frontend.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")

    lines = ["Front end: compiled fast stack vs frozen reference "
             "(Fig-4/6-class grid)"]
    for row in report["grid"] + report["extra"]:
        tag = "" if row in report["grid"] else "  [extra]"
        lines.append(
            f"  {row['benchmark']:<10} {row['config']:<18} "
            f"ref {row['reference_seconds']:5.2f}s  "
            f"fast {row['fast_seconds']:5.2f}s  "
            f"{row['speedup']:4.2f}x  "
            f"({row['inst_per_sec']:,.0f} inst/s, "
            f"identical={row['results_identical']}){tag}")
    total = report["grid_total"]
    lines.append(f"  grid total                    "
                 f"ref {total['reference_seconds']:5.2f}s  "
                 f"fast {total['fast_seconds']:5.2f}s  "
                 f"{total['speedup']:4.2f}x")
    emit("BENCH_frontend", "\n".join(lines))

    # The optimization contract: byte-identical serialized results on
    # every point (including the extra rows), and the fast stack at least
    # twice as fast end to end on the Fig-4/6 grid.  Quick runs
    # (REPRO_QUICK=1) skip the floor — quarter-length runs shift the
    # warmup share — but still pin parity.
    assert all(row["results_identical"]
               for row in report["grid"] + report["extra"])
    if strict():
        assert total["speedup"] >= 2.0
