"""Figure 12: where every fetch cycle goes (promotion+packing machine)."""

from conftest import run_once

from repro.experiments import figure12_rows
from repro.frontend.stats import CycleCategory
from repro.report import format_table


def bench_fig12_cycle_accounting(benchmark, emit):
    rows = run_once(benchmark, figure12_rows)
    categories = [c.value for c in CycleCategory]
    text = format_table(
        ["Benchmark"] + categories,
        [[r["benchmark"]] + [r[c] for c in categories] for r in rows],
        title="Figure 12. Fetch-cycle accounting (%), promotion + cost-regulated\n"
              "packing machine (paper: branch mispredictions dominate the losses\n"
              "for all but one benchmark)",
    )
    emit("fig12", text)
    useful = CycleCategory.USEFUL_FETCH.value
    branch = CycleCategory.BRANCH_MISSES.value
    for r in rows:
        assert r[useful] > 5.0
        # Fractions are percentages summing to ~100 (checked in tests);
        # here assert the paper's qualitative claim: branch losses are the
        # biggest single loss category for most benchmarks.
    losses = [CycleCategory.BRANCH_MISSES, CycleCategory.CACHE_MISSES,
              CycleCategory.FULL_WINDOW, CycleCategory.TRAPS,
              CycleCategory.MISFETCHES]
    branch_dominant = sum(
        1 for r in rows
        if r[branch] == max(r[c.value] for c in losses)
    )
    assert branch_dominant >= len(rows) // 2
