"""Engine throughput: raw simulation speed and result-cache behaviour.

Unlike the figure/table benchmarks this one measures the *simulator*, not
the simulated machine: correct-path instructions simulated per second for
the oracle executor and the front-end simulator, plus the cost of a warm
(disk-cached) result fetch.  Timings land in ``output/BENCH_engine.json``
so the performance trajectory is tracked across changes.

Reference point: the seed implementation simulated ~100k front-end
instructions/second on the 1-core container this repo is developed in.
No absolute-throughput assertion is made (machines differ); the JSON is
the record.
"""

import json
import os
import time

from conftest import OUTPUT_DIR, run_once

from repro.config import BASELINE, PROMOTION, PROMOTION_PACKING, MachineConfig
from repro.experiments import columns
from repro.trace.bias_table import BranchBiasTable
from repro.core.machine import Machine
from repro.core.machine_event import Machine as EventMachine
from repro.core.machine_reference import Machine as ReferenceMachine
from repro.experiments import diskcache
from repro.experiments import runner
from repro.experiments import tracefile
from repro.experiments.cachekey import canonical_json
from repro.experiments.serialize import machine_result_to_dict
from repro.frontend.build import build_engine
from repro.frontend.simulator import FrontEndSimulator, compute_oracle
from repro.isa.executor import run_oracle

BENCHMARKS = ("compress", "gcc")
CONFIGS = (("baseline", BASELINE), ("promotion_packing", PROMOTION_PACKING))

#: Figure-11-class machine grid for the core speed record: one benchmark,
#: the paper's three front-end configurations, warmed front end, machine
#: window at the runner's machine length.
MACHINE_GRID_BENCHMARK = "compress"
MACHINE_CONFIGS = (
    ("baseline", BASELINE),
    ("promotion", PROMOTION),
    ("promotion_packing", PROMOTION_PACKING),
)
#: Best-of-N minima: on a 1-core container single timings are noisy, the
#: minimum of a few adjacent runs is the stable estimator.
MACHINE_REPEATS = 2

#: Timing-memoization A/B benchmarks: the grid benchmark plus the two
#: workloads with the highest measured steady-state context recurrence
#: (the paper's loop-structure argument predicts interpreter-like
#: codes recur most; ``perl`` is the repo's best case).
MEMO_BENCHMARKS = ("compress", "perl", "go")


def _scalar_census(oracle, program) -> dict:
    """The row-by-row replay census :func:`columns.oracle_census` replaces."""
    class_counts = [0] * 10
    cond = taken_count = blocks = 0
    touched = set()
    for inst, taken, _next_pc in oracle:
        op = inst.op
        touched.add(inst.addr)
        class_counts[op.commit_code] += 1
        if taken is not None:
            cond += 1
            if taken:
                taken_count += 1
        if op.ends_fetch_block:
            blocks += 1
    return {
        "dynamic_instructions": len(oracle),
        "cond_branches": cond,
        "taken_branches": taken_count,
        "fetch_blocks": blocks,
        "static_touched": len(touched),
        "class_counts": class_counts,
    }


def _best_of(fn, repeats=3):
    best_s, value = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if best_s is None or elapsed < best_s:
            best_s = elapsed
    return best_s, value


def _time_vector() -> dict:
    """Scalar-vs-columnar throughput rows (the ``REPRO_VECTOR`` ledger).

    Each row times the reference per-record walk against its columnar
    replacement on the same stream and records the speedup — after
    asserting both produce identical results, so a row can never get
    fast by getting wrong.
    """
    section = {"enabled": columns.enabled(), "rows": []}
    if not section["enabled"]:
        return section
    from repro.workloads.stats import (_characterize_columns,
                                       _characterize_scalar)

    def add_row(kind, benchmark, items, scalar_fn, vector_fn):
        scalar_s, scalar_value = _best_of(scalar_fn)
        vector_s, vector_value = _best_of(vector_fn)
        assert scalar_value == vector_value, f"{kind}/{benchmark} diverged"
        section["rows"].append({
            "kind": kind,
            "benchmark": benchmark,
            "items": items,
            "scalar_seconds": scalar_s,
            "vector_seconds": vector_s,
            "speedup": scalar_s / vector_s if vector_s else 0.0,
        })

    for name in BENCHMARKS:
        program = runner.get_program(name)
        n = runner.default_length(name)
        rows = run_oracle(program, n)
        oracle = tracefile.as_columns(rows)
        addrs = columns.as_u32(oracle.addrs)
        dirs = columns.as_u8(oracle.dirs)
        columns.program_flags(program)  # build outside the timed region

        add_row("oracle_replay", name, len(rows),
                lambda: _scalar_census(rows, program),
                lambda: columns.oracle_census(addrs, dirs, program))
        add_row("workload_stats", name, n,
                lambda: _characterize_scalar(program, n),
                lambda: _characterize_columns(program, n))
        add_row("segmentation", name, len(rows),
                lambda: _scalar_block_histogram(rows),
                lambda: columns.block_size_counter(addrs, program))

        mask = columns.branch_mask(dirs)
        pcs = addrs[mask]
        takens = dirs[mask]
        pcs_list = pcs.tolist()
        takens_list = [bool(t) for t in takens.tolist()]

        def scalar_bias():
            table = BranchBiasTable(entries=1024, threshold=16)
            update = table.update_fast
            flags = bytes(update(pc, taken)
                          for pc, taken in zip(pcs_list, takens_list))
            return flags, table.promotions, table.demotions

        def vector_bias():
            table = BranchBiasTable(entries=1024, threshold=16)
            flags = table.retire_bulk(pcs, takens)
            return flags, table.promotions, table.demotions

        add_row("bias_counting", name, len(pcs_list),
                scalar_bias, vector_bias)
    return section


def _scalar_block_histogram(oracle):
    """Per-record fetch-block segmentation (the stats.py reference loop)."""
    from collections import Counter

    histogram = Counter()
    block_len = 0
    for inst, _taken, _next_pc in oracle:
        block_len += 1
        if inst.op.ends_fetch_block:
            histogram[min(block_len, 16)] += 1
            block_len = 0
    return histogram


def _time_engine() -> dict:
    report = {"schema": 2, "runs": [], "oracle": [], "result_cache": {},
              "vector": {}}

    # Raw simulation throughput: compute in-process, disk cache bypassed
    # so a warm cache cannot fake engine speed.
    os.environ["REPRO_DISK_CACHE"] = "0"
    try:
        runner.clear_caches()
        for name in BENCHMARKS:
            program = runner.get_program(name)
            n = runner.default_length(name)
            start = time.perf_counter()
            oracle = run_oracle(program, n)
            elapsed = time.perf_counter() - start
            report["oracle"].append({
                "benchmark": name,
                "instructions": len(oracle),
                "seconds": elapsed,
                "inst_per_sec": len(oracle) / elapsed if elapsed else 0.0,
            })
            for label, config in CONFIGS:
                start = time.perf_counter()
                result = FrontEndSimulator(program, config, oracle=oracle).run()
                elapsed = time.perf_counter() - start
                accesses = result.tc_hits + result.tc_misses
                report["runs"].append({
                    "benchmark": name,
                    "config": label,
                    "instructions": result.instructions_retired,
                    "cycles": result.cycles,
                    "seconds": elapsed,
                    "inst_per_sec":
                        result.instructions_retired / elapsed if elapsed else 0.0,
                    "effective_fetch_rate": result.effective_fetch_rate,
                    "tc_hit_rate": result.tc_hits / accesses if accesses else 0.0,
                })
    finally:
        os.environ.pop("REPRO_DISK_CACHE", None)

    # Result-cache round trip: one cold store + one warm load.
    name, (_label, config) = BENCHMARKS[0], CONFIGS[0]
    n = runner.default_length(name)
    runner.clear_caches()
    start = time.perf_counter()
    runner.frontend_result(name, config, n)  # computes, stores to disk
    report["result_cache"]["cold_seconds"] = time.perf_counter() - start
    runner.clear_caches()  # memos only: next call must hit the disk
    start = time.perf_counter()
    runner.frontend_result(name, config, n)
    warm = time.perf_counter() - start
    report["result_cache"]["warm_seconds"] = warm
    report["result_cache"]["disk_enabled"] = diskcache.enabled()
    report["result_cache"].update(diskcache.stats())

    # Scalar-vs-columnar rows (oracle replay census, workload statistics,
    # fetch-block segmentation, bias-table retirement counting).
    os.environ["REPRO_DISK_CACHE"] = "0"
    try:
        runner.clear_caches()
        report["vector"] = _time_vector()
    finally:
        os.environ.pop("REPRO_DISK_CACHE", None)
    return report


def bench_engine_throughput(benchmark, emit):
    report = run_once(benchmark, _time_engine)

    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_engine.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")

    lines = ["Engine throughput (correct-path instructions simulated / second)"]
    for row in report["oracle"]:
        lines.append(f"  oracle     {row['benchmark']:<10}"
                     f"{row['inst_per_sec']:>12,.0f} inst/s")
    for row in report["runs"]:
        lines.append(f"  {row['config']:<10} {row['benchmark']:<10}"
                     f"{row['inst_per_sec']:>12,.0f} inst/s  "
                     f"(tc hit rate {row['tc_hit_rate']:.2f})")
    cache = report["result_cache"]
    lines.append(f"  result cache: cold {cache['cold_seconds']:.2f}s -> "
                 f"warm {cache['warm_seconds']:.3f}s "
                 f"({cache['entries']} entries on disk)")
    vector = report["vector"]
    if vector["enabled"]:
        lines.append("Vectorized columns vs scalar reference (REPRO_VECTOR)")
        for row in vector["rows"]:
            lines.append(
                f"  {row['kind']:<16} {row['benchmark']:<10}"
                f" scalar {row['scalar_seconds']*1e3:8.1f}ms ->"
                f" vector {row['vector_seconds']*1e3:8.1f}ms "
                f" {row['speedup']:6.1f}x")
    else:
        lines.append("Vectorized columns: disabled (no numpy / REPRO_VECTOR=0)")
    emit("BENCH_engine", "\n".join(lines))

    # Structural assertions only — no machine-dependent throughput floors.
    assert all(row["inst_per_sec"] > 0 for row in report["runs"])
    for row in report["runs"]:
        if row["config"] == "baseline":
            assert row["tc_hit_rate"] > 0.1
    if cache["disk_enabled"]:
        # A warm fetch deserializes JSON instead of simulating: it must be
        # far cheaper than the cold run it replaces.
        assert cache["warm_seconds"] < cache["cold_seconds"] / 2
    if vector["enabled"]:
        # The vectorization contract: replacing a per-record Python walk
        # with array passes must be a decisive win, not a wash.  2x is a
        # deliberately loose floor (measured speedups are far higher);
        # equality of results is asserted inside _time_vector itself.
        for row in vector["rows"]:
            if row["kind"] in ("oracle_replay", "workload_stats"):
                assert row["speedup"] >= 2.0, row


def _time_machine() -> dict:
    """Machine-core speed record: three generations of the same machine.

    Runs the figure-11-class machine grid (one benchmark, the paper's three
    front-end configurations, warmed front end) end to end — front-end
    warmup plus machine window — once per core per repeat over all three
    cores (the seed reference, the frozen event-driven core it was replaced
    by, and the current columnar core), keeps the best-of-N minimum per
    configuration, and asserts the serialized results are byte-identical
    across all three before recording the speedups.  A second section times
    :func:`runner.run_machine_multi`: the same three-config grid as one
    batched pass over a shared oracle stream versus three isolated cold
    points, which is where a cold multi-config grid actually saves time.
    """
    report = {"schema": 3, "grid": [], "grid_total": {},
              "multi_config": {}, "memo": {}, "trace_files": {}}
    os.environ["REPRO_DISK_CACHE"] = "0"
    try:
        runner.clear_caches()
        name = MACHINE_GRID_BENCHMARK
        program = runner.get_program(name)
        warm_n = runner.default_length(name)
        n = runner.machine_length(name)
        oracle = runner.get_oracle(name, warm_n)

        def run_point(machine_cls, config):
            start = time.perf_counter()
            engine = build_engine(program, config.frontend,
                                  memory_config=config.memory)
            FrontEndSimulator(program, config.frontend, oracle=oracle,
                              engine=engine).run()
            result = machine_cls(program, config, max_instructions=n,
                                 engine=engine).run()
            return time.perf_counter() - start, result

        def best_point(machine_cls, config):
            runs = [run_point(machine_cls, config)
                    for _ in range(MACHINE_REPEATS)]
            seconds, result = min(runs, key=lambda r: r[0])
            return seconds, canonical_json(machine_result_to_dict(result)), \
                result

        total_ref = total_event = total_col = 0.0
        for label, frontend in MACHINE_CONFIGS:
            config = MachineConfig(frontend=frontend)
            col_s, col_json, col_result = best_point(Machine, config)
            event_s, event_json, _ = best_point(EventMachine, config)
            ref_s, ref_json, _ = best_point(ReferenceMachine, config)
            identical = col_json == event_json == ref_json
            total_ref += ref_s
            total_event += event_s
            total_col += col_s
            report["grid"].append({
                "benchmark": name,
                "config": label,
                "machine_instructions": n,
                "warmup_instructions": warm_n,
                "reference_seconds": ref_s,
                "event_seconds": event_s,
                "columnar_seconds": col_s,
                "speedup_vs_reference": ref_s / col_s if col_s else 0.0,
                "speedup_vs_event": event_s / col_s if col_s else 0.0,
                "machine_inst_per_sec": col_result.retired / col_s
                if col_s else 0.0,
                "ipc": col_result.ipc,
                "cycles": col_result.cycles,
                "results_identical": identical,
            })
        report["grid_total"] = {
            "reference_seconds": total_ref,
            "event_seconds": total_event,
            "columnar_seconds": total_col,
            "speedup_vs_reference": total_ref / total_col
            if total_col else 0.0,
            "speedup_vs_event": total_event / total_col
            if total_col else 0.0,
        }

        # One-pass multi-config grid: with caches genuinely cold (no disk
        # results, no trace files), three isolated points each pay their
        # own functional oracle execution; the batched pass pays it once.
        os.environ["REPRO_TRACE_FILES"] = "0"
        try:
            configs = [MachineConfig(frontend=f) for _, f in MACHINE_CONFIGS]
            point_jsons = []
            point_total = 0.0
            for config in configs:
                runner.clear_caches()
                start = time.perf_counter()
                result = runner.machine_result(name, config)
                point_total += time.perf_counter() - start
                point_jsons.append(
                    canonical_json(machine_result_to_dict(result)))
            runner.clear_caches()
            start = time.perf_counter()
            batched = runner.run_machine_multi(name, configs)
            batched_s = time.perf_counter() - start
            batched_jsons = [canonical_json(machine_result_to_dict(r))
                             for r in batched]
            report["multi_config"] = {
                "benchmark": name,
                "configs": [label for label, _ in MACHINE_CONFIGS],
                "per_point_seconds": point_total,
                "batched_seconds": batched_s,
                "amortization_speedup": point_total / batched_s
                if batched_s else 0.0,
                "results_identical": batched_jsons == point_jsons,
            }
        finally:
            os.environ.pop("REPRO_TRACE_FILES", None)

        # Timing-memoization A/B: the same warmed point with the memo
        # layer off vs on, interleaved best-of-N after one discarded
        # warmup run so neither mode pays one-time process setup.  The
        # honest record: wall-clock speedup, hit rate, and the bailout
        # accounting that explains any shortfall (no speedup floor is
        # asserted — the hit-rate row is the explanation the trajectory
        # tracks; identity is the hard contract).
        from repro.core import memo as machine_memo
        report["memo"] = {"knob": "REPRO_MACHINE_MEMO", "rows": []}
        memo_prev = os.environ.get("REPRO_MACHINE_MEMO")
        try:
            for bench in MEMO_BENCHMARKS:
                prog = runner.get_program(bench)
                m_n = runner.machine_length(bench)
                m_oracle = runner.get_oracle(bench,
                                             runner.default_length(bench))
                config = MachineConfig(frontend=PROMOTION_PACKING)

                def memo_point(flag):
                    os.environ["REPRO_MACHINE_MEMO"] = flag
                    machine_memo.reset_tables()
                    start = time.perf_counter()
                    engine = build_engine(prog, config.frontend,
                                          memory_config=config.memory)
                    FrontEndSimulator(prog, config.frontend,
                                      oracle=m_oracle, engine=engine).run()
                    result = Machine(prog, config, max_instructions=m_n,
                                     engine=engine).run()
                    return time.perf_counter() - start, result

                memo_point("0")  # discarded process warmup
                runs = [(memo_point("0"), memo_point("1"))
                        for _ in range(MACHINE_REPEATS)]
                off_s = min(r[0][0] for r in runs)
                on_s = min(r[1][0] for r in runs)
                off_result = runs[0][0][1]
                on_result = runs[0][1][1]
                stats = on_result.memo_stats or {}
                lookups = stats.get("hits", 0) + stats.get("misses", 0)
                report["memo"]["rows"].append({
                    "benchmark": bench,
                    "config": "promotion_packing",
                    "machine_instructions": m_n,
                    "off_seconds": off_s,
                    "memo_seconds": on_s,
                    "speedup": off_s / on_s if on_s else 0.0,
                    "hits": stats.get("hits", 0),
                    "misses": stats.get("misses", 0),
                    "bailouts": stats.get("bailouts", 0),
                    "lookups": lookups,
                    "hit_rate": stats.get("hits", 0) / lookups
                    if lookups else 0.0,
                    "cycles_fast_forwarded":
                        stats.get("cycles_fast_forwarded", 0),
                    "instructions_replayed":
                        stats.get("instructions_replayed", 0),
                    "memo_inst_per_sec": on_result.retired / on_s
                    if on_s else 0.0,
                    "results_identical":
                        canonical_json(machine_result_to_dict(on_result)) ==
                        canonical_json(machine_result_to_dict(off_result)),
                })
        finally:
            if memo_prev is None:
                os.environ.pop("REPRO_MACHINE_MEMO", None)
            else:
                os.environ["REPRO_MACHINE_MEMO"] = memo_prev
            machine_memo.reset_tables()
    finally:
        os.environ.pop("REPRO_DISK_CACHE", None)

    # Trace-file round trip: cold functional execution + binary store vs a
    # warm mmap load of the same oracle stream (best-of-3 minima each).
    runner.clear_caches(disk=True)
    name = MACHINE_GRID_BENCHMARK
    program = runner.get_program(name)
    n = runner.default_length(name)

    def _best_of(fn, repeats=3):
        best_s, value = None, None
        for _ in range(repeats):
            start = time.perf_counter()
            value = fn()
            elapsed = time.perf_counter() - start
            if best_s is None or elapsed < best_s:
                best_s = elapsed
        return best_s, value

    compute_s, oracle = _best_of(lambda: compute_oracle(program, n))
    store_s, stored = _best_of(lambda: tracefile.store_oracle(name, n, oracle))
    load_s, loaded = _best_of(lambda: tracefile.load_oracle(name, n, program))
    report["trace_files"] = {
        "enabled": tracefile.enabled(),
        "instructions": n,
        "cold_compute_seconds": compute_s,
        "cold_store_seconds": store_s,
        "warm_load_seconds": load_s,
        "replay_speedup": (compute_s / load_s) if load_s else 0.0,
        "stored": stored is not None,
        "loaded": loaded is not None and len(loaded) == n,
    }
    return report


def bench_machine_core(benchmark, emit):
    report = run_once(benchmark, _time_machine)

    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_machine.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")

    lines = ["Machine core: columnar vs event-driven vs seed reference "
             f"({MACHINE_GRID_BENCHMARK} machine grid, warmed front end)"]
    for row in report["grid"]:
        lines.append(
            f"  {row['config']:<18} ref {row['reference_seconds']:5.2f}s  "
            f"event {row['event_seconds']:5.2f}s  "
            f"columnar {row['columnar_seconds']:5.2f}s  "
            f"{row['speedup_vs_reference']:4.2f}x vs ref  "
            f"({row['machine_inst_per_sec']:,.0f} machine inst/s, "
            f"identical={row['results_identical']})")
    total = report["grid_total"]
    lines.append(f"  grid total         ref {total['reference_seconds']:5.2f}s"
                 f"  event {total['event_seconds']:5.2f}s  "
                 f"columnar {total['columnar_seconds']:5.2f}s  "
                 f"{total['speedup_vs_reference']:4.2f}x vs ref, "
                 f"{total['speedup_vs_event']:4.2f}x vs event")
    multi = report["multi_config"]
    lines.append(f"  multi-config grid  {len(multi['configs'])} cold points "
                 f"{multi['per_point_seconds']:5.2f}s -> one-pass batch "
                 f"{multi['batched_seconds']:5.2f}s  "
                 f"{multi['amortization_speedup']:4.2f}x  "
                 f"(identical={multi['results_identical']})")
    for row in report["memo"]["rows"]:
        lines.append(
            f"  memo {row['benchmark']:<13} off {row['off_seconds']:5.2f}s  "
            f"on {row['memo_seconds']:5.2f}s  {row['speedup']:4.2f}x  "
            f"hit rate {row['hit_rate']:6.1%} "
            f"({row['hits']}/{row['lookups']} lookups, "
            f"{row['bailouts']} bailouts)  "
            f"{row['memo_inst_per_sec']:,.0f} inst/s  "
            f"(identical={row['results_identical']})")
    tf = report["trace_files"]
    if tf["enabled"]:
        lines.append(
            f"  oracle trace file: compute {tf['cold_compute_seconds']:.2f}s"
            f" + store {tf['cold_store_seconds']:.3f}s -> "
            f"mmap load {tf['warm_load_seconds']:.3f}s "
            f"({tf['replay_speedup']:,.0f}x replay speedup)")
    emit("BENCH_machine", "\n".join(lines))

    # The optimization contract: byte-identical results across all three
    # cores, the columnar grid well ahead of the seed reference and no
    # worse than parity-with-noise against the frozen event core, and the
    # batched multi-config pass beating isolated cold points.  (Per-config
    # jitter on a shared 1-core container is real; grid totals are the
    # stable numbers, so only they carry floors.)
    assert all(row["results_identical"] for row in report["grid"])
    assert total["speedup_vs_reference"] >= 1.5
    assert total["speedup_vs_event"] >= 0.7
    assert multi["results_identical"]
    # The batch shares one program build and one functional oracle
    # execution across the grid; three isolated cold points pay three.
    # That shared slice is small next to per-config warmup+window at this
    # scale, so the floor only requires the batch not to *lose* (with a
    # jitter allowance); the measured margin is the record.
    assert multi["batched_seconds"] <= multi["per_point_seconds"] * 1.10
    # Memo rows: identity is the hard contract; the speedup column is an
    # honest record, not a floor (measured hit spans are one cycle deep
    # on these workloads, so the layer is bounded-overhead rather than a
    # win — the hit-rate/bailout columns are the explanation).  The
    # run-level give-up must keep the overhead bounded.
    memo_rows = report["memo"]["rows"]
    assert memo_rows, "memo A/B section must run"
    assert all(row["results_identical"] for row in memo_rows)
    assert any(row["lookups"] > 0 for row in memo_rows)
    if tf["enabled"]:
        assert tf["stored"] and tf["loaded"]
        # Replaying from the binary trace must beat functional
        # re-execution (its whole point); the margin is what the record
        # in BENCH_machine.json tracks over time.
        assert tf["warm_load_seconds"] < tf["cold_compute_seconds"]
