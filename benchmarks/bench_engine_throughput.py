"""Engine throughput: raw simulation speed and result-cache behaviour.

Unlike the figure/table benchmarks this one measures the *simulator*, not
the simulated machine: correct-path instructions simulated per second for
the oracle executor and the front-end simulator, plus the cost of a warm
(disk-cached) result fetch.  Timings land in ``output/BENCH_engine.json``
so the performance trajectory is tracked across changes.

Reference point: the seed implementation simulated ~100k front-end
instructions/second on the 1-core container this repo is developed in.
No absolute-throughput assertion is made (machines differ); the JSON is
the record.
"""

import json
import os
import time

from conftest import OUTPUT_DIR, run_once

from repro.config import BASELINE, PROMOTION_PACKING
from repro.experiments import diskcache
from repro.experiments import runner
from repro.frontend.simulator import FrontEndSimulator
from repro.isa.executor import run_oracle

BENCHMARKS = ("compress", "gcc")
CONFIGS = (("baseline", BASELINE), ("promotion_packing", PROMOTION_PACKING))


def _time_engine() -> dict:
    report = {"schema": 1, "runs": [], "oracle": [], "result_cache": {}}

    # Raw simulation throughput: compute in-process, disk cache bypassed
    # so a warm cache cannot fake engine speed.
    os.environ["REPRO_DISK_CACHE"] = "0"
    try:
        runner.clear_caches()
        for name in BENCHMARKS:
            program = runner.get_program(name)
            n = runner.default_length(name)
            start = time.perf_counter()
            oracle = run_oracle(program, n)
            elapsed = time.perf_counter() - start
            report["oracle"].append({
                "benchmark": name,
                "instructions": len(oracle),
                "seconds": elapsed,
                "inst_per_sec": len(oracle) / elapsed if elapsed else 0.0,
            })
            for label, config in CONFIGS:
                start = time.perf_counter()
                result = FrontEndSimulator(program, config, oracle=oracle).run()
                elapsed = time.perf_counter() - start
                accesses = result.tc_hits + result.tc_misses
                report["runs"].append({
                    "benchmark": name,
                    "config": label,
                    "instructions": result.instructions_retired,
                    "cycles": result.cycles,
                    "seconds": elapsed,
                    "inst_per_sec":
                        result.instructions_retired / elapsed if elapsed else 0.0,
                    "effective_fetch_rate": result.effective_fetch_rate,
                    "tc_hit_rate": result.tc_hits / accesses if accesses else 0.0,
                })
    finally:
        os.environ.pop("REPRO_DISK_CACHE", None)

    # Result-cache round trip: one cold store + one warm load.
    name, (_label, config) = BENCHMARKS[0], CONFIGS[0]
    n = runner.default_length(name)
    runner.clear_caches()
    start = time.perf_counter()
    runner.frontend_result(name, config, n)  # computes, stores to disk
    report["result_cache"]["cold_seconds"] = time.perf_counter() - start
    runner.clear_caches()  # memos only: next call must hit the disk
    start = time.perf_counter()
    runner.frontend_result(name, config, n)
    warm = time.perf_counter() - start
    report["result_cache"]["warm_seconds"] = warm
    report["result_cache"]["disk_enabled"] = diskcache.enabled()
    report["result_cache"].update(diskcache.stats())
    return report


def bench_engine_throughput(benchmark, emit):
    report = run_once(benchmark, _time_engine)

    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_engine.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")

    lines = ["Engine throughput (correct-path instructions simulated / second)"]
    for row in report["oracle"]:
        lines.append(f"  oracle     {row['benchmark']:<10}"
                     f"{row['inst_per_sec']:>12,.0f} inst/s")
    for row in report["runs"]:
        lines.append(f"  {row['config']:<10} {row['benchmark']:<10}"
                     f"{row['inst_per_sec']:>12,.0f} inst/s  "
                     f"(tc hit rate {row['tc_hit_rate']:.2f})")
    cache = report["result_cache"]
    lines.append(f"  result cache: cold {cache['cold_seconds']:.2f}s -> "
                 f"warm {cache['warm_seconds']:.3f}s "
                 f"({cache['entries']} entries on disk)")
    emit("BENCH_engine", "\n".join(lines))

    # Structural assertions only — no machine-dependent throughput floors.
    assert all(row["inst_per_sec"] > 0 for row in report["runs"])
    for row in report["runs"]:
        if row["config"] == "baseline":
            assert row["tc_hit_rate"] > 0.1
    if cache["disk_enabled"]:
        # A warm fetch deserializes JSON instead of simulating: it must be
        # far cheaper than the cold run it replaces.
        assert cache["warm_seconds"] < cache["cold_seconds"] / 2
