"""Engine throughput: raw simulation speed and result-cache behaviour.

Unlike the figure/table benchmarks this one measures the *simulator*, not
the simulated machine: correct-path instructions simulated per second for
the oracle executor and the front-end simulator, plus the cost of a warm
(disk-cached) result fetch.  Timings land in ``output/BENCH_engine.json``
so the performance trajectory is tracked across changes.

Reference point: the seed implementation simulated ~100k front-end
instructions/second on the 1-core container this repo is developed in.
No absolute-throughput assertion is made (machines differ); the JSON is
the record.
"""

import json
import os
import time

from conftest import OUTPUT_DIR, run_once

from repro.config import BASELINE, PROMOTION, PROMOTION_PACKING, MachineConfig
from repro.core.machine import Machine
from repro.core.machine_reference import Machine as ReferenceMachine
from repro.experiments import diskcache
from repro.experiments import runner
from repro.experiments import tracefile
from repro.experiments.cachekey import canonical_json
from repro.experiments.serialize import machine_result_to_dict
from repro.frontend.build import build_engine
from repro.frontend.simulator import FrontEndSimulator, compute_oracle
from repro.isa.executor import run_oracle

BENCHMARKS = ("compress", "gcc")
CONFIGS = (("baseline", BASELINE), ("promotion_packing", PROMOTION_PACKING))

#: Figure-11-class machine grid for the core speed record: one benchmark,
#: the paper's three front-end configurations, warmed front end, machine
#: window at the runner's machine length.
MACHINE_GRID_BENCHMARK = "compress"
MACHINE_CONFIGS = (
    ("baseline", BASELINE),
    ("promotion", PROMOTION),
    ("promotion_packing", PROMOTION_PACKING),
)
#: Best-of-N minima: on a 1-core container single timings are noisy, the
#: minimum of a few adjacent runs is the stable estimator.
MACHINE_REPEATS = 2


def _time_engine() -> dict:
    report = {"schema": 1, "runs": [], "oracle": [], "result_cache": {}}

    # Raw simulation throughput: compute in-process, disk cache bypassed
    # so a warm cache cannot fake engine speed.
    os.environ["REPRO_DISK_CACHE"] = "0"
    try:
        runner.clear_caches()
        for name in BENCHMARKS:
            program = runner.get_program(name)
            n = runner.default_length(name)
            start = time.perf_counter()
            oracle = run_oracle(program, n)
            elapsed = time.perf_counter() - start
            report["oracle"].append({
                "benchmark": name,
                "instructions": len(oracle),
                "seconds": elapsed,
                "inst_per_sec": len(oracle) / elapsed if elapsed else 0.0,
            })
            for label, config in CONFIGS:
                start = time.perf_counter()
                result = FrontEndSimulator(program, config, oracle=oracle).run()
                elapsed = time.perf_counter() - start
                accesses = result.tc_hits + result.tc_misses
                report["runs"].append({
                    "benchmark": name,
                    "config": label,
                    "instructions": result.instructions_retired,
                    "cycles": result.cycles,
                    "seconds": elapsed,
                    "inst_per_sec":
                        result.instructions_retired / elapsed if elapsed else 0.0,
                    "effective_fetch_rate": result.effective_fetch_rate,
                    "tc_hit_rate": result.tc_hits / accesses if accesses else 0.0,
                })
    finally:
        os.environ.pop("REPRO_DISK_CACHE", None)

    # Result-cache round trip: one cold store + one warm load.
    name, (_label, config) = BENCHMARKS[0], CONFIGS[0]
    n = runner.default_length(name)
    runner.clear_caches()
    start = time.perf_counter()
    runner.frontend_result(name, config, n)  # computes, stores to disk
    report["result_cache"]["cold_seconds"] = time.perf_counter() - start
    runner.clear_caches()  # memos only: next call must hit the disk
    start = time.perf_counter()
    runner.frontend_result(name, config, n)
    warm = time.perf_counter() - start
    report["result_cache"]["warm_seconds"] = warm
    report["result_cache"]["disk_enabled"] = diskcache.enabled()
    report["result_cache"].update(diskcache.stats())
    return report


def bench_engine_throughput(benchmark, emit):
    report = run_once(benchmark, _time_engine)

    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_engine.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")

    lines = ["Engine throughput (correct-path instructions simulated / second)"]
    for row in report["oracle"]:
        lines.append(f"  oracle     {row['benchmark']:<10}"
                     f"{row['inst_per_sec']:>12,.0f} inst/s")
    for row in report["runs"]:
        lines.append(f"  {row['config']:<10} {row['benchmark']:<10}"
                     f"{row['inst_per_sec']:>12,.0f} inst/s  "
                     f"(tc hit rate {row['tc_hit_rate']:.2f})")
    cache = report["result_cache"]
    lines.append(f"  result cache: cold {cache['cold_seconds']:.2f}s -> "
                 f"warm {cache['warm_seconds']:.3f}s "
                 f"({cache['entries']} entries on disk)")
    emit("BENCH_engine", "\n".join(lines))

    # Structural assertions only — no machine-dependent throughput floors.
    assert all(row["inst_per_sec"] > 0 for row in report["runs"])
    for row in report["runs"]:
        if row["config"] == "baseline":
            assert row["tc_hit_rate"] > 0.1
    if cache["disk_enabled"]:
        # A warm fetch deserializes JSON instead of simulating: it must be
        # far cheaper than the cold run it replaces.
        assert cache["warm_seconds"] < cache["cold_seconds"] / 2


def _time_machine() -> dict:
    """Machine-core speed record: event-driven core vs the frozen seed core.

    Runs the figure-11-class machine grid (one benchmark, the paper's three
    front-end configurations, warmed front end) end to end — front-end
    warmup plus machine window — once per core per repeat, keeps the
    best-of-N minimum per configuration, and asserts the serialized results
    are byte-identical before recording the speedup.
    """
    report = {"schema": 1, "grid": [], "grid_total": {}, "trace_files": {}}
    os.environ["REPRO_DISK_CACHE"] = "0"
    try:
        runner.clear_caches()
        name = MACHINE_GRID_BENCHMARK
        program = runner.get_program(name)
        warm_n = runner.default_length(name)
        n = runner.machine_length(name)
        oracle = runner.get_oracle(name, warm_n)

        def run_point(machine_cls, config):
            start = time.perf_counter()
            engine = build_engine(program, config.frontend,
                                  memory_config=config.memory)
            FrontEndSimulator(program, config.frontend, oracle=oracle,
                              engine=engine).run()
            result = machine_cls(program, config, max_instructions=n,
                                 engine=engine).run()
            return time.perf_counter() - start, result

        total_ref = total_new = 0.0
        for label, frontend in MACHINE_CONFIGS:
            config = MachineConfig(frontend=frontend)
            new_runs = [run_point(Machine, config)
                        for _ in range(MACHINE_REPEATS)]
            ref_runs = [run_point(ReferenceMachine, config)
                        for _ in range(MACHINE_REPEATS)]
            new_s, new_result = min(new_runs, key=lambda r: r[0])
            ref_s, ref_result = min(ref_runs, key=lambda r: r[0])
            identical = (canonical_json(machine_result_to_dict(new_result))
                         == canonical_json(machine_result_to_dict(ref_result)))
            total_ref += ref_s
            total_new += new_s
            report["grid"].append({
                "benchmark": name,
                "config": label,
                "machine_instructions": n,
                "warmup_instructions": warm_n,
                "reference_seconds": ref_s,
                "event_driven_seconds": new_s,
                "speedup": ref_s / new_s if new_s else 0.0,
                "machine_inst_per_sec": new_result.retired / new_s
                if new_s else 0.0,
                "ipc": new_result.ipc,
                "cycles": new_result.cycles,
                "results_identical": identical,
            })
        report["grid_total"] = {
            "reference_seconds": total_ref,
            "event_driven_seconds": total_new,
            "speedup": total_ref / total_new if total_new else 0.0,
        }
    finally:
        os.environ.pop("REPRO_DISK_CACHE", None)

    # Trace-file round trip: cold functional execution + binary store vs a
    # warm mmap load of the same oracle stream (best-of-3 minima each).
    runner.clear_caches(disk=True)
    name = MACHINE_GRID_BENCHMARK
    program = runner.get_program(name)
    n = runner.default_length(name)

    def _best_of(fn, repeats=3):
        best_s, value = None, None
        for _ in range(repeats):
            start = time.perf_counter()
            value = fn()
            elapsed = time.perf_counter() - start
            if best_s is None or elapsed < best_s:
                best_s = elapsed
        return best_s, value

    compute_s, oracle = _best_of(lambda: compute_oracle(program, n))
    store_s, stored = _best_of(lambda: tracefile.store_oracle(name, n, oracle))
    load_s, loaded = _best_of(lambda: tracefile.load_oracle(name, n, program))
    report["trace_files"] = {
        "enabled": tracefile.enabled(),
        "instructions": n,
        "cold_compute_seconds": compute_s,
        "cold_store_seconds": store_s,
        "warm_load_seconds": load_s,
        "replay_speedup": (compute_s / load_s) if load_s else 0.0,
        "stored": stored is not None,
        "loaded": loaded is not None and len(loaded) == n,
    }
    return report


def bench_machine_core(benchmark, emit):
    report = run_once(benchmark, _time_machine)

    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_machine.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")

    lines = ["Machine core: event-driven loop vs seed reference "
             f"({MACHINE_GRID_BENCHMARK} machine grid, warmed front end)"]
    for row in report["grid"]:
        lines.append(
            f"  {row['config']:<18} ref {row['reference_seconds']:5.2f}s  "
            f"event-driven {row['event_driven_seconds']:5.2f}s  "
            f"{row['speedup']:4.2f}x  "
            f"({row['machine_inst_per_sec']:,.0f} machine inst/s, "
            f"identical={row['results_identical']})")
    total = report["grid_total"]
    lines.append(f"  grid total         ref {total['reference_seconds']:5.2f}s"
                 f"  event-driven {total['event_driven_seconds']:5.2f}s  "
                 f"{total['speedup']:4.2f}x")
    tf = report["trace_files"]
    if tf["enabled"]:
        lines.append(
            f"  oracle trace file: compute {tf['cold_compute_seconds']:.2f}s"
            f" + store {tf['cold_store_seconds']:.3f}s -> "
            f"mmap load {tf['warm_load_seconds']:.3f}s "
            f"({tf['replay_speedup']:,.0f}x replay speedup)")
    emit("BENCH_machine", "\n".join(lines))

    # The optimization contract: identical results, and the event-driven
    # grid at least twice as fast end to end.  (Per-config jitter on a
    # shared 1-core container is real; the grid total is the stable
    # number, so only it carries the floor.)
    assert all(row["results_identical"] for row in report["grid"])
    assert total["speedup"] >= 2.0
    if tf["enabled"]:
        assert tf["stored"] and tf["loaded"]
        # Replaying from the binary trace must beat functional
        # re-execution (its whole point); the margin is what the record
        # in BENCH_machine.json tracks over time.
        assert tf["warm_load_seconds"] < tf["cold_compute_seconds"]
