"""Seed robustness: the headline effect must not be a one-seed fluke.

The paper's workloads are fixed binaries; ours are seeded samples, so the
combined-techniques gain is re-measured across generator seeds (paired
per-seed baseline/treatment runs)."""

from conftest import run_once, strict

from repro import BASELINE, PROMOTION_PACKING
from repro.experiments.seeds import seed_effect
from repro.report import format_table

SEEDS = [101, 202, 303]
BENCHES = ["compress", "m88ksim", "tex"]


def bench_seed_robustness(benchmark, emit):
    def run():
        rows = []
        for bench in BENCHES:
            study = seed_effect(bench, BASELINE, PROMOTION_PACKING,
                                seeds=SEEDS, max_instructions=80_000)
            rows.append([bench, study.mean, study.std, study.min, study.max,
                         f"{study.fraction_positive():.2f}"])
        return rows

    rows = run_once(benchmark, run)
    text = format_table(
        ["Benchmark", "mean gain (%)", "std", "min", "max", "frac > 0"],
        rows,
        title="Seed robustness of promotion+packing vs baseline\n"
              f"(paired runs over generator seeds {SEEDS})",
    )
    emit("seed_robustness", text)
    if strict():
        # The effect holds for most (benchmark, seed) pairs.
        positives = sum(float(row[5]) for row in rows) / len(rows)
        assert positives >= 0.6
