"""Table 1: the benchmark suite (paper counts + our scaled stand-ins)."""

from conftest import run_once

from repro.experiments import table1_rows
from repro.report import format_table


def bench_table1_workloads(benchmark, emit):
    rows = run_once(benchmark, table1_rows)
    text = format_table(
        ["Benchmark", "Paper Insts", "Input Set", "Static (ours)", "Scaled Run"],
        [[r["benchmark"], r["paper_inst_count"], r["input_set"],
          r["static_instructions"], r["scaled_dynamic"]] for r in rows],
        title="Table 1. Benchmarks (paper dynamic counts; our synthetic stand-ins)",
    )
    emit("table1", text)
    assert len(rows) == 15
    static = {r["benchmark"]: r["static_instructions"] for r in rows}
    # Footprint ordering the substitution argument relies on.
    assert static["gcc"] > static["compress"]
    assert static["tex"] > static["m88ksim"]
