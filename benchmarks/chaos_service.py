"""Chaos driver for the experiment service: kill it and trust the cache.

The scenario the CI ``service-chaos`` job runs end to end:

1. Start a real ``repro serve`` process with fault injection armed
   (worker crashes + cache corruption) and pipeline a storm at it —
   ``--distinct`` unique points plus ``--duplicates`` duplicate
   submissions spread across them, all on one connection.
2. SIGTERM the server mid-run.  The drain must answer *every* pipelined
   submission — completed points ok, stragglers with an explicit
   retryable error — and the process must exit; nothing may hang.
3. Restart the service with faults off and resubmit every distinct
   point with backoff.  The journals and the shared disk cache must
   cover everything that finished before the kill, so the restarted
   server recomputes only the remainder.
4. Recompute the whole grid serially in this process (disk cache off)
   and require the service's answers to be byte-identical.

Exit status is nonzero on the first violated invariant:

    PYTHONPATH=src python benchmarks/chaos_service.py --duplicates 50
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import tempfile
import time

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.config import BASELINE
from repro.experiments import runner
from repro.experiments.scheduler import GridPoint
from repro.experiments.serialize import frontend_result_to_dict
from repro.service import (ServiceClient, ServiceError, ServiceOverloaded,
                           submit_with_retry)

REPO = pathlib.Path(__file__).resolve().parents[1]


def log(message: str) -> None:
    print(f"[chaos-service] {message}", flush=True)


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def spawn_server(port: int, env: dict) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--jobs", "2"],
        env=env, cwd=REPO, start_new_session=True)


def wait_ready(port: int, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while True:
        try:
            with ServiceClient("127.0.0.1", port, timeout=5) as probe:
                probe.ping()
            return
        except (OSError, ServiceError):
            if time.monotonic() >= deadline:
                raise SystemExit("service never became ready")
            time.sleep(0.1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--distinct", type=int, default=10)
    parser.add_argument("--duplicates", type=int, default=50)
    # Corrupt cache entries probabilistically and hang the 8th
    # computation so the SIGTERM drain always interrupts real work.
    # (No crash fault here: a worker crash breaks the whole pool, which
    # aborts the pending ordinals before their first attempt and would
    # skip the hang; crash recovery is covered by tests/test_faults.py.)
    parser.add_argument(
        "--faults", default="corrupt-cache:0.2,hang:p7:600")
    args = parser.parse_args()

    points = [GridPoint("frontend", "compress", BASELINE, 4_000 + 500 * i)
              for i in range(args.distinct)]
    port = free_port()

    with tempfile.TemporaryDirectory(prefix="repro-chaos-service-") as tmp:
        env = dict(os.environ)
        env.update({
            "PYTHONPATH": str(REPO / "src"),
            "REPRO_CACHE_DIR": tmp,
            "REPRO_CLIENT_BACKLOG": "500",  # the storm rides one socket
            "REPRO_DRAIN_GRACE": "2.0",
            "REPRO_BACKOFF": "0.05",
            "REPRO_FAULTS": args.faults,
        })

        # Phase 1: storm a faulty server, SIGTERM it mid-run.
        log(f"phase 1: {args.distinct} distinct + {args.duplicates} "
            f"duplicate submissions under REPRO_FAULTS={args.faults}")
        server = spawn_server(port, env)
        try:
            wait_ready(port)
            with ServiceClient("127.0.0.1", port, timeout=300) as client:
                ids = [client.submit_nowait([point]) for point in points]
                ids += [client.submit_nowait([points[i % args.distinct]])
                        for i in range(args.duplicates)]
                deadline = time.monotonic() + 120
                while client.status()["counters"]["computed_ok"] < 2:
                    if time.monotonic() >= deadline:
                        raise SystemExit("no progress before SIGTERM")
                    time.sleep(0.05)
                log("SIGTERM mid-run")
                os.kill(server.pid, signal.SIGTERM)
                answered = ok = retryable = rejected = 0
                for request_id in ids:
                    try:
                        rows = client.result(request_id, raw=True)
                    except ServiceOverloaded:
                        answered += 1  # explicit rejection, not a drop
                        rejected += 1
                        continue
                    answered += 1
                    for row in rows:
                        if row["status"] == "ok":
                            ok += 1
                        elif row.get("retryable"):
                            retryable += 1
                        else:
                            raise SystemExit(
                                f"non-retryable drain answer: {row}")
            server.wait(timeout=120)
        finally:
            if server.poll() is None:
                os.killpg(server.pid, signal.SIGKILL)
                server.wait(timeout=30)
        total = args.distinct + args.duplicates
        if answered != total:
            raise SystemExit(f"{total - answered} submissions never "
                             f"answered — the drain dropped clients")
        log(f"drain answered all {answered} submissions "
            f"({ok} ok, {retryable} retryable, {rejected} rejected); "
            f"server exited {server.returncode}")
        if ok == 0:
            raise SystemExit("nothing completed before the kill")

        # Phase 2: restart clean; journals + cache cover finished work.
        env.pop("REPRO_FAULTS")
        log("phase 2: restart without faults, resubmit the grid")
        server = spawn_server(port, env)
        try:
            wait_ready(port)
            with ServiceClient("127.0.0.1", port, timeout=300) as client:
                results = submit_with_retry(client, points, base=0.1)
                counters = client.status()["counters"]
        finally:
            try:
                os.killpg(server.pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
            server.wait(timeout=120)
        recomputed = counters["computed_ok"]
        served = counters["cache_hits"] + counters["journal_hits"]
        log(f"restart: {recomputed} recomputed, {served} from "
            f"journal/cache of {args.distinct} distinct points")
        if recomputed >= args.distinct:
            raise SystemExit("restart recomputed everything — the "
                             "journals/cache preserved nothing")

    # Phase 3: byte-identical to a clean serial computation.
    log("phase 3: clean serial recomputation (disk cache off)")
    os.environ["REPRO_DISK_CACHE"] = "0"
    runner.clear_caches()
    for point, got in zip(points, results):
        clean = runner.frontend_result(point.benchmark, point.config,
                                       point.n)
        clean_js = json.dumps(frontend_result_to_dict(clean),
                              sort_keys=True)
        got_js = json.dumps(frontend_result_to_dict(got), sort_keys=True)
        if clean_js != got_js:
            raise SystemExit(f"divergence at n={point.n}: service answer "
                             f"differs from the clean serial run")
    log(f"all {args.distinct} service answers byte-identical to the "
        f"clean serial run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
