"""Chaos driver for the experiment service: kill it and trust the cache.

The scenario the CI ``service-chaos`` job runs end to end:

1. Start a real ``repro serve`` process with fault injection armed
   (worker crashes + cache corruption) and pipeline a storm at it —
   ``--distinct`` unique points plus ``--duplicates`` duplicate
   submissions spread across them, all on one connection.
2. SIGTERM the server mid-run.  The drain must answer *every* pipelined
   submission — completed points ok, stragglers with an explicit
   retryable error — and the process must exit; nothing may hang.
3. Restart the service with faults off and resubmit every distinct
   point with backoff.  The journals and the shared disk cache must
   cover everything that finished before the kill, so the restarted
   server recomputes only the remainder.
4. Recompute the whole grid serially in this process (disk cache off)
   and require the service's answers to be byte-identical.

With ``--workers N`` the same scenario runs against a worker fleet
(the CI ``fleet-chaos`` job): N ``repro worker`` processes attach to
the server, the first of them is armed to hang mid-point and is
SIGKILLed once it holds a lease — the dropped connection must revoke
the lease and requeue the point on a surviving worker — and the
SIGTERM + restart of phase 2 must find the surviving workers
re-registered via their reconnect backoff loop.  Lease grant/requeue/
stale counts are printed for the CI job summary.

Exit status is nonzero on the first violated invariant:

    PYTHONPATH=src python benchmarks/chaos_service.py --duplicates 50
    PYTHONPATH=src python benchmarks/chaos_service.py --workers 2
"""

from __future__ import annotations

import argparse
import atexit
import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import tempfile
import time

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.config import BASELINE
from repro.experiments import runner
from repro.experiments.scheduler import GridPoint
from repro.experiments.serialize import frontend_result_to_dict
from repro.service import (ServiceClient, ServiceError, ServiceOverloaded,
                           submit_with_retry)

REPO = pathlib.Path(__file__).resolve().parents[1]


def log(message: str) -> None:
    print(f"[chaos-service] {message}", flush=True)


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def spawn_server(port: int, env: dict) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--jobs", "2"],
        env=env, cwd=REPO, start_new_session=True)


def spawn_worker(port: int, env: dict, name: str) -> subprocess.Popen:
    child = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", f"127.0.0.1:{port}",
         "--name", name, "--quiet"],
        env=env, cwd=REPO, start_new_session=True)
    atexit.register(kill_hard, child)  # no leaked workers on any exit
    return child


def kill_hard(child: subprocess.Popen) -> None:
    try:
        os.killpg(child.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass
    child.wait(timeout=30)


def wait_ready(port: int, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while True:
        try:
            with ServiceClient("127.0.0.1", port, timeout=5) as probe:
                probe.ping()
            return
        except (OSError, ServiceError):
            if time.monotonic() >= deadline:
                raise SystemExit("service never became ready")
            time.sleep(0.1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--distinct", type=int, default=10)
    parser.add_argument("--duplicates", type=int, default=50)
    # Corrupt cache entries probabilistically and hang the 8th
    # computation so the SIGTERM drain always interrupts real work.
    # (No crash fault here: a worker crash breaks the whole pool, which
    # aborts the pending ordinals before their first attempt and would
    # skip the hang; crash recovery is covered by tests/test_faults.py.)
    parser.add_argument(
        "--faults", default="corrupt-cache:0.2,hang:p7:600")
    # Fleet mode: N worker processes pull the points under leases; the
    # first worker is armed to hang and gets SIGKILLed mid-lease.
    parser.add_argument("--workers", type=int, default=0)
    args = parser.parse_args()

    points = [GridPoint("frontend", "compress", BASELINE, 4_000 + 500 * i)
              for i in range(args.distinct)]
    port = free_port()

    with tempfile.TemporaryDirectory(prefix="repro-chaos-service-") as tmp:
        env = dict(os.environ)
        env.update({
            "PYTHONPATH": str(REPO / "src"),
            "REPRO_CACHE_DIR": tmp,
            "REPRO_CLIENT_BACKLOG": "500",  # the storm rides one socket
            "REPRO_DRAIN_GRACE": "2.0",
            "REPRO_BACKOFF": "0.05",
            "REPRO_FAULTS": args.faults,
        })
        if args.workers:
            env["REPRO_LEASE_TTL"] = "10"
            env["REPRO_HEARTBEAT"] = "0.5"
        # Fleet workers never inherit the server's faults; the designated
        # victim hangs on most of its leased points (hash-probability,
        # so it wedges and holds a lease until the SIGKILL).
        worker_env = {k: v for k, v in env.items() if k != "REPRO_FAULTS"}
        victim_env = dict(worker_env, REPRO_FAULTS="hang:0.9:600")
        workers = []

        def fleet_status(client):
            return client.status().get("fleet") or {}

        def wait_status(client, predicate, what, timeout=60.0):
            deadline = time.monotonic() + timeout
            while not predicate():
                if time.monotonic() >= deadline:
                    raise SystemExit(f"timed out waiting for {what}")
                time.sleep(0.05)

        # Phase 1: storm a faulty server, SIGTERM it mid-run.
        log(f"phase 1: {args.distinct} distinct + {args.duplicates} "
            f"duplicate submissions under REPRO_FAULTS={args.faults}"
            + (f" with {args.workers} fleet workers" if args.workers
               else ""))
        server = spawn_server(port, env)
        try:
            wait_ready(port)
            if args.workers:
                workers.append(spawn_worker(port, victim_env, "chaos-w1"))
                workers.extend(
                    spawn_worker(port, worker_env, f"chaos-w{i}")
                    for i in range(2, args.workers + 1))
            with ServiceClient("127.0.0.1", port, timeout=300) as client:
                if args.workers:
                    wait_status(
                        client,
                        lambda: len(fleet_status(client)["workers"])
                        == args.workers,
                        "fleet registration")
                    log(f"{args.workers} workers registered")
                ids = [client.submit_nowait([point]) for point in points]
                ids += [client.submit_nowait([points[i % args.distinct]])
                        for i in range(args.duplicates)]
                deadline = time.monotonic() + 120
                while client.status()["counters"]["computed_ok"] < 2:
                    if time.monotonic() >= deadline:
                        raise SystemExit("no progress before SIGTERM")
                    time.sleep(0.05)
                if args.workers:
                    # The victim is wedged mid-hang on a lease it keeps
                    # heartbeating; SIGKILL it and require the revoked
                    # lease to requeue onto a survivor.
                    wait_status(
                        client,
                        lambda: any(lease["worker"] == "chaos-w1"
                                    for lease in
                                    fleet_status(client)["leases"]),
                        "the victim to hold a lease")
                    log("SIGKILL chaos-w1 mid-lease")
                    kill_hard(workers[0])
                    wait_status(
                        client,
                        lambda: fleet_status(client)["requeued_total"] >= 1,
                        "lease revocation + requeue")
                    fleet = fleet_status(client)
                    log(f"lease requeued after worker loss "
                        f"(granted {fleet['granted_total']}, requeued "
                        f"{fleet['requeued_total']})")
                log("SIGTERM mid-run")
                os.kill(server.pid, signal.SIGTERM)
                answered = ok = retryable = rejected = 0
                for request_id in ids:
                    try:
                        rows = client.result(request_id, raw=True)
                    except ServiceOverloaded:
                        answered += 1  # explicit rejection, not a drop
                        rejected += 1
                        continue
                    answered += 1
                    for row in rows:
                        if row["status"] == "ok":
                            ok += 1
                        elif row.get("retryable"):
                            retryable += 1
                        else:
                            raise SystemExit(
                                f"non-retryable drain answer: {row}")
            server.wait(timeout=120)
        finally:
            if server.poll() is None:
                os.killpg(server.pid, signal.SIGKILL)
                server.wait(timeout=30)
        total = args.distinct + args.duplicates
        if answered != total:
            raise SystemExit(f"{total - answered} submissions never "
                             f"answered — the drain dropped clients")
        log(f"drain answered all {answered} submissions "
            f"({ok} ok, {retryable} retryable, {rejected} rejected); "
            f"server exited {server.returncode}")
        if ok == 0:
            raise SystemExit("nothing completed before the kill")

        # Phase 2: restart clean; journals + cache cover finished work,
        # and surviving workers find the new server by themselves.
        env.pop("REPRO_FAULTS")
        survivors = max(0, args.workers - 1)
        log("phase 2: restart without faults, resubmit the grid")
        server = spawn_server(port, env)
        try:
            wait_ready(port)
            with ServiceClient("127.0.0.1", port, timeout=300) as client:
                if survivors:
                    wait_status(
                        client,
                        lambda: len(fleet_status(client)["workers"])
                        >= survivors,
                        "surviving workers to reconnect")
                    log(f"{survivors} surviving worker(s) re-registered "
                        f"with the restarted server")
                results = submit_with_retry(client, points, base=0.1)
                counters = client.status()["counters"]
                fleet = fleet_status(client)
        finally:
            try:
                os.killpg(server.pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
            server.wait(timeout=120)
        recomputed = counters["computed_ok"]
        served = counters["cache_hits"] + counters["journal_hits"]
        log(f"restart: {recomputed} recomputed, {served} from "
            f"journal/cache of {args.distinct} distinct points")
        if recomputed >= args.distinct:
            raise SystemExit("restart recomputed everything — the "
                             "journals/cache preserved nothing")
        if args.workers:
            members = ", ".join(
                f"{w['worker']} completed={w['completed']}"
                for w in fleet["workers"]) or "none"
            log(f"fleet after restart: granted {fleet['granted_total']}, "
                f"requeued {fleet['requeued_total']}, stale "
                f"{fleet['stale_completions']}; members: {members}")
            for child in workers:
                kill_hard(child)

    # Phase 3: byte-identical to a clean serial computation.
    log("phase 3: clean serial recomputation (disk cache off)")
    os.environ["REPRO_DISK_CACHE"] = "0"
    runner.clear_caches()
    for point, got in zip(points, results):
        clean = runner.frontend_result(point.benchmark, point.config,
                                       point.n)
        clean_js = json.dumps(frontend_result_to_dict(clean),
                              sort_keys=True)
        got_js = json.dumps(frontend_result_to_dict(got), sort_keys=True)
        if clean_js != got_js:
            raise SystemExit(f"divergence at n={point.n}: service answer "
                             f"differs from the clean serial run")
    log(f"all {args.distinct} service answers byte-identical to the "
        f"clean serial run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
