"""Ablations beyond the paper's tables (DESIGN.md section 5).

* split-table predictor (64K/16K/8K) vs the 7-counter-row predictor under
  promotion — the paper proposes the split organization once promotion has
  made B1/B2 predictions rare;
* trace-cache size sweep — the paper argues packing regulation matters
  more below 128KB;
* bias-table size sweep — how small can the 8K-entry table get before
  promotion coverage collapses?
"""

from dataclasses import replace

from conftest import run_once

from repro import config as cfg
from repro.experiments import frontend_result
from repro.report import format_table

BENCHES = ["compress", "m88ksim", "plot"]


def bench_ablation_split_predictor(benchmark, emit):
    def run():
        rows = []
        for bench in BENCHES:
            tree = frontend_result(bench, cfg.PROMOTION)
            split = frontend_result(bench, replace(cfg.PROMOTION, predictor="split"))
            rows.append([bench,
                         tree.effective_fetch_rate, split.effective_fetch_rate,
                         100 * tree.stats.cond_mispredict_rate,
                         100 * split.stats.cond_mispredict_rate])
        return rows

    rows = run_once(benchmark, run)
    text = format_table(
        ["Benchmark", "tree EFR", "split EFR", "tree mis (%)", "split mis (%)"],
        rows,
        title="Ablation: 7-counter-row (32KB) vs split 64K/16K/8K (24KB)\n"
              "multiple predictor under promotion@64",
    )
    emit("ablation_split_predictor", text)
    for row in rows:
        # The cheaper split predictor is competitive once promotion has
        # concentrated demand on the first prediction.
        assert row[2] > 0.9 * row[1]


def bench_ablation_tc_size(benchmark, emit):
    def run():
        rows = []
        for lines, label in ((512, "32KB"), (1024, "64KB"), (2048, "128KB")):
            base = replace(cfg.PROMOTION, tc_lines=lines)
            unreg = replace(cfg.PROMOTION_PACKING, tc_lines=lines)
            costreg = replace(cfg.PROMOTION_COST_REG, tc_lines=lines)
            for bench in ("gcc",):
                b = frontend_result(bench, base)
                u = frontend_result(bench, unreg)
                c = frontend_result(bench, costreg)
                rows.append([label, b.effective_fetch_rate,
                             u.effective_fetch_rate, c.effective_fetch_rate,
                             100 * (u.tc_misses / max(1, b.tc_misses) - 1),
                             100 * (c.tc_misses / max(1, b.tc_misses) - 1)])
        return rows

    rows = run_once(benchmark, run)
    text = format_table(
        ["TC size", "promo EFR", "+unreg EFR", "+cost-reg EFR",
         "unreg TCmiss (%)", "cost-reg TCmiss (%)"],
        rows,
        title="Ablation: trace-cache size sweep on gcc (paper section 5:\n"
              "redundancy regulation is crucial below 128KB)",
    )
    emit("ablation_tc_size", text)
    # Cost regulation always inflates misses less than unregulated packing.
    for row in rows:
        assert row[5] <= row[4]
    # The smallest cache suffers the largest unregulated inflation.
    assert rows[0][4] >= rows[-1][4] * 0.5


def bench_ablation_bias_table_size(benchmark, emit):
    def run():
        rows = []
        for entries in (256, 1024, 8192):
            config = replace(cfg.PROMOTION, bias_entries=entries)
            result = frontend_result("gcc", config)
            rows.append([entries, result.effective_fetch_rate,
                         result.promotions, result.demotions,
                         result.stats.promoted_branches])
        return rows

    rows = run_once(benchmark, run)
    text = format_table(
        ["Bias entries", "EFR", "promotions", "demotions", "promoted execs"],
        rows,
        title="Ablation: bias-table size (gcc). Smaller tagged tables evict\n"
              "entries, losing promotion coverage",
    )
    emit("ablation_bias_table", text)
    assert rows[-1][4] >= rows[0][4]  # the 8K table promotes at least as much


def bench_ablation_static_promotion(benchmark, emit):
    """Static vs dynamic promotion (the paper's section 4 discussion):
    static promotion skips warm-up but cannot demote."""

    def run():
        rows = []
        for bench in BENCHES:
            dynamic = frontend_result(bench, cfg.PROMOTION)
            static = frontend_result(bench, replace(cfg.BASELINE, promote_static=True))
            rows.append([bench,
                         dynamic.effective_fetch_rate,
                         static.effective_fetch_rate,
                         dynamic.stats.promoted_branches,
                         static.stats.promoted_branches,
                         dynamic.stats.promoted_faults,
                         static.stats.promoted_faults])
        return rows

    rows = run_once(benchmark, run)
    text = format_table(
        ["Benchmark", "dyn EFR", "static EFR", "dyn promoted", "static promoted",
         "dyn faults", "static faults"],
        rows,
        title="Ablation: dynamic (bias table) vs static (profile-guided)\n"
              "branch promotion.  Static promotion needs no warm-up, so it\n"
              "covers more executions at these run lengths; it cannot demote,\n"
              "so shifting branches keep faulting",
    )
    emit("ablation_static_promotion", text)
    for row in rows:
        # Static coverage is comparable to dynamic (it skips warm-up but
        # uses a fixed profile-time bias threshold).
        assert row[4] >= 0.7 * row[3]


def bench_ablation_inactive_issue(benchmark, emit):
    """Value of inactive issue (Friendly et al., always on in the paper)."""

    def run():
        rows = []
        for bench in BENCHES:
            on = frontend_result(bench, cfg.BASELINE)
            off = frontend_result(bench, replace(cfg.BASELINE, inactive_issue=False))
            rows.append([bench, on.effective_fetch_rate, off.effective_fetch_rate,
                         100 * (on.effective_fetch_rate / off.effective_fetch_rate - 1)])
        return rows

    rows = run_once(benchmark, run)
    text = format_table(
        ["Benchmark", "inactive issue ON", "OFF", "benefit (%)"],
        rows,
        title="Ablation: inactive issue (partially matching lines issue their\n"
              "remainder dormant, activating on a favourable misprediction)",
    )
    emit("ablation_inactive_issue", text)
    for row in rows:
        assert row[1] >= row[2] * 0.99  # never meaningfully worse


def bench_ablation_path_associativity(benchmark, emit):
    """Path associativity (paper section 3 points to [9] for analysis)."""

    def run():
        rows = []
        for bench in BENCHES:
            off = frontend_result(bench, cfg.BASELINE)
            on = frontend_result(bench, replace(cfg.BASELINE, path_associativity=True))
            hit = lambda r: 100 * r.tc_hits / max(1, r.tc_hits + r.tc_misses)
            rows.append([bench, off.effective_fetch_rate, on.effective_fetch_rate,
                         hit(off), hit(on)])
        return rows

    rows = run_once(benchmark, run)
    text = format_table(
        ["Benchmark", "EFR (no PA)", "EFR (PA)", "TC hit% (no PA)", "TC hit% (PA)"],
        rows,
        title="Ablation: path associativity — multiple same-start segments\n"
              "coexist, selected by best prediction match",
    )
    emit("ablation_path_assoc", text)
    for row in rows:
        assert row[4] >= row[3] - 3.0  # PA should not materially hurt hits
