"""Figure 14: % change in mispredicted branches (cond + indirect)."""

from conftest import run_once

from repro.experiments import figure14_rows
from repro.report import format_bar_chart


def bench_fig14_mispred_branches(benchmark, emit):
    rows = run_once(benchmark, figure14_rows)
    text = format_bar_chart(
        {r["benchmark"]: r["pct_change"] for r in rows},
        title="Figure 14. Percent change in mispredicted branches (conditional\n"
              "and indirect), promotion+packing machine vs baseline\n"
              "(paper: decreases for most benchmarks — PHT interference falls)",
        fmt="{:+7.1f}",
    )
    emit("fig14", text)
    # The paper sees mostly decreases; at our scale trace packing's
    # alignment churn costs the fetch-address-indexed predictor more than
    # interference reduction saves on several benchmarks (EXPERIMENTS.md).
    decreased = sum(1 for r in rows if r["pct_change"] < 0)
    assert decreased >= 2
    mean = sum(r["pct_change"] for r in rows) / len(rows)
    assert mean < 25.0
