"""Table 3: dynamic predictions required per fetch cycle."""

from conftest import run_once

from repro.experiments import table3_rows
from repro.report import format_table


def bench_table3_predictions_per_fetch(benchmark, emit):
    rows = run_once(benchmark, table3_rows)
    text = format_table(
        ["Configuration", "0 or 1 predictions", "2", "3"],
        [[r["configuration"], f"{100 * r['0 or 1']:.0f}%", f"{100 * r['2']:.0f}%",
          f"{100 * r['3']:.0f}%"] for r in rows],
        title="Table 3. Predictions required each fetch cycle, averaged over\n"
              "all benchmarks (paper: baseline 54/18/28, threshold=64 85/12/3)",
    )
    emit("table3", text)
    base, promo = rows
    # The paper's headline: with promotion ~85% of fetches need <=1
    # prediction; ours must show the same strong shift.
    assert promo["0 or 1"] >= base["0 or 1"] + 0.15
    assert promo["0 or 1"] >= 0.70
    assert promo["3"] <= base["3"]
