"""Figure 11: end-to-end IPC with the conservative memory scheduler."""

from conftest import run_once, strict

from repro.experiments import figure11_rows
from repro.report import format_table


def bench_fig11_ipc(benchmark, emit):
    rows = run_once(benchmark, figure11_rows)
    text = format_table(
        ["Benchmark", "icache", "baseline", "promo+cost-reg",
         "vs baseline (%)", "vs icache (%)"],
        [[r["benchmark"], r["icache"], r["baseline"], r["promotion,packing"],
          r["pct_new_over_baseline"], r["pct_new_over_icache"]] for r in rows],
        title="Figure 11. IPC, conservative memory scheduler\n"
              "(paper: promotion+packing +4% over baseline, +36% over icache)",
    )
    n = len(rows)
    avg = {k: sum(r[k] for r in rows) / n
           for k in ("icache", "baseline", "promotion,packing")}
    summary = (f"Averages: icache {avg['icache']:.2f}, baseline {avg['baseline']:.2f}, "
               f"promo+pack {avg['promotion,packing']:.2f} "
               f"({100 * (avg['promotion,packing'] / avg['baseline'] - 1):+.1f}% vs baseline, "
               f"{100 * (avg['promotion,packing'] / avg['icache'] - 1):+.1f}% vs icache)")
    emit("fig11", text + "\n\n" + summary)

    # The trace-cache machines beat the single-block icache machine, and
    # the new techniques give a small-but-positive average gain (the
    # paper's point: the conservative core squanders most of the fetch
    # bandwidth; compare Figure 16).
    assert avg["baseline"] > avg["icache"]
    if strict():
        # Paper: +4%.  Our scaled runs compress the techniques' headroom
        # (EFR gain +9% vs the paper's +17%), so the conservative-core
        # result lands near zero; the Figure 16 bench asserts that the
        # gain grows once memory disambiguation is perfect.
        assert avg["promotion,packing"] > 0.96 * avg["baseline"]
