"""Differential fuzzer: random programs x random configs, both stacks.

Every iteration samples a synthetic workload profile (a randomized
variant of one of the paper benchmarks' generation profiles) and a
random front-end configuration, generates the program, and drives it
through :func:`repro.validate.lockstep.lockstep_frontend` — the fast
array-backed stack checked fetch-by-fetch against the frozen reference
stack over the identical oracle stream.  Any disagreement (delivered
fetch slots, predictor digests, end-of-run engine state, serialized
result) raises, printing the seed so the case replays exactly:

    python benchmarks/fuzz_frontend.py --runs 1 --seed-base <seed>

``--mode machine`` fuzzes the cycle-level core instead: the same random
program, a random machine configuration (random front end, randomly
perfect memory disambiguation, randomly warmed), run through both the
columnar core + fast front end and the frozen seed core + reference
front end, asserting the serialized ``MachineResult``s are
byte-identical.  ``--mode both`` alternates.

The CI validation job runs a fixed-seed smoke sweep (the harness is
fully deterministic per seed); longer local sweeps just raise
``--runs``.  Exit status is nonzero on the first divergence.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import pathlib
import sys

if __name__ == "__main__":  # allow running without PYTHONPATH=src
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

try:  # the case samplers need numpy's Generator; ``--mode vector``
    # degrades per-case (columns.available() is false without numpy),
    # so the script itself must import cleanly on a numpy-free wheel.
    import numpy as np
except ImportError:  # pragma: no cover - no-numpy environments
    np = None

#: Profiles whose randomized variants the fuzzer samples — tight loops,
#: interpreter-like call density, big-footprint code, and phase flips.
BASE_PROFILES = ("compress", "li", "go", "gcc", "plot")

#: Default dynamic-instruction budget per fuzz case.  Long enough for
#: promotion (threshold can be as low as 4 here) and trace-cache
#: replacement to kick in, short enough for hundreds of cases in CI.
DEFAULT_LENGTH = 5000


def random_profile(rng: np.random.Generator):
    """A randomized variant of one paper benchmark's generation profile."""
    from repro.workloads.behaviors import BranchKind
    from repro.workloads.profiles import get_profile

    base = get_profile(str(rng.choice(BASE_PROFILES)))
    weights = {kind: float(rng.random()) + 0.05 for kind in BranchKind}
    total = sum(weights.values())
    bias_mix = {kind: w / total for kind, w in weights.items()}
    lo = int(rng.integers(1, 6))
    return dataclasses.replace(
        base,
        name=f"fuzz-{base.name}",
        n_phases=int(rng.integers(1, 5)),
        stmts_per_phase=(lo, lo + int(rng.integers(1, 8))),
        outer_iters=int(rng.integers(1, 4)),
        p_if=float(rng.uniform(0.1, 0.5)),
        p_call=float(rng.uniform(0.0, 0.3)),
        p_switch=float(rng.uniform(0.0, 0.15)),
        block_len=(1, int(rng.integers(2, 12))),
        bias_mix=bias_mix,
    )


def random_config(rng: np.random.Generator):
    """A random front-end configuration, biased toward the trace cache."""
    from repro.config import FrontEndConfig
    from repro.trace.fill_unit import PackingPolicy

    if rng.random() < 0.15:
        return FrontEndConfig(kind="icache")
    assoc = int(rng.choice([1, 2, 4]))
    # n_lines must stay a power-of-two multiple of the associativity.
    lines = assoc * (1 << int(rng.integers(3, 8)))
    return FrontEndConfig(
        kind="tc",
        tc_lines=lines,
        tc_assoc=assoc,
        packing=PackingPolicy(str(rng.choice([p.value for p in PackingPolicy]))),
        promote=bool(rng.random() < 0.6),
        promote_threshold=int(rng.choice([4, 16, 64])),
        bias_entries=int(rng.choice([64, 1024, 8192])),
        predictor=str(rng.choice(["tree", "split"])),
        inactive_issue=bool(rng.random() < 0.8),
        path_associativity=bool(rng.random() < 0.3),
    )


def run_one(seed: int, length: int = DEFAULT_LENGTH) -> str:
    """One fuzz case; returns a short label, raises on divergence."""
    from repro.frontend.simulator import compute_oracle
    from repro.validate.lockstep import lockstep_frontend
    from repro.workloads.generator import generate_program

    rng = np.random.default_rng(seed)
    profile = random_profile(rng)
    config = random_config(rng)
    program = generate_program(profile, seed=seed)
    oracle = compute_oracle(program, length)
    # report=False: fuzz programs are reproduced from the seed, not from
    # a benchmark name, so a disk report could not be replayed.
    lockstep_frontend(profile.name, config, length, report=False,
                      program=program, oracle=oracle)
    return f"{profile.name}/{config.describe()}"


def random_machine_config(rng: np.random.Generator):
    """A random complete machine: random front end, random core mode."""
    from repro.config import CoreConfig, MachineConfig

    return MachineConfig(
        frontend=random_config(rng),
        core=CoreConfig(perfect_disambiguation=bool(rng.random() < 0.3)))


def run_one_machine(seed: int, length: int = DEFAULT_LENGTH) -> str:
    """One machine-core fuzz case; returns a label, raises on divergence.

    Pairs the columnar core with the fast front end and the frozen seed
    core with the reference front end (the same pairing the runner's
    lockstep guard uses), so a serialized-result mismatch flags a
    divergence in either layer.  The columnar core runs twice — timing
    memoization off and on — and both serializations must match the
    reference, so every seed also races ``REPRO_MACHINE_MEMO`` against
    the live-simulation semantics.  The machine window is a quarter of
    the front-end budget — cycle-level runs are the slow part of a
    sweep.
    """
    from repro.core import memo
    from repro.core.machine import Machine
    from repro.core.machine_reference import Machine as ReferenceMachine
    from repro.experiments.cachekey import canonical_json
    from repro.experiments.serialize import machine_result_to_dict
    from repro.frontend.build import build_engine
    from repro.frontend.simulator import FrontEndSimulator, compute_oracle
    from repro.validate.errors import DivergenceError
    from repro.workloads.generator import generate_program

    rng = np.random.default_rng(seed)
    profile = random_profile(rng)
    config = random_machine_config(rng)
    warmup = bool(rng.random() < 0.5)
    program = generate_program(profile, seed=seed)
    machine_n = max(500, length // 4)

    def one_run(machine_cls, fast: bool):
        engine = None
        if warmup:
            engine = build_engine(program, config.frontend,
                                  memory_config=config.memory, fast=fast)
            FrontEndSimulator(program, config.frontend,
                              oracle=compute_oracle(program, length),
                              engine=engine).run()
        return machine_cls(program, config, max_instructions=machine_n,
                           engine=engine).run()

    def in_memo_mode(flag: str):
        previous = os.environ.get("REPRO_MACHINE_MEMO")
        os.environ["REPRO_MACHINE_MEMO"] = flag
        memo.reset_tables()
        try:
            return one_run(Machine, fast=True)
        finally:
            if previous is None:
                os.environ.pop("REPRO_MACHINE_MEMO", None)
            else:
                os.environ["REPRO_MACHINE_MEMO"] = previous
            memo.reset_tables()

    reference = one_run(ReferenceMachine, fast=False)
    wanted = canonical_json(machine_result_to_dict(reference))
    if canonical_json(machine_result_to_dict(in_memo_mode("0"))) != wanted:
        raise DivergenceError(
            "columnar machine diverged from reference: serialized "
            "MachineResult mismatch (REPRO_MACHINE_MEMO=0)")
    memo_result = in_memo_mode("1")
    if canonical_json(machine_result_to_dict(memo_result)) != wanted:
        stats = {k: v for k, v in (memo_result.memo_stats or {}).items()
                 if k != "table"}
        raise DivergenceError(
            "timing-memoized machine diverged from reference: serialized "
            f"MachineResult mismatch (REPRO_MACHINE_MEMO=1, {stats})")
    warm = "warm" if warmup else "cold"
    return f"{profile.name}/{config.describe()}/{warm}"


def run_one_vector(seed: int, length: int = DEFAULT_LENGTH) -> str:
    """One scalar-vs-columnar differential case; raises on divergence.

    Drives every ``REPRO_VECTOR`` consumer both ways over the same
    randomized program and configuration — workload statistics, the
    branch-population profile, static-promotion profiling, bias-table
    retirement counting, and the front-end simulator's batched predictor
    training — and requires byte-identical outputs *including* dict
    iteration order (site dicts feed ordered downstream consumers).
    """
    from repro.experiments import columns
    from repro.frontend.simulator import FrontEndSimulator, compute_oracle
    from repro.trace.bias_table import BranchBiasTable
    from repro.validate.errors import DivergenceError
    from repro.workloads.generator import generate_program

    if not columns.available():
        return "vector-skip (numpy unavailable)"

    rng = np.random.default_rng(seed)
    profile = random_profile(rng)
    config = random_config(rng)
    program = generate_program(profile, seed=seed)
    oracle = compute_oracle(program, length)

    def in_mode(flag, fn):
        previous = os.environ.get("REPRO_VECTOR")
        os.environ["REPRO_VECTOR"] = flag
        try:
            return fn()
        finally:
            if previous is None:
                os.environ.pop("REPRO_VECTOR", None)
            else:
                os.environ["REPRO_VECTOR"] = previous

    def ordered(value):
        """Structural repr that is sensitive to dict iteration order."""
        if isinstance(value, dict):
            return [(k, ordered(v)) for k, v in value.items()]
        if isinstance(value, (list, tuple)):
            return [ordered(v) for v in value]
        return value

    def check(label, fn):
        vector = in_mode("1", fn)
        scalar = in_mode("0", fn)
        if ordered(vector) != ordered(scalar):
            raise DivergenceError(
                f"vector path diverged from scalar reference in {label}")

    def stats_case():
        from repro.workloads.stats import characterize
        stats = characterize(program, length)
        data = dataclasses.asdict(stats)
        data["block_size_histogram"] = dict(stats.block_size_histogram)
        return data

    def profile_case():
        from repro.analysis.branches import profile_branches
        population = profile_branches(program, length)
        return {addr: dataclasses.asdict(site)
                for addr, site in population.sites.items()}

    def promotion_case():
        from repro.trace.static_promotion import profile_biased_branches
        return {addr: dataclasses.asdict(promo) for addr, promo in
                profile_biased_branches(program, length,
                                        min_executions=8).items()}

    def bias_case():
        table = BranchBiasTable(entries=bias_entries,
                                threshold=bias_threshold)
        flags = table.retire_bulk(branch_pcs, branch_takens)
        return (flags, table.promotions, table.demotions,
                list(table._tags), list(table._counts), list(table._dirs),
                list(table._promoted), list(table._promoted_dirs))

    def simulator_case():
        result = FrontEndSimulator(program, config, oracle=oracle).run()
        return dataclasses.asdict(result.stats)

    check("workloads.stats.characterize", stats_case)
    check("analysis.branches.profile_branches", profile_case)
    check("trace.static_promotion.profile_biased_branches", promotion_case)
    branch_pcs = [inst.addr for inst, taken, _ in oracle if taken is not None]
    branch_takens = [bool(taken) for _, taken, _ in oracle
                     if taken is not None]
    bias_entries = int(rng.choice([64, 1024, 8192]))
    bias_threshold = int(rng.choice([4, 16, 64]))
    check("trace.bias_table.retire_bulk", bias_case)
    check("frontend.simulator batched training", simulator_case)
    return f"{profile.name}/{config.describe()}/vector"


def main(argv=None) -> int:
    from repro.validate.errors import DivergenceError

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int, default=200,
                        help="number of fuzz cases (default 200)")
    parser.add_argument("--seed-base", type=int, default=0,
                        help="first seed; case i uses seed-base + i")
    parser.add_argument("--length", type=int, default=DEFAULT_LENGTH,
                        help=f"instructions per case (default {DEFAULT_LENGTH})")
    parser.add_argument("--mode",
                        choices=("frontend", "machine", "vector", "both"),
                        default="frontend",
                        help="which differential harness to drive: the "
                             "front-end lockstep, the machine-core parity "
                             "check, the scalar-vs-columnar REPRO_VECTOR "
                             "check, or alternating frontend/machine "
                             "(default frontend)")
    args = parser.parse_args(argv)

    if np is None and args.mode != "vector":
        # Program generation itself requires numpy (an explicit
        # RuntimeError in the generator), so the differential modes
        # cannot run on a numpy-free wheel; say so instead of crashing.
        print("fuzz_frontend: numpy unavailable; only --mode vector "
              "(which degrades per-case) runs on a numpy-free install")
        return 2

    mode_names = {run_one: "frontend", run_one_machine: "machine",
                  run_one_vector: "vector"}
    for i in range(args.runs):
        seed = args.seed_base + i
        if args.mode == "vector":
            case = run_one_vector
        elif args.mode == "machine" or (args.mode == "both" and i % 2):
            case = run_one_machine
        else:
            case = run_one
        try:
            label = case(seed, args.length)
        except DivergenceError as exc:
            print(f"\nDIVERGENCE at seed {seed}: {exc.message}")
            print(f"replay: python {sys.argv[0]} --mode {mode_names[case]} "
                  f"--runs 1 --seed-base {seed} --length {args.length}")
            return 1
        if (i + 1) % 20 == 0 or i + 1 == args.runs:
            print(f"{i + 1}/{args.runs} ok (last: seed {seed}, {label})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
