"""Figure 9: effective fetch rates with and without trace packing."""

from conftest import run_once

from repro.experiments import figure9_rows
from repro.report import format_table


def bench_fig9_packing(benchmark, emit):
    rows = run_once(benchmark, figure9_rows)
    text = format_table(
        ["Benchmark", "baseline", "packing", "change (%)"],
        [[r["benchmark"], r["baseline"], r["packing"], r["pct_increase"]]
         for r in rows],
        title="Figure 9. Effective fetch rates with and without trace packing\n"
              "(paper: +2%..+14%, average +7%; our scaled runs amplify the\n"
              "redundancy cold-miss cost on big-footprint benchmarks)",
    )
    emit("fig9", text)
    # Packing helps a majority of benchmarks and clearly helps the
    # loop-dominated ones (dynamic loop unrolling).
    gains = {r["benchmark"]: r["pct_increase"] for r in rows}
    assert gains["pgp"] > 5.0
    assert gains["m88ksim"] > 3.0
    helped = sum(1 for v in gains.values() if v > 0)
    assert helped >= 8
