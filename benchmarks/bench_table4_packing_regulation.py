"""Table 4: regulating trace-packing redundancy (miss-cycle inflation)."""

from conftest import run_once

from repro.experiments import table4_rows
from repro.report import format_table


def bench_table4_packing_regulation(benchmark, emit):
    data = run_once(benchmark, table4_rows)
    rows = data["rows"]
    text = format_table(
        ["Benchmark", "unreg (%)", "cost-reg (%)", "n=2 (%)", "n=4 (%)",
         "unreg TCmiss (%)", "cost-reg TCmiss (%)"],
        [[r["benchmark"], r["unreg"], r["cost-reg"], r["n=2"], r["n=4"],
          r["unreg_tc_miss"], r["cost-reg_tc_miss"]] for r in rows],
        title="Table 4. Percent increase in cache-miss cycles (and trace-cache\n"
              "misses) of packing over the promotion configuration\n"
              "(paper: unreg +27..96% miss cycles; regulation cuts it sharply)",
    )
    avg = data["avg_efr"]
    summary = ("Ave effective fetch rate: " +
               ", ".join(f"{k} {v:.2f}" for k, v in avg.items()) +
               "  (paper: unreg 12.47, cost-reg 12.23, n=2 12.42, n=4 12.18)")
    emit("table4", text + "\n\n" + summary)

    # Unregulated packing inflates trace-cache misses; cost regulation
    # cuts the inflation on every benchmark.  (With recovery-resynchronized
    # filling the inflation is ~+12..20% at our run lengths rather than the
    # paper's +27..96% miss cycles; see EXPERIMENTS.md.)
    for r in rows:
        assert r["unreg_tc_miss"] > 5.0
        assert r["cost-reg_tc_miss"] < r["unreg_tc_miss"]
    # Cost regulation also keeps the fetch rate competitive, and the EFR
    # ordering matches the paper: unreg >= n=2 >= cost-reg >= n=4 (loosely).
    assert avg["cost-reg"] > 0.95 * avg["unreg"]
    assert avg["unreg"] >= avg["n=4"]
