"""Experiment-service robustness numbers (ISSUE 8).

Two questions a shared front door must answer quantitatively:

* **Coalescing effectiveness** — a duplicate storm of 1k identical
  submissions must collapse to (at most two) computations; everything
  else attaches to the in-flight future or hits the warmed cache.
* **Admission latency** — overload must be answered with an explicit,
  *fast* rejection: a client told "retry later" in a millisecond can
  back off; a client left hanging cannot.

Numbers land in ``output/BENCH_service.json``; the rendered summary in
``output/BENCH_service.txt`` feeds EXPERIMENTS.md.
"""

import json
import os
import statistics
import tempfile
import threading
import time

from conftest import OUTPUT_DIR, run_once

from repro import config as cfg
from repro.experiments import runner, scheduler
from repro.experiments.scheduler import GridPoint
from repro.service import ServiceClient, ServiceOverloaded
from repro.service.server import ServiceThread

N = 20_000 if os.environ.get("REPRO_QUICK") else 100_000
STORM = 1_000
REJECT_SAMPLES = 200


def _point(config=cfg.BASELINE, benchmark="compress"):
    return GridPoint("frontend", benchmark, config, N)


def _percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _time_storm():
    """1k duplicate submissions against one gated computation."""
    computed = []
    gate = threading.Event()
    real = scheduler._run_point

    def gated(point, engine=None):
        computed.append(point)
        gate.wait(timeout=120)
        return real(point, engine)

    scheduler._run_point = gated
    service = ServiceThread(host="127.0.0.1", port=0, jobs=1,
                            admit_max=64, client_backlog=2 * STORM)
    try:
        host, port = service.start()
        with ServiceClient(host, port, timeout=300) as client:
            start = time.perf_counter()
            ids = [client.submit_nowait([_point()]) for _ in range(STORM)]
            submit_seconds = time.perf_counter() - start
            gate.set()
            rows = [client.result(i, raw=True) for i in ids]
            drain_seconds = time.perf_counter() - start
            status = client.status()
        ok = sum(1 for r in rows if r[0]["status"] == "ok")
        return {
            "duplicates": STORM,
            "ok": ok,
            "computations": len(computed),
            "created_total": status["coalesce"]["created_total"],
            "coalesced_total": status["coalesce"]["coalesced_total"],
            "cache_hits": status["counters"]["cache_hits"],
            "submit_seconds": submit_seconds,
            "drain_seconds": drain_seconds,
        }
    finally:
        gate.set()
        service.stop()
        scheduler._run_point = real


def _time_admission():
    """RTTs for pings, explicit rejections, and warm cache submits."""
    gate = threading.Event()
    real = scheduler._run_point

    def gated(point, engine=None):
        gate.wait(timeout=120)
        return real(point, engine)

    scheduler._run_point = gated
    service = ServiceThread(host="127.0.0.1", port=0, jobs=1, admit_max=1)
    try:
        host, port = service.start()
        with ServiceClient(host, port, timeout=300) as client:
            pings = []
            for _ in range(REJECT_SAMPLES):
                start = time.perf_counter()
                client.ping()
                pings.append(time.perf_counter() - start)
            # Saturate the single admission slot, then time rejections.
            blocker = client.submit_nowait([_point(cfg.PROMOTION)])
            while client.status()["in_flight"] < 1:
                time.sleep(0.01)
            rejects = []
            with ServiceClient(host, port, timeout=300) as second:
                for _ in range(REJECT_SAMPLES):
                    start = time.perf_counter()
                    try:
                        second.submit([_point(cfg.PROMOTION_PACKING)])
                    except ServiceOverloaded:
                        rejects.append(time.perf_counter() - start)
            gate.set()
            client.result(blocker)
            # Warm path: the point is cached now; time full submits.
            warms = []
            for _ in range(50):
                start = time.perf_counter()
                client.submit([_point(cfg.PROMOTION)])
                warms.append(time.perf_counter() - start)
        return {
            "samples": REJECT_SAMPLES,
            "ping_ms_mean": 1e3 * statistics.fmean(pings),
            "rejected": len(rejects),
            "rejected_ms_mean": 1e3 * statistics.fmean(rejects),
            "rejected_ms_p95": 1e3 * _percentile(rejects, 0.95),
            "warm_submit_ms_mean": 1e3 * statistics.fmean(warms),
            "warm_submit_ms_p95": 1e3 * _percentile(warms, 0.95),
        }
    finally:
        gate.set()
        service.stop()
        scheduler._run_point = real


def _time_service():
    # Fully isolated cache: coalescing is only observable when the
    # storm's point is not already on disk.
    saved = os.environ.get("REPRO_CACHE_DIR")
    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as tmp:
        os.environ["REPRO_CACHE_DIR"] = tmp
        try:
            runner.clear_caches()
            return {"storm": _time_storm(), "admission": _time_admission()}
        finally:
            runner.clear_caches()
            if saved is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = saved


def bench_service(benchmark, emit):
    report = run_once(benchmark, _time_service)

    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_service.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")

    storm, admission = report["storm"], report["admission"]
    lines = [
        "Experiment service robustness",
        f"  duplicate storm: {storm['duplicates']} submissions -> "
        f"{storm['computations']} computation(s) "
        f"({storm['coalesced_total']} coalesced, "
        f"{storm['cache_hits']} cache hits)",
        f"    pipelined submit {storm['submit_seconds']:.2f}s, "
        f"all answered in {storm['drain_seconds']:.2f}s",
        f"  admission: ping {admission['ping_ms_mean']:.2f}ms mean; "
        f"explicit rejection {admission['rejected_ms_mean']:.2f}ms mean / "
        f"{admission['rejected_ms_p95']:.2f}ms p95",
        f"  warm cached submit {admission['warm_submit_ms_mean']:.2f}ms "
        f"mean / {admission['warm_submit_ms_p95']:.2f}ms p95",
    ]
    emit("BENCH_service", "\n".join(lines))

    # Structural assertions — no machine-dependent latency floors.
    assert storm["ok"] == storm["duplicates"]  # nothing hangs or drops
    assert storm["computations"] <= 2  # the acceptance bound
    assert storm["created_total"] <= 2
    assert admission["rejected"] == admission["samples"]  # all explicit
    assert admission["rejected_ms_p95"] < 5_000  # rejection is prompt
