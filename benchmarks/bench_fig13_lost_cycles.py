"""Figure 13: % change in cycles lost to mispredictions vs baseline."""

from conftest import run_once

from repro.experiments import figure13_rows
from repro.report import format_bar_chart


def bench_fig13_lost_cycles(benchmark, emit):
    rows = run_once(benchmark, figure13_rows)
    text = format_bar_chart(
        {r["benchmark"]: r["pct_change"] for r in rows},
        title="Figure 13. Percent change in fetch cycles lost to branch\n"
              "mispredictions, promotion+packing vs baseline (paper: most\n"
              "benchmarks lose MORE cycles despite fewer mispredictions,\n"
              "because resolution time grows)",
        fmt="{:+7.1f}",
    )
    emit("fig13", text)
    # Some benchmarks must show increased loss (the paper's central
    # bottleneck finding); the average change is bounded.
    increased = sum(1 for r in rows if r["pct_change"] > 0)
    assert increased >= 3
    mean = sum(r["pct_change"] for r in rows) / len(rows)
    assert -40.0 < mean < 60.0
