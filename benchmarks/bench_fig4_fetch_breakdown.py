"""Figure 4: fetch-size breakdown for gcc on the baseline trace cache."""

from conftest import run_once

from repro.config import BASELINE
from repro.experiments import fetch_breakdown
from repro.frontend.stats import FetchReason
from repro.report import format_bar_chart, format_histogram


def bench_fig4_fetch_breakdown(benchmark, emit):
    data = run_once(benchmark, fetch_breakdown, "gcc", BASELINE)
    sizes = {}
    for (size, _reason), frac in data["histogram"].items():
        sizes[size] = sizes.get(size, 0.0) + frac
    text = "\n\n".join([
        format_histogram(sizes, title="Figure 4. Fetch width breakdown, gcc, baseline"),
        format_bar_chart({r.value: f for r, f in data["reasons"].items()},
                         title="Termination reasons (fraction of fetches)",
                         fmt="{:6.3f}"),
        f"Average fetch size: {data['avg']:.2f} (paper: 9.64)",
    ])
    emit("fig4", text)
    # Shape: multi-block fetches dominate; every paper category present.
    assert data["avg"] > 7.0
    assert data["reasons"].get(FetchReason.ATOMIC_BLOCKS, 0) > 0.02
    assert data["reasons"].get(FetchReason.MISPRED_BR, 0) > 0.01
