"""Figure 10: effective fetch rates for all five configurations."""

from conftest import run_once

from repro.experiments import figure10_rows
from repro.report import format_table


def bench_fig10_all_techniques(benchmark, emit):
    rows = run_once(benchmark, figure10_rows)
    text = format_table(
        ["Benchmark", "icache", "baseline", "packing", "promotion",
         "promo+pack", "both vs base (%)"],
        [[r["benchmark"], r["icache"], r["baseline"], r["packing"],
          r["promotion"], r["promotion,packing"], r["pct_both_over_baseline"]]
         for r in rows],
        title="Figure 10. Effective fetch rates for all techniques\n"
              "(paper: both techniques +17% over baseline on average,\n"
              "often super-additive)",
    )
    n = len(rows)
    avg = {key: sum(r[key] for r in rows) / n
           for key in ("icache", "baseline", "packing", "promotion",
                       "promotion,packing")}
    summary = (f"Averages: icache {avg['icache']:.2f}, baseline {avg['baseline']:.2f}, "
               f"packing {avg['packing']:.2f}, promotion {avg['promotion']:.2f}, "
               f"both {avg['promotion,packing']:.2f} "
               f"({100 * (avg['promotion,packing'] / avg['baseline'] - 1):+.1f}% vs baseline)")
    emit("fig10", text + "\n\n" + summary)

    # Headline shapes.
    assert avg["baseline"] > 1.5 * avg["icache"]
    assert avg["promotion,packing"] > 1.04 * avg["baseline"]
    assert avg["promotion"] > avg["baseline"]
    # Super-additivity on the average, as the paper reports: the combined
    # gain exceeds the sum of the individual gains.
    gain_promo = avg["promotion"] - avg["baseline"]
    gain_pack = avg["packing"] - avg["baseline"]
    gain_both = avg["promotion,packing"] - avg["baseline"]
    assert gain_both > 0.9 * (gain_promo + gain_pack)
