"""Figure 16: IPC with an ideal, aggressive execution engine."""

from conftest import run_once, strict

from repro.experiments import figure11_rows, figure16_rows
from repro.report import format_table


def bench_fig16_ipc_perfect(benchmark, emit):
    rows = run_once(benchmark, figure16_rows)
    text = format_table(
        ["Benchmark", "icache", "baseline", "promo+cost-reg", "vs baseline (%)"],
        [[r["benchmark"], r["icache"], r["baseline"], r["promotion,packing"],
          r["pct_new_over_baseline"]] for r in rows],
        title="Figure 16. IPC with perfect memory disambiguation\n"
              "(paper: promotion+packing +11% over baseline, +63% over icache)",
    )
    n = len(rows)
    avg = {k: sum(r[k] for r in rows) / n
           for k in ("icache", "baseline", "promotion,packing")}
    conservative = figure11_rows()  # cached when fig11 ran first
    avg_cons = {k: sum(r[k] for r in conservative) / n
                for k in ("baseline", "promotion,packing")}
    gain_perfect = avg["promotion,packing"] / avg["baseline"] - 1
    gain_cons = avg_cons["promotion,packing"] / avg_cons["baseline"] - 1
    summary = (f"Averages: icache {avg['icache']:.2f}, baseline {avg['baseline']:.2f}, "
               f"promo+pack {avg['promotion,packing']:.2f}\n"
               f"Techniques' gain: {100 * gain_cons:+.1f}% (conservative core) -> "
               f"{100 * gain_perfect:+.1f}% (perfect disambiguation)\n"
               f"(paper: +4% -> +11%)")
    emit("fig16", text + "\n\n" + summary)

    # The paper's conclusion: with the execution bottleneck removed, the
    # front-end techniques' gain grows.
    assert avg["baseline"] > avg["icache"]
    if strict():
        # Paper: +4% -> +11%.  Our compressed headroom (A3 in
        # EXPERIMENTS.md) lands the levels near baseline; the directional
        # claim — the techniques gain MORE once memory disambiguation is
        # perfect — is what we assert.
        assert avg["promotion,packing"] > 0.97 * avg["baseline"]
        assert gain_perfect > gain_cons - 0.005
