"""Divergence exceptions and the forced-divergence test latch.

This module is a leaf (it imports nothing from the rest of the
package), so any layer — including :mod:`repro.experiments.faults`,
which must classify exceptions coming back from pool workers — can
import it without cycles.

:class:`DivergenceError` carries its state in ``args`` so it survives
the default ``BaseException`` pickling round trip through a process
pool: a worker that detects a divergence raises it, and the parent-side
supervisor still sees the fetch index and the on-disk report path.
"""

from __future__ import annotations

from typing import Optional


class DivergenceError(AssertionError):
    """The fast engine disagreed with the frozen reference.

    Subclasses :class:`AssertionError` because a divergence *is* a
    violated correctness assertion; it gets its own type so the
    scheduler can recognize it and requeue the point pinned to the
    reference engine instead of treating it as an ordinary
    deterministic simulation failure.
    """

    def __init__(self, message: str, fetch_index: int = -1,
                 report_path: Optional[str] = None, injected: bool = False):
        # Positional args only: BaseException pickles (type, args), so
        # custom attributes set outside args would vanish on the trip
        # from a pool worker back to the supervisor.
        super().__init__(message, fetch_index, report_path, injected)
        #: Expected/observed fetch signatures, attached by the observer
        #: for report writing in the detecting process; not pickled.
        self.expected = None
        self.got = None

    @property
    def message(self) -> str:
        return self.args[0]

    @property
    def fetch_index(self) -> int:
        return self.args[1]

    @property
    def report_path(self) -> Optional[str]:
        return self.args[2]

    @property
    def injected(self) -> bool:
        return self.args[3]

    def with_report(self, path) -> "DivergenceError":
        """A copy of this error pointing at a written report file."""
        clone = DivergenceError(self.args[0], self.args[1], str(path),
                                self.args[3])
        clone.expected = self.expected
        clone.got = self.got
        clone.__cause__ = self.__cause__
        return clone

    def __str__(self) -> str:
        return self.args[0]


class InvariantError(AssertionError):
    """A structural invariant check failed while validation was armed."""


# --------------------------------------------------- forced divergences
#
# The chaos harness (REPRO_FAULTS=diverge:pN) needs a way to make the
# fast engine *appear* wrong without actually perturbing simulation
# state: the lockstep observer consumes this latch at its next checked
# fetch and raises a DivergenceError flagged as injected.  A plain
# module-global counter — it only ever runs inside one armed worker.

_forced = 0


def arm_forced_divergence(count: int = 1) -> None:
    """Make the next ``count`` observed fetches report a divergence."""
    global _forced
    _forced = max(0, count)


def consume_forced_divergence() -> bool:
    """True once per armed forced divergence (called by the observer)."""
    global _forced
    if _forced > 0:
        _forced -= 1
        return True
    return False


def forced_pending() -> bool:
    """Whether a forced divergence is armed (for tests)."""
    return _forced > 0
