"""Lockstep differential drivers: fast vs reference, same inputs.

The two front-end stacks consume the identical oracle stream, so a
reference run recorded fetch-by-fetch followed by a fast run checked
against the recording is observationally equivalent to driving both
engines side by side — and it pinpoints the exact first mismatching
fetch ordinal (see :mod:`repro.validate.observer`).  On top of the
per-fetch checks, both drivers compare the complete serialized results
byte-for-byte and the final engine-state digests, so even a mismatch
outside the sampled slice is caught at run end.

Two entry points:

* :func:`lockstep_frontend` — oracle-driven front-end simulation
  through both stacks; returns the (verified) fast result.
* :func:`lockstep_machine` — full cycle-level runs through the fast
  machine core + fast front end and the frozen reference machine +
  reference front end; the machine core has no per-fetch observer, so
  the check is the end-of-run serialized-result comparison.

On the first mismatch a divergence report is written
(:mod:`repro.validate.report`) and the enriched
:class:`~repro.validate.errors.DivergenceError` propagates; the
experiment scheduler catches it and requeues the point pinned to the
reference engine.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.cachekey import canonical_json
from repro.experiments.serialize import (
    frontend_result_to_dict,
    machine_result_to_dict,
)
from repro.validate import errors, report as report_module
from repro.validate.digests import engine_digest
from repro.validate.observer import FetchChecker, FetchRecorder


def _mode_label(stride: int) -> str:
    return "lockstep" if stride <= 1 else "sample"


def lockstep_frontend(benchmark: str, config, n: int, *, stride: int = 1,
                      offset: int = 0, report: bool = True,
                      program=None, oracle=None):
    """Run one front-end point through both stacks and cross-check.

    ``program``/``oracle`` default to the runner's memoized ones for
    ``benchmark``; the fuzzer passes synthetic ones directly (with
    ``benchmark`` as a label).  Returns the verified fast result.
    """
    from repro.experiments import runner
    from repro.frontend.build import build_engine
    from repro.frontend.simulator import FrontEndSimulator

    if program is None:
        program = runner.get_program(benchmark)
    if oracle is None:
        oracle = runner.get_oracle(benchmark, n)

    ref_engine = build_engine(program, config, fast=False)
    recorder = FetchRecorder(ref_engine, stride=stride, offset=offset)
    ref_result = FrontEndSimulator(program, config, oracle=oracle,
                                   engine=ref_engine,
                                   observer=recorder).run()

    fast_engine = build_engine(program, config, fast=True)
    checker = FetchChecker(fast_engine, recorder)
    divergence: Optional[errors.DivergenceError] = None
    fast_result = None
    try:
        fast_result = FrontEndSimulator(program, config, oracle=oracle,
                                        engine=fast_engine,
                                        observer=checker).run()
    except errors.DivergenceError as exc:
        divergence = exc
    if divergence is None:
        divergence = checker.excess_fetches()
    if divergence is None and engine_digest(fast_engine) != engine_digest(ref_engine):
        divergence = errors.DivergenceError(
            "fast engine diverged from reference: end-of-run engine "
            "state digest mismatch")
        divergence.expected = engine_digest(ref_engine)
        divergence.got = engine_digest(fast_engine)
    if divergence is None:
        fast_bytes = canonical_json(frontend_result_to_dict(fast_result))
        ref_bytes = canonical_json(frontend_result_to_dict(ref_result))
        if fast_bytes != ref_bytes:
            divergence = errors.DivergenceError(
                "fast engine diverged from reference: serialized "
                "FrontEndResult mismatch")
    if divergence is not None:
        if report:
            path = report_module.write_report(
                kind="frontend", benchmark=benchmark, config=config, n=n,
                exc=divergence, mode=_mode_label(stride), stride=stride,
                offset=offset)
            if path is not None:
                divergence = divergence.with_report(path)
        raise divergence
    return fast_result


def lockstep_machine(benchmark: str, config, n: int, *, warmup: bool = True,
                     warmup_n: Optional[int] = None, report: bool = True):
    """Run one machine point through both full stacks and cross-check.

    The reference side pairs the frozen machine core with the frozen
    front end; the fast side pairs the event-driven core with the fast
    front end — so a mismatch flags a divergence in *either* layer.
    Returns the verified fast result.
    """
    from repro.core.machine import Machine
    from repro.core.machine_reference import Machine as ReferenceMachine
    from repro.experiments import runner
    from repro.frontend.build import build_engine
    from repro.frontend.simulator import FrontEndSimulator

    program = runner.get_program(benchmark)
    if warmup and warmup_n is None:
        warmup_n = runner.default_length(benchmark)

    def one_run(machine_cls, fast: bool):
        engine = None
        if warmup:
            engine = build_engine(program, config.frontend,
                                  memory_config=config.memory, fast=fast)
            FrontEndSimulator(program, config.frontend,
                              oracle=runner.get_oracle(benchmark, warmup_n),
                              engine=engine).run()
        return machine_cls(program, config, max_instructions=n,
                           engine=engine).run()

    divergence: Optional[errors.DivergenceError] = None
    if errors.consume_forced_divergence():
        divergence = errors.DivergenceError(
            "fast machine diverged from reference: injected divergence",
            injected=True)
        fast_result = None
    else:
        ref_result = one_run(ReferenceMachine, fast=False)
        fast_result = one_run(Machine, fast=True)
        fast_bytes = canonical_json(machine_result_to_dict(fast_result))
        ref_bytes = canonical_json(machine_result_to_dict(ref_result))
        if fast_bytes != ref_bytes:
            divergence = errors.DivergenceError(
                "fast machine diverged from reference: serialized "
                "MachineResult mismatch")
    if divergence is not None:
        if report:
            path = report_module.write_report(
                kind="machine", benchmark=benchmark, config=config, n=n,
                exc=divergence, mode="lockstep", warmup=warmup,
                warmup_n=warmup_n)
            if path is not None:
                divergence = divergence.with_report(path)
        raise divergence
    return fast_result


def lockstep_parity_cases(cases, n: int) -> List[str]:
    """Run lockstep over a list of ``(benchmark, config)`` cases.

    Returns the list of divergence report paths (empty on full parity);
    used by the CI validation job to sweep the pinned parity cases plus
    the paper grids through the online guard.
    """
    paths = []
    for benchmark, config in cases:
        try:
            lockstep_frontend(benchmark, config, n)
        except errors.DivergenceError as exc:
            paths.append(exc.report_path or f"<unwritten: {exc.message}>")
    return paths
