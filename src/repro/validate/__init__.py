"""Online divergence guard: lockstep fast/reference validation.

PR 4 split every hot front-end component into a fast engine and a
frozen reference copy, pinned by a fixed parity suite.  This package
turns that parity contract into an *online* guard that can run under
any config and workload:

* **Lockstep differential mode** (``REPRO_VALIDATE=lockstep``, or the
  ``--validate`` CLI flag): every simulation drives the fast and the
  reference stacks over the same input and cross-checks delivered fetch
  slots, predictor-state digests, fill-unit finalizations and the final
  serialized result (:mod:`repro.validate.lockstep`).
* **Sample mode** (``REPRO_VALIDATE=sample`` or ``sample:N``): the same
  dual run, but the per-fetch observer checks a deterministic 1-in-N
  slice of fetches (offset seeded from the grid point's content hash)
  — cheap enough for CI grids; the end-of-run full-result comparison is
  always kept.
* **Structural invariants**: when any mode is armed, the fill unit,
  bias table, RAS and machine core run extra self-checks
  (:func:`invariants_armed`); they cost nothing when validation is off.
* **Divergence handling**: the first mismatch raises
  :class:`~repro.validate.errors.DivergenceError` after writing a
  self-contained report under ``$REPRO_CACHE_DIR/divergences/``
  (:mod:`repro.validate.report`), replayable with
  ``python -m repro validate-replay <report.json>``.  The experiment
  scheduler requeues the point pinned to the reference engine so grids
  complete with trustworthy numbers.

Legacy compatibility: ``REPRO_VALIDATE=1`` historically enabled only
the fill unit's per-segment checks; it now means ``lockstep``, a strict
superset.

This ``__init__`` stays import-light (mode parsing only); the heavy
submodules load lazily via attribute access.
"""

from __future__ import annotations

import os

#: Recognized REPRO_VALIDATE modes.
OFF = "off"
LOCKSTEP = "lockstep"
SAMPLE = "sample"

#: Default 1-in-N slice for ``sample`` mode with no explicit stride.
DEFAULT_SAMPLE_STRIDE = 64

_OFF_VALUES = ("", "0", "off", "none")
_LOCKSTEP_VALUES = ("1", "lockstep", "on", "full")


def parse_mode(raw) -> tuple:
    """Parse a ``REPRO_VALIDATE`` value into ``(mode, stride)``.

    Returns one of ``("off", 1)``, ``("lockstep", 1)`` or
    ``("sample", N)``.  Unrecognized values warn once and mean off — a
    typo must look like a typo, not silently validate nothing while the
    user believes the guard is armed.
    """
    if raw is None:
        return (OFF, 1)
    value = raw.strip().lower()
    if value in _OFF_VALUES:
        return (OFF, 1)
    if value in _LOCKSTEP_VALUES:
        return (LOCKSTEP, 1)
    if value == SAMPLE:
        return (SAMPLE, DEFAULT_SAMPLE_STRIDE)
    if value.startswith("sample:"):
        try:
            stride = int(value.split(":", 1)[1])
        except ValueError:
            stride = 0
        if stride >= 1:
            return (SAMPLE, stride)
    from repro.experiments import warnonce
    warnonce.warn_once(
        "repro-validate",
        f"ignoring invalid REPRO_VALIDATE={raw!r} "
        "(expected off, lockstep, sample, or sample:N); validation off")
    return (OFF, 1)


def mode() -> str:
    """The armed validation mode: ``off``, ``lockstep`` or ``sample``."""
    return parse_mode(os.environ.get("REPRO_VALIDATE"))[0]


def sample_stride() -> int:
    """The 1-in-N fetch-check stride (1 outside sample mode)."""
    return parse_mode(os.environ.get("REPRO_VALIDATE"))[1]


def armed() -> bool:
    """Whether any validation mode is on."""
    return mode() != OFF


def invariants_armed() -> bool:
    """Whether structural invariant checks should run.

    Currently identical to :func:`armed`: any validation mode arms the
    per-structure self-checks.  Split out so structures take a single
    boolean at construction time and stay zero-cost when off.
    """
    return armed()


def __getattr__(name: str):
    """Lazy re-exports of the heavy submodules' public API."""
    import importlib

    if name in ("errors", "digests", "observer", "lockstep", "report"):
        return importlib.import_module(f"{__name__}.{name}")
    for module in ("errors", "lockstep", "report", "digests", "observer"):
        mod = importlib.import_module(f"{__name__}.{module}")
        if hasattr(mod, name):
            return getattr(mod, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
