"""Compact state digests for cross-checking fast vs reference engines.

A lockstep run cannot afford to serialize whole engines at every
checkpoint, so equivalence is checked through SHA-256 digests of the
state that actually drives future fetch behavior: the speculative
(GHR, RAS) snapshot, the predictor counter tables, the trace-cache
statistics and resident-segment count, the fill unit's finalization
record, and the bias table's promotion counters.

Everything here is duck-typed over *both* stacks: the fast tree and
split predictors and their frozen reference copies deliberately share
counter-table layouts (flat bytearrays), so their bytes are directly
comparable; shared components (gshare, PAs, hybrid, indirect predictor,
trace cache) digest through one code path.
"""

from __future__ import annotations

import hashlib
from typing import Optional


def _counter_bytes(predictor) -> bytes:
    """The raw counter storage of any predictor organization.

    * tree multiple-branch predictors (fast and reference) expose a flat
      ``_table`` bytearray of rows x 7 counters;
    * split predictors expose ``tables`` — per-block gshare predictors
      whose ``counters._table`` bytearrays are concatenated;
    * hybrid (icache front end) exposes gshare/PAs/selector components;
    * anything else contributes nothing (both stacks then agree on the
      empty string rather than crashing on an unknown organization).
    """
    table = getattr(predictor, "_table", None)
    if table is not None and getattr(predictor, "tables", None) is None:
        return bytes(table)
    tables = getattr(predictor, "tables", None)
    if tables is not None:
        return b"".join(bytes(t.counters._table) for t in tables)
    gshare = getattr(predictor, "gshare", None)
    if gshare is not None:  # hybrid
        return (bytes(predictor.gshare.counters._table)
                + bytes(predictor.pas.counters._table)
                + bytes(predictor.selector._table))
    return b""


def predictor_digest(predictor) -> str:
    """Hex digest of a predictor's counter state."""
    return hashlib.sha256(_counter_bytes(predictor)).hexdigest()


def engine_digest(engine) -> str:
    """Hex digest of everything that steers an engine's future fetches.

    Identical inputs must yield identical digests across the fast and
    reference stacks — that is the whole contract; any state the two
    stacks legitimately represent differently (compiled variant caches,
    memo tables) is excluded because it is derived, not architectural.
    """
    hasher = hashlib.sha256()
    ghr, ras = engine.snapshot()
    hasher.update(repr((ghr, tuple(ras))).encode())
    predictor = getattr(engine, "predictor", None)
    if predictor is not None:
        hasher.update(_counter_bytes(predictor))
    indirect = getattr(engine, "indirect", None)
    if indirect is not None:
        hasher.update(repr((tuple(indirect._tags),
                            tuple(indirect._targets))).encode())
    trace_cache = getattr(engine, "trace_cache", None)
    if trace_cache is not None:
        stats = trace_cache.stats
        hasher.update(repr((stats.hits, stats.misses, stats.writes,
                            stats.replacements, stats.overwrites,
                            trace_cache.resident_segments())).encode())
    fill_unit = getattr(engine, "fill_unit", None)
    if fill_unit is not None:
        hasher.update(repr((sorted(
            (reason.value, count)
            for reason, count in fill_unit.finalize_reasons.items()),
            fill_unit.segments_built)).encode())
        bias = fill_unit.bias_table
        if bias is not None:
            hasher.update(repr((bias.promotions, bias.demotions)).encode())
    return hasher.hexdigest()


def fetch_signature(pc: int, result) -> tuple:
    """The externally visible outcome of one fetch, as comparable data.

    This is the same signature the parity suite pins: the delivered
    instruction addresses, their embedded directions and promotion
    flags, the predicted successor, and the accounting attributes.  It
    works on generic and compiled-variant fetch results alike.
    """
    return (
        pc,
        result.source,
        result.next_pc,
        tuple(inst.addr for inst in result.active),
        tuple(result.active_dirs),
        tuple(bool(p) for p in result.active_promoted),
        result.predictions_used,
        result.raw_reason,
        result.divergence,
        result.stall_cycles,
    )


def describe_signature(sig: Optional[tuple]) -> Optional[dict]:
    """A JSON-safe rendering of a fetch signature for divergence reports."""
    if sig is None:
        return None
    (pc, source, next_pc, addrs, dirs, promoted,
     predictions, reason, divergence, stall) = sig
    return {
        "pc": pc,
        "source": source,
        "next_pc": next_pc,
        "active_addrs": list(addrs),
        "active_dirs": [None if d is None else bool(d) for d in dirs],
        "active_promoted": list(promoted),
        "predictions_used": predictions,
        "raw_reason": getattr(reason, "value", str(reason)),
        "divergence": bool(divergence),
        "stall_cycles": stall,
    }
