"""Self-contained divergence reports, written on first mismatch.

A divergence that kills a 40-minute grid with a bare assertion is
useless to whoever has to debug it.  When the lockstep guard detects a
mismatch it writes one JSON file under
``$REPRO_CACHE_DIR/divergences/`` carrying everything needed to
reproduce it from scratch in a fresh checkout: the benchmark, the full
type-tagged configuration, the run length, the first mismatching fetch
ordinal, both fetch signatures (expected vs got), whether the fault was
injected by the chaos harness, the source fingerprint the divergence
was observed under, and a *minimized* replay length — just enough
oracle stream to reach the mismatch plus slack, so the replay is
seconds even when the original run was minutes.

``python -m repro validate-replay <report.json>`` re-runs the lockstep
comparison from the report alone and exits nonzero iff the divergence
still reproduces.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from repro.experiments import diskcache, warnonce
from repro.experiments.cachekey import (
    canonical_json,
    code_fingerprint,
    config_from_dict,
    config_to_dict,
)
from repro.validate.digests import describe_signature
from repro.validate.errors import DivergenceError

#: Report payload layout version.
REPORT_VERSION = 1

#: Oracle slack appended to the minimized replay window: enough stream
#: past the mismatching fetch that the divergent fetch itself (at most
#: 16 instructions) completes and retires.
_REPLAY_SLACK = 64


def divergence_dir() -> Path:
    """Reports live beside the result cache, under ``divergences/``."""
    return diskcache.cache_dir() / "divergences"


def _render_state(value) -> Any:
    """JSON-safe rendering of an expected/got value.

    Fetch signatures become structured dicts; digests pass through;
    anything else degrades to ``repr``.
    """
    if value is None:
        return None
    if isinstance(value, tuple) and len(value) == 10:
        try:
            return describe_signature(value)
        except Exception:
            return repr(value)
    if isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def minimized_length(n: int, fetch_index: int) -> int:
    """The shortest oracle window that still reaches the mismatch.

    A fetch delivers at most 16 instructions, so ``fetch_index + 1``
    fetches consume at most ``16 * (fetch_index + 1)`` oracle entries;
    the slack keeps the divergent fetch itself inside the window.
    """
    if fetch_index < 0:
        return n
    return min(n, 16 * (fetch_index + 1) + _REPLAY_SLACK)


def write_report(*, kind: str, benchmark: str, config, n: int,
                 exc: DivergenceError, mode: str, stride: int = 1,
                 offset: int = 0, warmup: Optional[bool] = None,
                 warmup_n: Optional[int] = None) -> Optional[Path]:
    """Persist one divergence report; returns its path (None on failure).

    Writing is atomic (temp + rename) and failure-tolerant: a full disk
    must not mask the divergence itself — the caller still raises.
    """
    payload: Dict[str, Any] = {
        "version": REPORT_VERSION,
        "kind": kind,
        "benchmark": benchmark,
        "config": config_to_dict(config),
        "n": n,
        "mode": mode,
        "stride": stride,
        "offset": offset,
        "fetch_index": exc.fetch_index,
        "injected": exc.injected,
        "message": exc.message,
        "expected": _render_state(exc.expected),
        "got": _render_state(exc.got),
        "repro_n": minimized_length(n, exc.fetch_index) if kind == "frontend" else n,
        "warmup": warmup,
        "warmup_n": warmup_n,
        "code": code_fingerprint(),
        "replay": "python -m repro validate-replay <this file>",
    }
    identity = hashlib.sha256(canonical_json({
        "kind": kind, "benchmark": benchmark,
        "config": payload["config"], "n": n,
        "fetch_index": exc.fetch_index, "injected": exc.injected,
        "code": payload["code"],
    }).encode()).hexdigest()[:16]
    directory = divergence_dir()
    path = directory / f"div-{benchmark}-{identity}.json"
    try:
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True, indent=2)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except (KeyboardInterrupt, SystemExit):
        raise
    except OSError:
        warnonce.warn_once(
            "divergence-report-write",
            f"cannot write divergence report under {directory}; "
            "the divergence itself is still raised")
        return None
    return path


def load_report(path) -> Dict[str, Any]:
    """Parse one report file; raises ``ValueError`` on a malformed one."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or payload.get("version") != REPORT_VERSION:
        raise ValueError(f"not a version-{REPORT_VERSION} divergence report: {path}")
    return payload


def replay_report(path) -> Optional[DivergenceError]:
    """Re-run the lockstep comparison a report describes.

    Returns the fresh :class:`DivergenceError` when the divergence
    still reproduces, or None when the run is clean (e.g. the original
    was injected by the chaos harness, or the bug has been fixed).
    """
    payload = load_report(path)
    config = config_from_dict(payload["config"])
    from repro.validate import lockstep
    try:
        if payload["kind"] == "machine":
            lockstep.lockstep_machine(
                payload["benchmark"], config, payload["repro_n"],
                warmup=bool(payload.get("warmup", True)),
                warmup_n=payload.get("warmup_n"), report=False)
        else:
            lockstep.lockstep_frontend(
                payload["benchmark"], config, payload["repro_n"],
                report=False)
    except DivergenceError as exc:
        return exc
    return None
