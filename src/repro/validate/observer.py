"""Per-fetch observers for lockstep differential validation.

The front-end simulator exposes a single interception point — the
engine's ``fetch`` callable — and every fetch (generic walk or compiled
variant) passes through it exactly once.  A :class:`FetchRecorder`
wraps the *reference* engine's fetch and records the signature of each
checked fetch plus periodic engine-state digests; a
:class:`FetchChecker` wraps the *fast* engine's fetch and compares
against the recording, raising
:class:`~repro.validate.errors.DivergenceError` at the first mismatch.

Because both runs consume the identical oracle stream, the two engines
see identical inputs up to the first divergence, so record-then-check
is observationally equivalent to a true side-by-side drive — and it
pinpoints the exact first mismatching fetch ordinal.

In ``sample`` mode only ordinals with ``(ordinal - offset) % stride ==
0`` are checked (offset is seeded from the grid point's content hash by
the runner), which bounds observer overhead for CI grids; digests are
additionally taken every :data:`DIGEST_PERIOD` fetches so silent state
skew is caught within one period even if no sampled signature differs.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.validate import errors
from repro.validate.digests import engine_digest, fetch_signature

#: Engine-state digests are cross-checked every this-many fetches.
DIGEST_PERIOD = 2048


class FetchRecorder:
    """Records checked fetch signatures and periodic digests."""

    def __init__(self, engine, stride: int = 1, offset: int = 0):
        self.engine = engine
        self.stride = max(1, stride)
        self.offset = offset % self.stride
        self.ordinal = 0
        self.signatures: Dict[int, tuple] = {}
        self.digests: Dict[int, str] = {}

    def wrap(self, fetch):
        """The instrumented fetch callable the simulator should drive."""
        def observed(pc):
            result = fetch(pc)
            ordinal = self.ordinal
            self.ordinal = ordinal + 1
            if (ordinal - self.offset) % self.stride == 0:
                self.signatures[ordinal] = fetch_signature(pc, result)
            if ordinal % DIGEST_PERIOD == 0:
                self.digests[ordinal] = engine_digest(self.engine)
            return result
        return observed


class FetchChecker:
    """Checks a fast run against a :class:`FetchRecorder`'s recording."""

    def __init__(self, engine, recorder: FetchRecorder):
        self.engine = engine
        self.stride = recorder.stride
        self.offset = recorder.offset
        self.expected_signatures = recorder.signatures
        self.expected_digests = recorder.digests
        self.ordinal = 0
        self.checked = 0

    def _diverged(self, ordinal: int, what: str, expected, got,
                  injected: bool = False) -> errors.DivergenceError:
        exc = errors.DivergenceError(
            f"fast engine diverged from reference at fetch #{ordinal}: "
            f"{what} mismatch", fetch_index=ordinal, injected=injected)
        exc.expected = expected
        exc.got = got
        return exc

    def wrap(self, fetch):
        """The instrumented fetch callable the simulator should drive."""
        def observed(pc):
            result = fetch(pc)
            ordinal = self.ordinal
            self.ordinal = ordinal + 1
            if (ordinal - self.offset) % self.stride == 0:
                self.checked += 1
                if errors.consume_forced_divergence():
                    raise self._diverged(
                        ordinal, "injected", None, None, injected=True)
                got = fetch_signature(pc, result)
                expected = self.expected_signatures.get(ordinal)
                if got != expected:
                    raise self._diverged(ordinal, "fetch signature",
                                         expected, got)
            if ordinal % DIGEST_PERIOD == 0:
                got_digest = engine_digest(self.engine)
                expected_digest = self.expected_digests.get(ordinal)
                if got_digest != expected_digest:
                    raise self._diverged(ordinal, "engine state digest",
                                         expected_digest, got_digest)
            return result
        return observed

    def excess_fetches(self) -> Optional[errors.DivergenceError]:
        """A post-run check: did the fast run issue extra fetches?

        A desync that only *adds* fetches past the reference's count
        would otherwise surface as a confusing end-of-run stats diff.
        """
        recorded = len(self.expected_signatures)
        if self.stride == 1 and self.ordinal != recorded:
            return self._diverged(
                min(self.ordinal, recorded), "fetch count",
                recorded, self.ordinal)
        return None
