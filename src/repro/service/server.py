"""The asyncio experiment server: admission, supervision, drain.

One :class:`ExperimentService` owns one process pool and serves many
concurrent clients over line-delimited JSON
(:mod:`repro.service.protocol`).  The design goal is that a *shared*
front door is never worse than everyone running
:func:`repro.experiments.scheduler.run_grid` privately, and usually far
better, because the service adds four things the library cannot:

* **Admission control.**  Every submission is costed *before* any state
  is created: points already on disk, already journaled or already in
  flight are free; only genuinely new computations count against the
  global ``REPRO_ADMIT_MAX`` window, and each admitted-but-not-yet-
  started key holds a reservation against that window until its
  computation is attached, so concurrent submissions of *distinct*
  points cannot all be admitted against the same stale in-flight count
  (concurrent duplicates of a reserved key stay free: they coalesce
  onto its one computation).  An overloaded service answers with an
  explicit ``rejected`` + ``retry_after`` hint — it never queues
  unboundedly, never hangs a client, never silently drops work.
* **Request coalescing.**  In-flight points are deduplicated
  machine-wide by their content-hash cache keys
  (:mod:`repro.service.coalesce`): a duplicate storm of a thousand
  submissions costs one computation per distinct point, and a client
  that disconnects mid-wait only detaches itself — the computation
  finishes and warms the shared cache.
* **Graceful degradation.**  Per-point supervision mirrors the
  scheduler's taxonomy (transient -> retry with backoff, timeout ->
  kill the hung worker, deterministic -> one clean inline re-run,
  divergence -> requeue pinned to the reference engine), and a
  :class:`~repro.service.breaker.CircuitBreaker` trips the service from
  pooled to inline in-parent execution after repeated pool breaks —
  the safe floor, since injected faults never fire outside marked
  workers.
* **Crash-safe drain.**  SIGTERM (or the ``drain`` op) stops admitting,
  gives in-flight points a grace window, then answers every waiting
  client with explicit retryable errors and leaves each submission's
  checkpoint journal on disk — a restarted service recomputes only the
  unjournaled remainder, byte-identical to a clean run.
* **A worker fleet** (:mod:`repro.service.fleet`): remote ``repro
  worker`` processes pull points under heartbeat-renewed leases over
  the same protocol.  The dispatcher prefers the fleet when it has at
  least ``REPRO_FLEET_MIN`` live workers and its own circuit breaker is
  closed, then degrades to the local pool and finally inline — a lost
  worker revokes its leases and the points are requeued transparently.
  Per-point lifecycle events stream to ``subscribe``-d clients through
  :mod:`repro.service.events`.

Every submission runs under a grid checkpoint journal
(:mod:`repro.experiments.checkpoint`) keyed by its content-hashed point
set, so crash-resume works per client request, not just per process.

The server is single-event-loop; simulations run in pool workers (or,
degraded, in threads via ``asyncio.to_thread``), so the loop only ever
does bookkeeping and IO.
"""

from __future__ import annotations

import asyncio
import signal
import threading
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments import (checkpoint, diskcache, env, faults, runner,
                               scheduler, warnonce)
from repro.service import events as events_mod
from repro.service import fleet as fleet_mod
from repro.service import protocol
from repro.service.breaker import CircuitBreaker
from repro.service.coalesce import CoalesceTable, Entry
from repro.service.events import EventHub
from repro.service.fleet import Fleet

#: Default bind address when ``REPRO_SERVICE_ADDR`` is unset.
DEFAULT_ADDR = ("127.0.0.1", 8753)


class ServiceDraining(Exception):
    """The service is shutting down; the work is retryable elsewhere."""


class PointComputationError(Exception):
    """A point's terminal failure, tagged with the fault taxonomy kind."""

    def __init__(self, message: str, kind: str, retryable: bool):
        super().__init__(message)
        self.kind = kind
        self.retryable = retryable


class _Connection:
    """Per-client state: a write lock (responses interleave), backlog."""

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.lock = asyncio.Lock()
        self.active = 0      #: submissions currently being served
        self.alive = True

    async def send(self, message: Dict[str, Any]) -> None:
        if not self.alive:
            return
        try:
            data = protocol.encode(message)
        except protocol.ProtocolError:
            data = protocol.encode({"id": message.get("id"), "type": "error",
                                    "error": "response exceeded line limit"})
        async with self.lock:
            try:
                self.writer.write(data)
                await self.writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                self.alive = False  # client gone; computations continue


class ExperimentService:
    """The async grid front door.  See the module docstring."""

    def __init__(self, host: Optional[str] = None, port: Optional[int] = None,
                 *, jobs: Optional[int] = None,
                 admit_max: Optional[int] = None,
                 client_backlog: Optional[int] = None,
                 drain_grace: Optional[float] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 fleet_breaker: Optional[CircuitBreaker] = None,
                 lease_ttl: Optional[float] = None,
                 heartbeat: Optional[float] = None,
                 fleet_min: Optional[int] = None):
        default_host, default_port = env.get_hostport(
            "REPRO_SERVICE_ADDR", DEFAULT_ADDR)
        self.host = default_host if host is None else host
        self.port = default_port if port is None else port
        self._jobs = scheduler.resolve_jobs(jobs)
        if admit_max is None:
            admit_max = env.get_int("REPRO_ADMIT_MAX", 4 * self._jobs)
        self._admit_max = max(1, admit_max or 1)
        if client_backlog is None:
            client_backlog = env.get_int("REPRO_CLIENT_BACKLOG", 32)
        self._client_backlog = max(1, client_backlog or 1)
        if drain_grace is None:
            drain_grace = env.get_float("REPRO_DRAIN_GRACE", 30.0)
        self._drain_grace = max(0.0, drain_grace or 0.0)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.fleet_breaker = fleet_breaker if fleet_breaker is not None \
            else CircuitBreaker(name="fleet")
        self.hub = EventHub()
        self.fleet = Fleet(lease_ttl=lease_ttl, heartbeat=heartbeat,
                           min_workers=fleet_min, hub=self.hub)
        self.table = CoalesceTable()
        #: Admitted-but-not-yet-attached new keys, counted against the
        #: admission window so concurrent submissions (whose preparation
        #: awaits journal/cache IO) cannot oversubscribe it.  Keyed, not
        #: a counter: concurrent duplicates of a reserved key are free —
        #: they will coalesce onto the one computation, exactly like
        #: duplicates of a key already in the table.
        self._reserved: set = set()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_generation = 0
        self._pool_lock = asyncio.Lock()
        self._ordinal = 0
        self._drive_tasks: set = set()
        self._submit_tasks: set = set()
        self._conn_tasks: set = set()
        self._connections: set = set()
        self._draining = False
        self._reaper_task: Optional[asyncio.Task] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopped = asyncio.Event()
        self.counters: Dict[str, int] = {
            "clients": 0, "submissions": 0, "points": 0,
            "journal_hits": 0, "cache_hits": 0, "coalesced": 0,
            "computed_ok": 0, "computed_failed": 0, "rejected": 0,
        }

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port).

        ``port=0`` asks the OS for an ephemeral port (the test and bench
        harnesses rely on this); the resolved port is stored back on
        ``self.port``.
        """
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._on_client, self.host, self.port, limit=protocol.MAX_LINE)
        self.port = self._server.sockets[0].getsockname()[1]
        try:
            self._loop.add_signal_handler(signal.SIGTERM, self.begin_drain)
        except (NotImplementedError, RuntimeError, ValueError, OSError):
            pass  # non-main thread or platform without loop signals
        self._reaper_task = self._loop.create_task(self._reap_leases())
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Block until a drain (SIGTERM or the ``drain`` op) completes."""
        await self._stopped.wait()

    async def run(self) -> None:
        """``start`` + ``serve_forever`` + final cleanup, for callers."""
        await self.start()
        try:
            await self.serve_forever()
        finally:
            await self.aclose()

    def begin_drain(self) -> None:
        """Stop admitting and shut down gracefully (idempotent).

        Safe to call from a signal handler registered on the loop; the
        actual drain runs as a task so the handler returns immediately.
        """
        if self._draining:
            return
        self._draining = True
        # Stop leasing first: idle worker polls answer "draining" so the
        # fleet disperses while in-flight leases use the grace window.
        self.fleet.begin_drain()
        assert self._loop is not None
        self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        if self._server is not None:
            self._server.close()  # stop accepting new connections
        tasks = set(self._drive_tasks)
        if tasks:
            _done, pending = await asyncio.wait(
                tasks, timeout=self._drain_grace)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=5.0)
        # Whatever did not finish inside the grace window answers its
        # waiting submissions with an explicit retryable error; their
        # journals keep every point that *did* complete.  Leases that
        # outlived the grace are revoked the same way — their workers'
        # eventual completions will be counted stale and dropped.
        self.fleet.fail_pending(ServiceDraining(
            "service draining; leased points are requeued on resubmit"))
        self.table.fail_all(ServiceDraining(
            "service draining; completed points are journaled — resubmit"))
        await self._break_pool(self._pool_generation)
        submits = set(self._submit_tasks)
        if submits:
            await asyncio.wait(submits, timeout=5.0)
        # Every waiting client has been answered; hang up so connection
        # handlers exit on EOF instead of being cancelled mid-read when
        # the loop tears down (which would log spurious tracebacks).
        for conn in list(self._connections):
            conn.alive = False
            try:
                conn.writer.close()
            except (ConnectionError, OSError, RuntimeError):
                pass
        handlers = set(self._conn_tasks)
        if handlers:
            await asyncio.wait(handlers, timeout=5.0)
        self._stopped.set()

    async def _reap_leases(self) -> None:
        """Background task: expire leases whose heartbeats stopped."""
        while True:
            await asyncio.sleep(self.fleet.reap_interval)
            self.fleet.reap()

    async def aclose(self) -> None:
        """Release sockets and the pool (after ``serve_forever`` returns)."""
        if self._reaper_task is not None:
            self._reaper_task.cancel()
            try:
                await self._reaper_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reaper_task = None
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except (ConnectionError, OSError):
                pass
        await self._break_pool(self._pool_generation)

    # ------------------------------------------------------------ the pool

    def _spawn_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self._jobs,
            initializer=scheduler._worker_init,
            initargs=(warnonce.snapshot(),))

    async def _ensure_pool(self) -> Tuple[ProcessPoolExecutor, int]:
        async with self._pool_lock:
            if self._pool is None:
                self._pool = await asyncio.to_thread(self._spawn_pool)
                self._pool_generation += 1
            return self._pool, self._pool_generation

    async def _break_pool(self, generation: int) -> None:
        """Kill the pool of ``generation`` (no-op if already replaced).

        The generation guard stops a slow failure from one pool's corpse
        tearing down the healthy replacement another drive task already
        spawned.
        """
        async with self._pool_lock:
            if self._pool is None or self._pool_generation != generation:
                return
            pool, self._pool = self._pool, None
        await asyncio.to_thread(scheduler._kill_pool, pool)

    # ------------------------------------------------------- computation

    async def _run_pooled(self, entry: Entry, attempt: int,
                          timeout: Optional[float]):
        point = entry.point
        pool, generation = await self._ensure_pool()
        ordinal = self._ordinal
        self._ordinal += 1
        try:
            future = pool.submit(scheduler._run_point_task, point, ordinal,
                                 attempt, entry.key, entry.engine)
        except RuntimeError as exc:  # pool shut down under us
            raise BrokenExecutor(str(exc)) from None
        scaled = None
        if timeout is not None and timeout > 0:
            scaled = timeout * scheduler.cost_scale(point)
        try:
            return await asyncio.wait_for(asyncio.wrap_future(future), scaled)
        except asyncio.TimeoutError:
            await self._break_pool(generation)  # the worker is hung: kill it
            raise faults.PointTimeout(
                f"point exceeded its {scaled:.1f}s cost-scaled deadline"
            ) from None
        except BrokenExecutor:
            await self._break_pool(generation)
            raise

    async def _run_fleet(self, entry: Entry, attempt: int,
                         timeout: Optional[float]):
        """Dispatch one point to a fleet worker and await its result.

        The offer's cost-scaled wait deadline mirrors the pooled path's;
        blowing it (a worker that heartbeats but never finishes) cancels
        the offer — any late completion is counted stale — and raises
        :class:`~repro.service.fleet.LeaseRevoked` so the dispatcher
        retries the point elsewhere.
        """
        ordinal = self._ordinal
        self._ordinal += 1
        offer = self.fleet.offer(entry, attempt=attempt, ordinal=ordinal)
        scaled = None
        if timeout is not None and timeout > 0:
            scaled = timeout * scheduler.cost_scale(entry.point)
        try:
            payload, worker_id, _elapsed = await asyncio.wait_for(
                offer.future, scaled)
        except asyncio.TimeoutError:
            self.fleet.cancel(offer, reason="cost-scaled deadline")
            raise fleet_mod.LeaseRevoked(
                f"leased point exceeded its {scaled:.1f}s cost-scaled "
                "deadline") from None
        except asyncio.CancelledError:
            self.fleet.cancel(offer, reason="cancelled")
            raise
        entry.worker = worker_id
        # The worker serialized its result for the wire; rebuilding it
        # here hands _drive a normal result object so admission stores
        # it under this server's cache exactly like a pooled result
        # (remote workers need not share a filesystem with the server).
        return protocol.result_from_payload(entry.point.kind, payload)

    async def _compute(self, entry: Entry, timeout: Optional[float]):
        """Run one point to a result under the supervision policy.

        Mirrors ``_Supervisor``'s taxonomy, restated for one point:
        divergence diverts to the reference engine without consuming an
        attempt; a deterministic failure gets exactly one inline re-run
        (the safe floor — injected faults never fire in the parent);
        transient failures and timeouts retry with exponential backoff
        up to ``max(REPRO_RETRIES, breaker thresholds)`` so a breaker
        that is about to trip still has attempts left to finish the
        point inline.

        Route preference per attempt: the worker fleet (when it has
        ``REPRO_FLEET_MIN`` live members and its breaker is closed),
        then the local pool, then inline.  A revoked lease or a
        worker-reported transient/timeout strikes the *fleet* breaker —
        a flapping fleet degrades to the pool the same way a crashing
        pool degrades to inline — while pool failures keep striking the
        pool breaker as before.
        """
        max_retries = max(faults.resolve_retries(None),
                          self.breaker.threshold,
                          self.fleet_breaker.threshold)
        backoff = faults.resolve_backoff()
        attempt = 0
        inline_pinned = False
        while True:
            inline = (inline_pinned or self._jobs <= 1
                      or not self.breaker.allow_pool())
            if (not inline_pinned and self.fleet.available()
                    and self.fleet_breaker.allow_pool()):
                route = "fleet"
            elif inline:
                route = "inline"
            else:
                route = "pool"
            try:
                if route == "fleet":
                    result = await self._run_fleet(entry, attempt, timeout)
                    self.fleet_breaker.record_success()
                    return result
                entry.worker = route
                self.hub.emit(events_mod.STARTED, key=entry.key,
                              worker=route, attempt=attempt)
                if route == "inline":
                    return await asyncio.to_thread(
                        scheduler._run_point, entry.point, entry.engine)
                result = await self._run_pooled(entry, attempt, timeout)
                self.breaker.record_success()
                return result
            except asyncio.CancelledError:
                raise
            except BaseException as exc:
                kind = fleet_mod.failure_kind(exc)
                if kind == faults.DIVERGENCE:
                    if entry.engine is None:
                        entry.engine = "reference"
                        self.hub.emit(events_mod.DIVERGED, key=entry.key,
                                      worker=entry.worker, attempt=attempt)
                        continue  # no attempt consumed: degrade, don't retry
                    raise
                if kind == faults.DETERMINISTIC:
                    if route == "inline":
                        raise  # already at the floor: the failure is real
                    inline_pinned = True  # one clean in-parent re-run
                    self.hub.emit(events_mod.RETRIED, key=entry.key,
                                  worker=entry.worker, attempt=attempt,
                                  reason=kind)
                    continue
                if route == "fleet":
                    # The point never reached the local pool; the fault
                    # is in the fleet (lost worker, remote transient).
                    self.fleet_breaker.record_break()
                elif kind == faults.TIMEOUT or isinstance(exc,
                                                          BrokenExecutor):
                    self.breaker.record_break()
                attempt += 1
                if attempt > max_retries:
                    raise
                self.hub.emit(events_mod.RETRIED, key=entry.key,
                              worker=entry.worker, attempt=attempt,
                              reason=kind, error=faults.format_error(exc))
                delay = faults.backoff_delay(backoff, attempt)
                if delay > 0:
                    await asyncio.sleep(delay)

    async def _drive(self, entry: Entry, timeout: Optional[float]) -> None:
        """Own one in-flight computation: resolve its shared future."""
        try:
            result = await self._compute(entry, timeout)
            # Admission stores through the disk cache; keep that write
            # off the event loop (a slow cache dir must not stall every
            # client of the single-loop server).
            await asyncio.to_thread(scheduler._admit, entry.point, result)
            payload = protocol.result_to_payload(entry.point.kind, result)
            self.counters["computed_ok"] += 1
            self.hub.emit(events_mod.COMPLETED, key=entry.key,
                          worker=entry.worker, kind=entry.point.kind,
                          elapsed=round(time.time() - entry.created_at, 3))
            if not entry.future.done():
                entry.future.set_result(payload)
        except asyncio.CancelledError:
            if not entry.future.done():
                entry.future.set_exception(ServiceDraining(
                    "computation cancelled by service drain"))
            raise
        except BaseException as exc:
            kind = fleet_mod.failure_kind(exc)
            self.counters["computed_failed"] += 1
            self.hub.emit(events_mod.FAILED, key=entry.key,
                          worker=entry.worker, failure=kind,
                          error=faults.format_error(exc))
            if not entry.future.done():
                entry.future.set_exception(PointComputationError(
                    faults.format_error(exc), kind,
                    retryable=kind in (faults.TRANSIENT, faults.TIMEOUT)))
        finally:
            self.table.finish(entry.key)

    # -------------------------------------------------------- admission

    def _admission_answer(self, conn: _Connection, keys: List[str],
                          journaled: Dict[str, Any]):
        """``(None, reserved_keys)`` to admit, else ``((reason, hint), [])``.

        Runs *before* any entry, journal-write or task exists, so a
        rejected submission leaves zero state behind.  Only genuinely
        new computations count against the window: keys already in
        flight (or reserved by a concurrent admission — those will
        coalesce) attach for free, keys with a disk-cache entry are
        answered from disk without a pool slot (one ``stat`` per key
        keeps the check cheap enough for the admission path), and keys
        replayed from the submission's checkpoint journal (``journaled``,
        loaded by the caller before asking) are free too — resubmitting
        an interrupted grid must never be rejected for work it already
        finished.

        The check and its reservation are one synchronous step on the
        event loop: the returned keys are added to ``self._reserved``
        before returning and must be handed back through
        :meth:`_release_reservations` once they are attached (or the
        submission dies), so concurrent submissions — whose preparation
        awaits journal and cache IO — cannot all be admitted against
        the same stale in-flight count.
        """
        if self._draining:
            return (protocol.DRAINING, 5.0), []
        if conn.active >= self._client_backlog:
            return (protocol.CLIENT_BACKLOG, 1.0), []
        new_keys = []
        for key in dict.fromkeys(keys):
            if key not in journaled and key not in self._reserved \
                    and self.table.get(key) is None \
                    and not diskcache.entry_path(key).exists():
                new_keys.append(key)
        # Reserved keys that have since attached are already counted by
        # the table; the rest are admitted work that has not landed yet.
        pending = sum(1 for key in self._reserved
                      if self.table.get(key) is None)
        backlog = (len(self.table) + pending + len(new_keys)
                   - self._admit_max)
        if backlog > 0:
            return (protocol.OVERLOADED,
                    min(30.0, max(0.5, 0.25 * backlog))), []
        self._reserved.update(new_keys)
        return None, new_keys

    def _release_reservations(self, reserved_keys: List[str]) -> None:
        """Give admission reservations back (their keys attached or died)."""
        self._reserved.difference_update(reserved_keys)

    # ------------------------------------------------------- submissions

    def _cached_payload(self, point) -> Optional[Dict[str, Any]]:
        if point.kind == scheduler.FRONTEND:
            result = runner.cached_frontend_result(
                point.benchmark, point.config, point.n)
        else:
            result = runner.cached_machine_result(
                point.benchmark, point.config, point.n, warmup=point.warmup)
        if result is None:
            return None
        return protocol.result_to_payload(point.kind, result)

    async def _handle_submit(self, conn: _Connection,
                             message: Dict[str, Any]) -> None:
        reply_id = message.get("id")
        try:
            raw_points = message.get("points")
            if not isinstance(raw_points, list) or not raw_points:
                raise protocol.ProtocolError(
                    "submit needs a non-empty points list")
            deadline = protocol.parse_deadline(message.get("deadline"))
            points = [protocol.point_from_dict(p).resolved()
                      for p in raw_points]
            keys = [scheduler.point_key(p) for p in points]
        except protocol.ProtocolError as exc:
            await conn.send({"id": reply_id, "type": "error",
                             "error": str(exc)})
            return
        # The journal is read before the admission decision so that
        # resubmitting an interrupted grid is admitted for free: its
        # journaled points cost neither a pool slot nor a window share.
        # The read creates no state, so a rejection still leaves none.
        journal = checkpoint.Journal(keys)
        journaled = await asyncio.to_thread(journal.load)
        rejection, reserved = self._admission_answer(conn, keys, journaled)
        if rejection is not None:
            reason, retry_after = rejection
            self.counters["rejected"] += 1
            await conn.send({"id": reply_id, "type": "rejected",
                             "reason": reason, "retry_after": retry_after})
            return

        conn.active += 1
        self.counters["submissions"] += 1
        self.counters["points"] += len(points)
        loop = asyncio.get_running_loop()
        deadline_at = None if deadline is None else loop.time() + deadline
        results: List[Optional[Dict[str, Any]]] = [None] * len(points)
        waits: List[Tuple[int, Any, str, Entry]] = []
        to_compute: List[Entry] = []
        try:
            spawned = 0
            try:
                for index, (point, key) in enumerate(zip(points, keys)):
                    hit = journaled.get(key)
                    if hit is not None:
                        self.counters["journal_hits"] += 1
                        results[index] = {"key": key, "kind": point.kind,
                                          "status": "ok", "payload": hit[1]}
                        continue
                    cached = await asyncio.to_thread(self._cached_payload,
                                                     point)
                    if cached is not None:
                        self.counters["cache_hits"] += 1
                        await asyncio.to_thread(
                            journal.record, key, point.kind, cached)
                        results[index] = {"key": key, "kind": point.kind,
                                          "status": "ok", "payload": cached}
                        continue
                    entry, created = self.table.attach(key, point, loop)
                    if created:
                        to_compute.append(entry)
                        self.hub.emit(events_mod.QUEUED, key=key,
                                      kind=point.kind,
                                      benchmark=point.benchmark)
                    else:
                        self.counters["coalesced"] += 1
                    waits.append((index, point, key, entry))
                # One cost-proportional per-point budget for the points
                # this submission actually computes (an env
                # REPRO_POINT_TIMEOUT, when set, wins — same precedence
                # as run_grid).
                base_timeout = faults.resolve_timeout(None)
                if base_timeout is None and deadline is not None:
                    base_timeout = scheduler.deadline_point_timeout(
                        [entry.point for entry in to_compute] or points,
                        deadline)
                for entry in to_compute:
                    task = loop.create_task(self._drive(entry, base_timeout))
                    self._drive_tasks.add(task)
                    task.add_done_callback(self._drive_tasks.discard)
                    spawned += 1
            except BaseException:
                # Cancellation (client disconnect mid-preparation) or an
                # error between attach and task spawn must not strand
                # entries in the table: a stranded future would hang
                # every later duplicate until drain, and its disk-cache
                # pin would leak.  Entries whose drive task did start
                # own their own teardown.
                for entry in to_compute[spawned:]:
                    if not entry.future.done():
                        entry.future.set_exception(PointComputationError(
                            "submission aborted before its computation "
                            "started", faults.TRANSIENT, retryable=True))
                    self.table.finish(entry.key)
                raise
            finally:
                # New keys are now either attached (counted by the
                # table) or torn down; the admission reservations have
                # done their job either way.
                self._release_reservations(reserved)
            for index, point, key, entry in waits:
                results[index] = await self._await_entry(
                    entry, point, key, journal, deadline_at, loop)
            clean = all(r is not None and r.get("status") == "ok"
                        for r in results)
            if clean:
                await asyncio.to_thread(journal.complete)
            await conn.send({"id": reply_id, "type": "done",
                             "results": results})
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # defensive: a client must never hang
            await conn.send({"id": reply_id, "type": "error",
                             "error": faults.format_error(exc)})
        finally:
            journal.close()  # no-op after complete(); keeps it for resume
            for _index, _point, _key, entry in waits:
                self.table.release(entry)
            conn.active -= 1

    async def _await_entry(self, entry: Entry, point, key: str,
                           journal: checkpoint.Journal,
                           deadline_at: Optional[float],
                           loop: asyncio.AbstractEventLoop) -> Dict[str, Any]:
        """Wait for one shared future; classify the outcome for the wire.

        The wait is shielded: a submission that is cancelled (client
        disconnect, drain) or that runs out of deadline detaches without
        cancelling the computation, which continues to warm the cache.
        """
        base = {"key": key, "kind": point.kind}
        try:
            if deadline_at is None:
                payload = await asyncio.shield(entry.future)
            else:
                remaining = deadline_at - loop.time()
                if remaining <= 0:
                    raise asyncio.TimeoutError
                payload = await asyncio.wait_for(
                    asyncio.shield(entry.future), remaining)
        except asyncio.TimeoutError:
            return {**base, "status": "error", "retryable": True,
                    "error": "deadline exceeded waiting for result"}
        except ServiceDraining as exc:
            return {**base, "status": "error", "retryable": True,
                    "error": str(exc)}
        except PointComputationError as exc:
            return {**base, "status": "error", "retryable": exc.retryable,
                    "failure": exc.kind, "error": str(exc)}
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # defensive: never hang a client
            return {**base, "status": "error", "retryable": True,
                    "error": faults.format_error(exc)}
        # Journal writes are blocking disk IO; running them on a worker
        # thread keeps a slow cache dir from stalling the whole loop.
        # Within one submission these awaits are sequential, so records
        # to this journal never interleave.
        await asyncio.to_thread(journal.record, key, point.kind, payload)
        return {**base, "status": "ok", "payload": payload}

    # ----------------------------------------------------- fleet op glue

    async def _handle_worker_poll(self, conn: _Connection, reply_id: Any,
                                  message: Dict[str, Any]) -> None:
        """Long-poll answer: ``lease`` / ``idle`` / ``draining``."""
        handle = self.fleet.handle_for(conn)
        if handle is None:
            await conn.send({"id": reply_id, "type": "error",
                             "error": "worker-poll before worker-register"})
            return
        window = message.get("window")
        if not isinstance(window, (int, float)) or isinstance(window, bool):
            window = 10.0
        lease = await self.fleet.poll(handle, float(window))
        if lease is None:
            kind = "draining" if self.fleet.draining else "idle"
            await conn.send({"id": reply_id, "type": kind})
            return
        offer = lease.offer
        await conn.send({
            "id": reply_id, "type": "lease", "lease": lease.lease_id,
            "key": offer.entry.key,
            "point": protocol.point_to_dict(offer.entry.point),
            "engine": offer.entry.engine,
            "ttl": offer.ttl,
            "attempt": offer.attempt,
            "ordinal": offer.ordinal,
        })

    async def _handle_worker_complete(self, conn: _Connection,
                                      reply_id: Any,
                                      message: Dict[str, Any]) -> None:
        """Accept (or count stale) one worker's shipped result."""
        handle = self.fleet.handle_for(conn)
        accepted = False
        if handle is not None:
            payload = message.get("payload")
            if isinstance(payload, dict):
                accepted = self.fleet.complete(
                    handle, message.get("lease"), payload,
                    message.get("elapsed"))
            else:
                self.fleet.fail(handle, message.get("lease"),
                                "malformed worker result payload",
                                faults.DETERMINISTIC)
        await conn.send({"id": reply_id, "type": "complete-ack",
                         "accepted": accepted})

    async def _handle_worker_fail(self, conn: _Connection, reply_id: Any,
                                  message: Dict[str, Any]) -> None:
        """Route one worker-reported failure into the retry policy."""
        handle = self.fleet.handle_for(conn)
        accepted = False
        if handle is not None:
            kind = message.get("failure")
            if kind not in (faults.TRANSIENT, faults.TIMEOUT,
                            faults.DETERMINISTIC, faults.DIVERGENCE):
                kind = faults.DETERMINISTIC
            accepted = self.fleet.fail(
                handle, message.get("lease"),
                str(message.get("error", "worker failure")), kind)
        await conn.send({"id": reply_id, "type": "fail-ack",
                         "accepted": accepted})

    # ------------------------------------------------------------ status

    async def _status_payload(self) -> Dict[str, Any]:
        cache = await asyncio.to_thread(diskcache.cache_stats)
        checkpoints = await asyncio.to_thread(checkpoint.stats)
        from repro.core import memo as machine_memo
        return {
            "draining": self._draining,
            "jobs": self._jobs,
            "admit_max": self._admit_max,
            "client_backlog": self._client_backlog,
            "in_flight": len(self.table),
            "admission_reserved": len(self._reserved),
            "counters": dict(self.counters),
            "coalesce": self.table.stats(),
            "breaker": self.breaker.stats(),
            "fleet_breaker": self.fleet_breaker.stats(),
            "fleet": self.fleet.stats(),
            "events": self.hub.stats(),
            "cache": cache,
            "checkpoints": checkpoints,
            "machine_memo": machine_memo.aggregate_stats(),
        }

    # ------------------------------------------------------- connections

    async def _on_client(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        conn = _Connection(writer)
        self.counters["clients"] += 1
        self._connections.add(conn)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        tasks: set = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    await conn.send({"id": None, "type": "error",
                                     "error": "oversized protocol line"})
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                try:
                    message = protocol.decode(line)
                except protocol.ProtocolError as exc:
                    await conn.send({"id": None, "type": "error",
                                     "error": str(exc)})
                    continue
                op = message.get("op")
                reply_id = message.get("id")
                if op == "ping":
                    await conn.send({"id": reply_id, "type": "pong",
                                     "version": protocol.PROTOCOL_VERSION})
                elif op == "status":
                    await conn.send({"id": reply_id, "type": "status",
                                     **(await self._status_payload())})
                elif op == "drain":
                    self.begin_drain()
                    await conn.send({"id": reply_id, "type": "draining"})
                elif op == "submit":
                    task = asyncio.get_running_loop().create_task(
                        self._handle_submit(conn, message))
                    for registry in (tasks, self._submit_tasks):
                        registry.add(task)
                        task.add_done_callback(registry.discard)
                elif op == "subscribe":
                    keys = message.get("keys")
                    self.hub.subscribe(
                        conn, reply_id,
                        keys if isinstance(keys, list) else None)
                    await conn.send({"id": reply_id, "type": "subscribed"})
                elif op == "unsubscribe":
                    existed = self.hub.unsubscribe(
                        conn, message.get("subscription"))
                    await conn.send({"id": reply_id, "type": "unsubscribed",
                                     "existed": existed})
                elif op == "worker-register":
                    handle = self.fleet.register(conn, message)
                    await conn.send({
                        "id": reply_id, "type": "registered",
                        "worker": handle.worker_id,
                        "heartbeat": self.fleet.heartbeat_interval,
                        "lease_ttl": self.fleet.lease_ttl})
                elif op == "worker-poll":
                    # Awaited inline: an idle worker sends nothing else,
                    # so holding this connection's read loop through the
                    # long-poll window is free.
                    await self._handle_worker_poll(conn, reply_id, message)
                elif op == "worker-heartbeat":
                    handle = self.fleet.handle_for(conn)
                    if handle is not None:
                        leases = message.get("leases")
                        self.fleet.heartbeat(
                            handle,
                            [l for l in (leases or [])
                             if isinstance(l, int)])
                elif op == "worker-started":
                    handle = self.fleet.handle_for(conn)
                    if handle is not None:
                        self.fleet.started(handle, message.get("lease"))
                elif op == "worker-complete":
                    await self._handle_worker_complete(conn, reply_id,
                                                       message)
                elif op == "worker-fail":
                    await self._handle_worker_fail(conn, reply_id, message)
                else:
                    await conn.send({"id": reply_id, "type": "error",
                                     "error": f"unknown op: {op!r}"})
        finally:
            conn.alive = False
            # A lost worker connection revokes its leases (requeueing
            # the points); a lost subscriber tears down its feeds.
            self.fleet.disconnect(conn)
            self.hub.drop_connection(conn)
            self._connections.discard(conn)
            # Disconnect teardown: the submissions stop waiting (their
            # shielded awaits cancel, releasing their subscriptions and
            # closing their journals), the computations keep running.
            for task in tasks:
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


class ServiceThread:
    """A service on a background thread, for tests and benchmarks.

    ``start()`` blocks until the server is bound and returns the live
    ``(host, port)``; ``stop()`` triggers a drain and joins the thread.
    """

    def __init__(self, **kwargs: Any):
        self.service = ExperimentService(**kwargs)
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def _main(self) -> None:
        async def body() -> None:
            try:
                await self.service.start()
            finally:
                self._ready.set()
            try:
                await self.service.serve_forever()
            finally:
                await self.service.aclose()

        try:
            asyncio.run(body())
        except BaseException as exc:  # surface bind errors to start()
            self._error = exc
            self._ready.set()

    def start(self) -> Tuple[str, int]:
        if self._thread is None:
            self._thread = threading.Thread(target=self._main,
                                            name="repro-service",
                                            daemon=True)
            self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._error is not None:
            raise RuntimeError(f"service failed to start: {self._error!r}")
        return self.service.host, self.service.port

    def stop(self, timeout: float = 30.0) -> None:
        loop = self.service._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.service.begin_drain)
        if self._thread is not None:
            self._thread.join(timeout=timeout)


def serve(host: Optional[str] = None, port: Optional[int] = None,
          **kwargs: Any) -> None:
    """Blocking entry point used by ``repro serve``.

    Runs until SIGTERM (or a client ``drain`` op) completes a graceful
    drain; Ctrl-C interrupts immediately (checkpoint journals make even
    that safe to resume).
    """
    service = ExperimentService(host, port, **kwargs)
    asyncio.run(service.run())
