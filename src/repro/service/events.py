"""Per-point progress event stream for service subscribers.

Until this module, a submission's first and only answer arrived at
completion — fine for a CI shard, useless for an operator watching a
three-hour grid fan out across a worker fleet.  A client can now send a
``subscribe`` op on its existing connection and receive one ``event``
message per lifecycle transition of every in-flight point (optionally
filtered to a key set): ``queued``, ``leased``, ``started``,
``retried``, ``diverged``, ``completed``, ``failed``, plus fleet
membership changes (``worker-joined`` / ``worker-lost``).  Each event
carries the point key, the identity of whoever is running it (a fleet
worker id, ``"pool"`` or ``"inline"``), a wall-clock timestamp, and a
hub-global sequence number so interleaved streams can be totally
ordered after the fact.

Delivery design:

* **Emit never blocks the event loop.**  ``emit`` is synchronous: it
  fans the event out to per-subscription bounded queues and returns.  A
  dedicated sender task per subscription drains its queue through the
  connection's write lock, so one slow consumer's TCP backpressure
  stalls only its own stream.
* **Lossy under sustained lag, and says so.**  When a subscription's
  queue overflows, the oldest buffered event is dropped to make room
  and the subscriber's next delivered event carries a ``dropped``
  count — a lagging dashboard loses intermediate transitions, never the
  fact that it lost them.  Terminal answers are unaffected: results
  still travel on the request/reply path.
* Subscriptions die with their connection (the server calls
  :meth:`EventHub.drop_connection` from the same teardown that releases
  coalesce subscribers), so an abandoned stream cannot leak a queue or
  a task.

The hub is touched only from the server's event loop; no locking.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, Iterable, Optional, Tuple

#: Event types, in lifecycle order for one point.
QUEUED = "queued"          #: entry created; computation will be spawned
LEASED = "leased"          #: a fleet worker claimed the point
STARTED = "started"        #: execution actually began (worker/pool/inline)
RETRIED = "retried"        #: an attempt failed retryably; another follows
DIVERGED = "diverged"      #: divergence detected; re-running on reference
COMPLETED = "completed"    #: terminal success (result stored and answered)
FAILED = "failed"          #: terminal failure (error answered)

#: Fleet membership events (no point key).
WORKER_JOINED = "worker-joined"
WORKER_LOST = "worker-lost"

#: Per-subscription queue depth.  Events are tens of bytes; 1024 of
#: them buffer several seconds of a busy grid before lag turns lossy.
MAX_QUEUE = 1024


class _Subscription:
    """One client's event feed: filter, bounded queue, sender task."""

    __slots__ = ("conn", "sub_id", "keys", "queue", "task", "dropped")

    def __init__(self, conn: Any, sub_id: Any,
                 keys: Optional[Iterable[str]]):
        self.conn = conn
        self.sub_id = sub_id
        self.keys = frozenset(keys) if keys else None
        self.queue: "asyncio.Queue[Dict[str, Any]]" = \
            asyncio.Queue(maxsize=MAX_QUEUE)
        self.task: Optional[asyncio.Task] = None
        self.dropped = 0

    def wants(self, event: Dict[str, Any]) -> bool:
        """Filtered subscriptions see only their keys' point events."""
        if self.keys is None:
            return True
        return event.get("key") in self.keys


class EventHub:
    """Fan-out point: every service event flows through one hub."""

    def __init__(self) -> None:
        self._subs: Dict[Tuple[int, Any], _Subscription] = {}
        self._seq = 0
        self.emitted_total = 0
        self.delivered_total = 0
        self.dropped_total = 0

    def subscribe(self, conn: Any, sub_id: Any,
                  keys: Optional[Iterable[str]] = None) -> None:
        """Attach a feed to ``conn``; events are tagged with ``sub_id``.

        ``sub_id`` is the id of the ``subscribe`` request itself, so the
        client can demultiplex event messages from request replies on
        the shared connection.
        """
        sub = _Subscription(conn, sub_id, keys)
        sub.task = asyncio.get_running_loop().create_task(self._sender(sub))
        self._subs[(id(conn), sub_id)] = sub

    def unsubscribe(self, conn: Any, sub_id: Any) -> bool:
        """Detach one feed; returns whether it existed."""
        sub = self._subs.pop((id(conn), sub_id), None)
        if sub is None:
            return False
        if sub.task is not None:
            sub.task.cancel()
        return True

    def drop_connection(self, conn: Any) -> None:
        """Connection teardown: cancel every feed it owned."""
        for conn_id, sub_id in [key for key in self._subs
                                if key[0] == id(conn)]:
            self.unsubscribe(conn, sub_id)

    def emit(self, event: str, key: Optional[str] = None,
             **fields: Any) -> None:
        """Publish one event to every interested subscription.

        Synchronous and allocation-light when nobody is listening: the
        sequence counter still advances (so sequence numbers are
        globally meaningful regardless of when a subscriber attached),
        but no event dict is built.
        """
        self._seq += 1
        self.emitted_total += 1
        if not self._subs:
            return
        message: Dict[str, Any] = {
            "seq": self._seq, "event": event, "time": time.time()}
        if key is not None:
            message["key"] = key
        message.update(fields)
        for sub in list(self._subs.values()):
            if not sub.wants(message):
                continue
            try:
                sub.queue.put_nowait(message)
            except asyncio.QueueFull:
                # Shed the oldest buffered event; the subscriber learns
                # about the gap via the "dropped" count on this one.
                try:
                    sub.queue.get_nowait()
                except asyncio.QueueEmpty:
                    pass
                sub.dropped += 1
                self.dropped_total += 1
                sub.queue.put_nowait(dict(message, dropped=sub.dropped))

    async def _sender(self, sub: _Subscription) -> None:
        """Drain one subscription's queue onto its connection."""
        while True:
            message = await sub.queue.get()
            payload = {"id": sub.sub_id, "type": "event", "data": message}
            await sub.conn.send(payload)
            if not sub.conn.alive:
                self.unsubscribe(sub.conn, sub.sub_id)
                return
            self.delivered_total += 1

    def stats(self) -> Dict[str, int]:
        """Introspection counters for the service ``status`` reply."""
        return {
            "subscriptions": len(self._subs),
            "emitted_total": self.emitted_total,
            "delivered_total": self.delivered_total,
            "dropped_total": self.dropped_total,
        }
