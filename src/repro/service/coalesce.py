"""Machine-wide request coalescing for in-flight grid points.

Duplicate submission storms are the common case for a shared service:
every CI shard asks for the same baseline sweep, every notebook rerun
re-requests the grid it just plotted.  The disk cache already collapses
*completed* duplicates; this table collapses *in-flight* ones.  Points
are identified by the same content-hash cache key the runner stores
results under (:func:`repro.experiments.scheduler.point_key` — source
fingerprint, benchmark profile, config, run length all folded in), so
two submissions coalesce exactly when their results would be
byte-identical anyway.

Each in-flight key owns one :class:`Entry` holding one shared
``asyncio.Future``.  The first submission to ask creates the entry (and
becomes the one that spawns a compute task); every later submission
attaches as a subscriber and awaits the same future through
``asyncio.shield``, so a subscriber that disconnects mid-wait cancels
only its own await — the computation keeps running and warms the cache
for everyone else.  While a key is in flight its cache entry is pinned
(:func:`repro.experiments.diskcache.pin`) so the quota evictor of a
*different* process sharing the cache directory cannot evict a result
between the worker writing it and the service reading it back.

The table is only touched from the server's event loop; no locking.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, Optional, Tuple

from repro.experiments import diskcache


class Entry:
    """One in-flight computation: a shared future plus bookkeeping."""

    __slots__ = ("key", "point", "future", "subscribers", "engine",
                 "worker", "created_at")

    def __init__(self, key: str, point: Any,
                 loop: asyncio.AbstractEventLoop):
        self.key = key
        self.point = point
        self.future: asyncio.Future = loop.create_future()
        # Mark any failure as retrieved: when every subscriber has
        # disconnected the exception is intentionally unobserved, and
        # asyncio's "exception never retrieved" warning would be noise.
        self.future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None)
        self.subscribers = 0
        #: pinned execution engine after a divergence ("reference").
        self.engine: Optional[str] = None
        #: identity of whoever last ran the point ("inline", "pool", or
        #: a fleet worker id) — carried on completion/failure events.
        self.worker: Optional[str] = None
        #: wall-clock creation time; event timestamps and the elapsed
        #: figure on ``completed`` events are measured from here.
        self.created_at: float = time.time()


class CoalesceTable:
    """Key -> in-flight :class:`Entry`, with lifetime accounting."""

    def __init__(self) -> None:
        self._entries: Dict[str, Entry] = {}
        self.created_total = 0
        self.attached_total = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[Entry]:
        return self._entries.get(key)

    def attach(self, key: str, point: Any,
               loop: asyncio.AbstractEventLoop) -> Tuple[Entry, bool]:
        """Join the in-flight computation for ``key``, creating it if new.

        Returns ``(entry, created)``; ``created`` tells the caller it is
        responsible for spawning the compute task.  A newly created
        entry pins the key's disk-cache slot against cross-process quota
        eviction for the duration of the flight.
        """
        entry = self._entries.get(key)
        if entry is None:
            entry = Entry(key, point, loop)
            self._entries[key] = entry
            self.created_total += 1
            diskcache.pin(key)
            created = True
        else:
            self.attached_total += 1
            created = False
        entry.subscribers += 1
        return entry, created

    def release(self, entry: Entry) -> None:
        """One subscriber stopped waiting (answered or disconnected).

        The entry itself stays until :meth:`finish` — the computation is
        not cancelled when its last subscriber walks away, because the
        result still warms the shared cache for the next asker.
        """
        if entry.subscribers > 0:
            entry.subscribers -= 1

    def finish(self, key: str) -> None:
        """The computation resolved (either way): drop entry and pin."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            diskcache.unpin(key)

    def fail_all(self, exc: BaseException) -> None:
        """Drain path: fail every entry whose future is still open.

        Compute tasks are being cancelled by the caller; any future they
        have not resolved gets ``exc`` so waiting submissions receive an
        explicit retryable answer instead of hanging.
        """
        for key in list(self._entries):
            entry = self._entries[key]
            if not entry.future.done():
                entry.future.set_exception(exc)
            self.finish(key)

    def stats(self) -> Dict[str, int]:
        """Introspection counters for the service ``status`` reply."""
        return {
            "in_flight": len(self._entries),
            "created_total": self.created_total,
            "coalesced_total": self.attached_total,
        }
