"""Fleet registry: leased dispatch of points to remote worker processes.

The service's process pool scales to one machine.  This module scales
it out: ``repro worker HOST:PORT`` processes connect over the same
line-delimited JSON protocol, register with capability/cost metadata,
and *pull* points — the server never pushes work at a socket it merely
hopes is healthy.  The unit of dispatch is a **lease**:

* A drive task offers an in-flight point to the fleet
  (:meth:`Fleet.offer`).  The first long-polling worker is granted a
  lease — an id, the point, the pinned engine, and a deadline
  ``now + REPRO_LEASE_TTL * cost_scale(point)`` (heavier points get
  proportionally longer, the same cost model the supervisor's timeouts
  use).
* The worker renews the deadline with heartbeats while it computes.  A
  missed deadline (hung worker, wedged host) or a dropped connection
  (crash, SIGKILL, network partition) **revokes** the lease: the
  offer's future fails with :class:`LeaseRevoked` and the drive task
  requeues the point — on another worker, the local pool, or inline.
* Revocation makes execution at-least-once, and the storage layer makes
  that safe: results are admitted under sha256 content-hash cache keys
  through the coalesce table, so a revoked-then-completed duplicate
  (the worker was slow, not dead) is recognized as **stale** by its
  dead lease id, counted, and dropped — never double-stored, never
  racing the retry's answer.

Drain folds in the same order the rest of the service drains: once
:meth:`begin_drain` is called no new lease is granted (polls answer
``draining`` so workers disconnect and try the next server), in-flight
leases get the drain grace to finish, and whatever remains is revoked
and requeued by the caller's teardown.

Like every service structure, the fleet is touched only from the
server's event loop; workers live on the other side of sockets.  Time
comes from an injectable monotonic clock so tests can expire leases
deterministically.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from collections import deque

from repro.experiments import env, faults, scheduler
from repro.service import events as events_mod

#: Default base lease TTL in seconds (scaled by point cost).  Three
#: missed default heartbeats plus generous scheduling slack.
DEFAULT_LEASE_TTL = 30.0

#: Default worker heartbeat interval in seconds (server-chosen; told to
#: the worker at registration).
DEFAULT_HEARTBEAT = 5.0

#: Default minimum live workers before the dispatcher prefers the
#: fleet over the local pool.
DEFAULT_FLEET_MIN = 1

#: Upper bound the server imposes on one long-poll's hold time.
MAX_POLL_WINDOW = 30.0


class LeaseRevoked(Exception):
    """A leased point lost its worker; the point must be requeued.

    Always retryable: the fault is in the fleet, not the point.  The
    ``kind`` attribute keeps :func:`failure_kind` trivial.
    """

    kind = faults.TRANSIENT


class RemotePointError(Exception):
    """A worker reported a point failure, pre-classified at the source.

    The worker runs :func:`repro.experiments.faults.classify` on its own
    exception (the exception object itself cannot cross the wire) and
    ships the taxonomy kind; the dispatcher routes on that kind exactly
    as it would for a local failure.
    """

    def __init__(self, message: str, kind: str = faults.DETERMINISTIC):
        super().__init__(message)
        self.kind = kind


def failure_kind(exc: BaseException) -> str:
    """Taxonomy kind of a dispatch failure, honoring pre-classified ones."""
    kind = getattr(exc, "kind", None)
    if isinstance(exc, (LeaseRevoked, RemotePointError)) \
            and isinstance(kind, str):
        return kind
    return faults.classify(exc)


class Offer:
    """One point offered to the fleet; resolves via ``future``.

    The future's result is ``(payload, worker_id, elapsed)``; its
    exception is :class:`LeaseRevoked` or :class:`RemotePointError`.
    """

    __slots__ = ("entry", "attempt", "ordinal", "ttl", "future",
                 "lease", "cancelled")

    def __init__(self, entry: Any, attempt: int, ordinal: int, ttl: float,
                 loop: asyncio.AbstractEventLoop):
        self.entry = entry
        self.attempt = attempt
        self.ordinal = ordinal
        self.ttl = ttl
        self.future: asyncio.Future = loop.create_future()
        self.future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None)
        self.lease: Optional["Lease"] = None
        self.cancelled = False


class Lease(object):
    """A granted offer: who is running it and until when."""

    __slots__ = ("lease_id", "offer", "worker", "granted_at", "deadline",
                 "started_at")

    def __init__(self, lease_id: int, offer: Offer, worker: "WorkerHandle",
                 now: float):
        self.lease_id = lease_id
        self.offer = offer
        self.worker = worker
        self.granted_at = now
        self.deadline = now + offer.ttl
        self.started_at: Optional[float] = None


class WorkerHandle(object):
    """Server-side record of one registered worker connection."""

    __slots__ = ("worker_id", "conn", "info", "registered_at",
                 "last_heartbeat", "leases", "completed", "requeued",
                 "failed")

    def __init__(self, worker_id: str, conn: Any, info: Dict[str, Any],
                 now: float):
        self.worker_id = worker_id
        self.conn = conn
        self.info = info
        self.registered_at = now
        self.last_heartbeat = now
        self.leases: Dict[int, Lease] = {}
        self.completed = 0
        self.requeued = 0
        self.failed = 0


class Fleet:
    """Worker registry, lease table, and pull-dispatch queue."""

    def __init__(self, *, lease_ttl: Optional[float] = None,
                 heartbeat: Optional[float] = None,
                 min_workers: Optional[int] = None,
                 clock: Callable[[], float] = time.monotonic,
                 hub: Optional[events_mod.EventHub] = None):
        if lease_ttl is None:
            lease_ttl = env.get_float("REPRO_LEASE_TTL", DEFAULT_LEASE_TTL)
        if heartbeat is None:
            heartbeat = env.get_float("REPRO_HEARTBEAT", DEFAULT_HEARTBEAT)
        if min_workers is None:
            min_workers = env.get_int("REPRO_FLEET_MIN", DEFAULT_FLEET_MIN)
        self.lease_ttl = max(0.1, float(lease_ttl))
        self.heartbeat_interval = max(0.05, float(heartbeat))
        self.min_workers = max(1, int(min_workers))
        self._clock = clock
        self._hub = hub
        self._workers: Dict[str, WorkerHandle] = {}
        self._by_conn: Dict[int, WorkerHandle] = {}
        self._offers: Deque[Offer] = deque()
        self._waiters: Deque[Tuple[asyncio.Future, WorkerHandle]] = deque()
        self._leases: Dict[int, Lease] = {}
        self._lease_ids = itertools.count(1)
        self._draining = False
        self.granted_total = 0
        self.completed_total = 0
        self.requeued_total = 0
        self.failed_total = 0
        self.stale_completions = 0

    # -- membership ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._workers)

    @property
    def draining(self) -> bool:
        return self._draining

    def available(self) -> bool:
        """Should the dispatcher prefer the fleet for the next point?"""
        return (not self._draining
                and len(self._workers) >= self.min_workers)

    @property
    def reap_interval(self) -> float:
        """How often the reaper should scan for expired leases."""
        return min(1.0, max(0.05, self.lease_ttl / 4.0))

    def register(self, conn: Any, message: Dict[str, Any]) -> WorkerHandle:
        """A worker introduced itself; returns its handle.

        A re-registration under an existing worker id (a worker that
        reconnected before the server noticed the old socket die)
        supersedes the stale handle: its leases are revoked and
        requeued, exactly as if the old connection had dropped.
        """
        info = {
            "name": str(message.get("name") or ""),
            "host": str(message.get("host") or ""),
            "pid": message.get("pid"),
            "kinds": message.get("kinds") or ["frontend", "machine"],
            "cost_rate": message.get("cost_rate"),
            "version": message.get("version"),
        }
        worker_id = info["name"] or "worker-%s-%s" % (info["host"],
                                                      info["pid"])
        stale = self._workers.get(worker_id)
        if stale is not None:
            self._drop_handle(stale, reason="superseded by reconnection")
        handle = WorkerHandle(worker_id, conn, info, self._clock())
        self._workers[worker_id] = handle
        self._by_conn[id(conn)] = handle
        self._emit(events_mod.WORKER_JOINED, worker=worker_id,
                   host=info["host"], pid=info["pid"])
        return handle

    def handle_for(self, conn: Any) -> Optional[WorkerHandle]:
        """The registered worker behind ``conn``, if any."""
        return self._by_conn.get(id(conn))

    def disconnect(self, conn: Any) -> None:
        """Connection teardown: if it was a worker, revoke everything."""
        handle = self._by_conn.get(id(conn))
        if handle is not None and handle.conn is conn:
            self._drop_handle(handle, reason="connection lost")

    def _drop_handle(self, handle: WorkerHandle, reason: str) -> None:
        self._by_conn.pop(id(handle.conn), None)
        if self._workers.get(handle.worker_id) is handle:
            del self._workers[handle.worker_id]
        for lease in list(handle.leases.values()):
            self._revoke(lease, f"worker {handle.worker_id}: {reason}")
        self._emit(events_mod.WORKER_LOST, worker=handle.worker_id,
                   reason=reason)
        if not self._workers:
            # Queued offers can no longer be granted; fail them so the
            # drive tasks fall back to local execution immediately
            # instead of waiting out their cost-scaled deadlines.
            self._fail_queued(LeaseRevoked("fleet has no workers"))

    # -- dispatch ------------------------------------------------------

    def offer(self, entry: Any, attempt: int, ordinal: int) -> Offer:
        """Queue one in-flight point for the next polling worker."""
        ttl = self.lease_ttl * scheduler.cost_scale(entry.point)
        offer = Offer(entry, attempt, ordinal, ttl,
                      asyncio.get_running_loop())
        while self._waiters:
            waiter, handle = self._waiters.popleft()
            if waiter.done() or not handle.conn.alive:
                continue
            waiter.set_result(self._grant(offer, handle))
            return offer
        self._offers.append(offer)
        return offer

    def _grant(self, offer: Offer, handle: WorkerHandle) -> Lease:
        lease = Lease(next(self._lease_ids), offer, handle, self._clock())
        offer.lease = lease
        self._leases[lease.lease_id] = lease
        handle.leases[lease.lease_id] = lease
        self.granted_total += 1
        self._emit(events_mod.LEASED, key=offer.entry.key,
                   worker=handle.worker_id, lease=lease.lease_id,
                   attempt=offer.attempt, ttl=round(offer.ttl, 3))
        return lease

    async def poll(self, handle: WorkerHandle,
                   window: float) -> Optional[Lease]:
        """Long-poll: hand ``handle`` the next offer, or None at timeout.

        Raises nothing on drain — the caller checks :attr:`draining`
        before and after and answers the worker accordingly.
        """
        handle.last_heartbeat = self._clock()
        if self._draining:
            return None
        while self._offers:
            offer = self._offers.popleft()
            if offer.cancelled or offer.future.done():
                continue
            return self._grant(offer, handle)
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        record = (waiter, handle)
        self._waiters.append(record)
        try:
            return await asyncio.wait_for(
                waiter, min(MAX_POLL_WINDOW, max(0.05, window)))
        except asyncio.TimeoutError:
            return None
        finally:
            try:
                self._waiters.remove(record)
            except ValueError:
                pass

    # -- lease lifecycle -----------------------------------------------

    def heartbeat(self, handle: WorkerHandle,
                  lease_ids: List[int]) -> None:
        """Renew the worker's liveness and its named leases' deadlines."""
        now = self._clock()
        handle.last_heartbeat = now
        for lease_id in lease_ids:
            lease = handle.leases.get(lease_id)
            if lease is not None:
                lease.deadline = now + lease.offer.ttl

    def started(self, handle: WorkerHandle, lease_id: int) -> bool:
        """The worker began computing; emits the ``started`` event."""
        lease = handle.leases.get(lease_id)
        if lease is None:
            return False
        lease.started_at = self._clock()
        lease.offer.entry.worker = handle.worker_id
        self._emit(events_mod.STARTED, key=lease.offer.entry.key,
                   worker=handle.worker_id, attempt=lease.offer.attempt)
        return True

    def complete(self, handle: WorkerHandle, lease_id: int,
                 payload: Dict[str, Any],
                 elapsed: Optional[float] = None) -> bool:
        """A worker shipped a result; returns whether it was accepted.

        A completion for a revoked (or unknown) lease is **stale**: the
        point has already been requeued and may already be answered, so
        the payload is dropped — the content-hash cache key guarantees
        the accepted copy is byte-identical anyway.
        """
        lease = self._leases.pop(lease_id, None)
        if lease is None or lease.worker is not handle:
            self.stale_completions += 1
            return False
        handle.leases.pop(lease_id, None)
        handle.completed += 1
        self.completed_total += 1
        offer = lease.offer
        if offer.cancelled or offer.future.done():
            self.stale_completions += 1
            return False
        offer.future.set_result((payload, handle.worker_id, elapsed))
        return True

    def fail(self, handle: WorkerHandle, lease_id: int, error: str,
             kind: str) -> bool:
        """A worker reported a failure; routes it to the drive task."""
        lease = self._leases.pop(lease_id, None)
        if lease is None or lease.worker is not handle:
            self.stale_completions += 1
            return False
        handle.leases.pop(lease_id, None)
        handle.failed += 1
        self.failed_total += 1
        offer = lease.offer
        if offer.cancelled or offer.future.done():
            return False
        offer.future.set_exception(RemotePointError(error, kind))
        return True

    def cancel(self, offer: Offer, reason: str = "cancelled") -> None:
        """The drive task gave up on this offer (timeout/cancellation).

        A queued offer is forgotten; a granted lease is removed so a
        late completion is counted stale instead of resolving a future
        nobody awaits.
        """
        offer.cancelled = True
        try:
            self._offers.remove(offer)
        except ValueError:
            pass
        lease = offer.lease
        if lease is not None and \
                self._leases.pop(lease.lease_id, None) is not None:
            lease.worker.leases.pop(lease.lease_id, None)
            lease.worker.requeued += 1
            self.requeued_total += 1

    def reap(self) -> List[Lease]:
        """Revoke every lease whose deadline passed; returns them.

        Called periodically by the server's reaper task.  An expired
        lease means the worker stopped heartbeating but its socket is
        still up — a wedged process or a half-dead host — so the point
        is requeued without waiting for TCP to notice.
        """
        now = self._clock()
        expired = [lease for lease in self._leases.values()
                   if now > lease.deadline]
        for lease in expired:
            self._revoke(
                lease,
                "lease %d expired (worker %s missed its heartbeat)" % (
                    lease.lease_id, lease.worker.worker_id))
        return expired

    def _revoke(self, lease: Lease, reason: str) -> None:
        self._leases.pop(lease.lease_id, None)
        lease.worker.leases.pop(lease.lease_id, None)
        lease.worker.requeued += 1
        self.requeued_total += 1
        offer = lease.offer
        if not offer.cancelled and not offer.future.done():
            offer.future.set_exception(LeaseRevoked(reason))

    def _fail_queued(self, exc: BaseException) -> None:
        while self._offers:
            offer = self._offers.popleft()
            if not offer.cancelled and not offer.future.done():
                offer.future.set_exception(exc)

    # -- drain ---------------------------------------------------------

    def begin_drain(self) -> None:
        """Stop leasing: wake idle polls (they answer ``draining``).

        In-flight leases are left alone — the server's drain grace gives
        them a chance to complete; whatever survives the grace is failed
        by :meth:`fail_pending` on final teardown.
        """
        self._draining = True
        while self._waiters:
            waiter, _ = self._waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
        self._fail_queued(LeaseRevoked("service draining"))

    def fail_pending(self, exc: BaseException) -> None:
        """Final teardown: fail queued offers and outstanding leases."""
        self._fail_queued(exc)
        for lease in list(self._leases.values()):
            self._leases.pop(lease.lease_id, None)
            lease.worker.leases.pop(lease.lease_id, None)
            offer = lease.offer
            if not offer.cancelled and not offer.future.done():
                offer.future.set_exception(exc)

    # -- introspection -------------------------------------------------

    def _emit(self, event: str, key: Optional[str] = None,
              **fields: Any) -> None:
        if self._hub is not None:
            self._hub.emit(event, key=key, **fields)

    def stats(self) -> Dict[str, Any]:
        """Fleet block of the service ``status`` reply: membership,
        live leases with heartbeat ages, and per-worker counters."""
        now = self._clock()
        workers = []
        for handle in self._workers.values():
            workers.append({
                "worker": handle.worker_id,
                "host": handle.info.get("host"),
                "pid": handle.info.get("pid"),
                "kinds": handle.info.get("kinds"),
                "cost_rate": handle.info.get("cost_rate"),
                "heartbeat_age": round(now - handle.last_heartbeat, 3),
                "leases": len(handle.leases),
                "completed": handle.completed,
                "requeued": handle.requeued,
                "failed": handle.failed,
            })
        leases = []
        for lease in self._leases.values():
            leases.append({
                "lease": lease.lease_id,
                "key": lease.offer.entry.key,
                "worker": lease.worker.worker_id,
                "age": round(now - lease.granted_at, 3),
                "ttl_remaining": round(lease.deadline - now, 3),
                "attempt": lease.offer.attempt,
            })
        return {
            "workers": workers,
            "leases": leases,
            "queued_offers": len(self._offers),
            "idle_polls": len(self._waiters),
            "lease_ttl": self.lease_ttl,
            "heartbeat_interval": self.heartbeat_interval,
            "min_workers": self.min_workers,
            "draining": self._draining,
            "granted_total": self.granted_total,
            "completed_total": self.completed_total,
            "requeued_total": self.requeued_total,
            "failed_total": self.failed_total,
            "stale_completions": self.stale_completions,
        }
