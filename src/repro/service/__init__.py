"""Resilient experiment service: an async grid front door.

This package turns the in-process experiment engine
(:mod:`repro.experiments.scheduler` and friends) into a long-lived
network service that many clients — sweep scripts, CI shards, notebook
sessions — can share without stepping on each other:

* :mod:`repro.service.protocol` — the line-delimited JSON wire format
  and the (de)serialization of grid points and results;
* :mod:`repro.service.breaker` — the circuit breaker that degrades the
  service from pooled to inline execution after repeated pool breaks;
* :mod:`repro.service.coalesce` — machine-wide request coalescing:
  concurrent submissions of the same content-hashed point attach to one
  in-flight computation;
* :mod:`repro.service.server` — the asyncio server: admission control,
  per-point supervision, checkpoint journaling, SIGTERM drain;
* :mod:`repro.service.client` — the thin blocking client with
  overload-aware exponential backoff and progress-event streaming;
* :mod:`repro.service.fleet` — the worker-fleet registry: leases with
  cost-scaled heartbeat deadlines, revocation and requeue on worker
  loss, drain integration;
* :mod:`repro.service.worker` — the remote worker loop behind
  ``repro worker HOST:PORT``: register, long-poll, compute, heartbeat,
  reconnect with full-jitter backoff;
* :mod:`repro.service.events` — the per-point lifecycle event hub
  behind ``subscribe`` / :meth:`ServiceClient.events`.

Everything is standard library only — ``asyncio.start_server`` over
TCP, JSON on the wire — so the service (and its workers) run wherever
the simulator does.
"""

from repro.service.breaker import CircuitBreaker
from repro.service.client import (ServiceClient, ServiceError,
                                  ServiceOverloaded, ServicePointError,
                                  submit_with_retry)
from repro.service.events import EventHub
from repro.service.fleet import Fleet, LeaseRevoked, RemotePointError
from repro.service.protocol import (ProtocolError, point_from_dict,
                                    point_to_dict)
from repro.service.server import ExperimentService, ServiceThread, serve
from repro.service.worker import FleetWorker, run_worker

__all__ = [
    "CircuitBreaker",
    "EventHub",
    "ExperimentService",
    "Fleet",
    "FleetWorker",
    "LeaseRevoked",
    "RemotePointError",
    "ServiceThread",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "ServiceOverloaded",
    "ServicePointError",
    "point_from_dict",
    "point_to_dict",
    "run_worker",
    "serve",
    "submit_with_retry",
]
