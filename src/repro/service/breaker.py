"""Circuit breaker: degrade from pooled to inline execution gracefully.

The scheduler already has the policy this breaker encodes — after
``_MAX_POOL_BREAKS`` broken pools a grid finishes serially in the
parent, because injected faults (and most real crash causes: OOM kills,
a bad native extension) only live in worker processes, which makes
in-parent execution the safe floor.  A long-lived service needs the
*stateful* version of that policy: pool health must persist across
submissions, and a burst of crashes must not condemn the service to
serial execution forever.

Standard three-state machine:

* ``CLOSED`` — healthy; pooled execution allowed.  Each pool break
  increments a strike counter; reaching the threshold trips to OPEN.
  Any pooled success resets the counter (strikes measure *consecutive*
  breaks, matching the scheduler's intent of "this pool keeps dying").
* ``OPEN`` — pooled execution refused; every point runs inline in the
  server process.  After ``cooldown`` seconds the next ask is allowed
  through as a probe and the state moves to HALF_OPEN.
* ``HALF_OPEN`` — exactly one probe in flight.  Success closes the
  breaker (full reset); another break re-opens it and restarts the
  cooldown clock.

The breaker is driven from one asyncio event loop, so plain attributes
are race-free; time comes from an injectable monotonic clock so tests
can step it deterministically.

The service runs two instances of this machine: one named ``"pool"``
guarding the local process pool, and one named ``"fleet"`` guarding
dispatch to remote workers (a flapping fleet degrades to the local pool
exactly the way a crashing pool degrades to inline execution).
"""

from __future__ import annotations

import time
from typing import Callable, Dict

#: States.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Default consecutive-break threshold; mirrors the scheduler's
#: ``_MAX_POOL_BREAKS`` so one grid's worth of crashes trips it.
DEFAULT_THRESHOLD = 3

#: Default seconds the breaker stays open before probing the pool again.
DEFAULT_COOLDOWN = 30.0


class CircuitBreaker:
    """Consecutive-failure circuit breaker with timed half-open probes."""

    def __init__(self, threshold: int = DEFAULT_THRESHOLD,
                 cooldown: float = DEFAULT_COOLDOWN,
                 clock: Callable[[], float] = time.monotonic,
                 name: str = "pool"):
        self.name = name
        self.threshold = max(1, threshold)
        self.cooldown = max(0.0, cooldown)
        self._clock = clock
        self._state = CLOSED
        self._strikes = 0
        self._opened_at = 0.0
        self._trips = 0

    @property
    def state(self) -> str:
        """Current state, with the OPEN -> HALF_OPEN timer folded in."""
        if self._state == OPEN and \
                self._clock() - self._opened_at >= self.cooldown:
            return HALF_OPEN
        return self._state

    def allow_pool(self) -> bool:
        """May the next point use the process pool?

        In OPEN the answer is no until the cooldown elapses; the first
        ask after that is the half-open probe and answers yes (further
        asks also answer yes — the caller runs one point at a time per
        drive task, and a few extra probes are harmless because every
        outcome is reported back).
        """
        state = self.state
        if state == HALF_OPEN and self._state == OPEN:
            self._state = HALF_OPEN
        return state != OPEN

    def record_success(self) -> None:
        """A pooled point completed: reset to CLOSED."""
        self._state = CLOSED
        self._strikes = 0

    def record_break(self) -> None:
        """A pool broke (crashed worker, killed hang): count a strike."""
        if self._state == HALF_OPEN:
            self._state = OPEN  # failed probe: restart the cooldown
            self._opened_at = self._clock()
            self._trips += 1
            return
        self._strikes += 1
        if self._strikes >= self.threshold and self._state == CLOSED:
            self._state = OPEN
            self._opened_at = self._clock()
            self._trips += 1

    def stats(self) -> Dict[str, object]:
        """Introspection snapshot for the service ``status`` reply."""
        return {
            "name": self.name,
            "state": self.state,
            "strikes": self._strikes,
            "threshold": self.threshold,
            "cooldown": self.cooldown,
            "trips": self._trips,
        }
