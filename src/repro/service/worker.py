"""Fleet worker: pull leased points from the service and compute them.

``repro worker HOST:PORT`` runs one of these.  The loop is a plain
blocking state machine on one socket — connect, ``worker-register``
(announcing host, pid, supported point kinds and a relative
``cost_rate``), then long-poll with ``worker-poll`` until the server
grants a lease.  Each lease is computed through
:func:`repro.experiments.scheduler.run_point_task`, i.e. with exactly
the fault-injection hooks the local pool gets (``REPRO_FAULTS`` works
on remote workers — the chaos driver relies on it), while a daemon
heartbeat thread renews the lease every ``heartbeat`` seconds through
the shared write lock.  The result ships back as a serialized payload
in ``worker-complete``; the ack's ``accepted`` flag tells the worker
whether it arrived in time or the lease had already been revoked and
requeued elsewhere (a stale completion is not an error — the worker
just polls again).

Failure handling mirrors the dispatcher's taxonomy: the worker
classifies its own exception with :func:`repro.experiments.faults.classify`
and ships the kind in ``worker-fail``, so the server can route a
remote divergence or deterministic failure exactly like a local one.

Workers outlive servers: any connection error tears the socket down
and reconnects with capped full-jitter exponential backoff, so a
SIGTERM-drained and restarted server finds its fleet re-registered
within seconds (in-flight submissions themselves survive the restart
via the server's checkpoint journal).  SIGTERM to the *worker* is a
graceful stop: the current lease is finished and shipped, then the
loop exits without taking new work.
"""

from __future__ import annotations

import os
import random
import socket
import threading
import time
from typing import Any, Dict, Optional

from repro.experiments import env, faults, scheduler
from repro.service import protocol

#: Default long-poll hold requested from the server, seconds.
DEFAULT_POLL_WINDOW = 10.0

#: Reconnect backoff bounds, seconds.
RECONNECT_BASE = 0.5
RECONNECT_CAP = 15.0


class WorkerStopped(Exception):
    """Internal control flow: the stop flag was raised mid-loop."""


class FleetWorker:
    """One worker process's connection loop.  See the module docstring.

    ``max_points`` bounds how many leases the worker completes before
    returning (tests use 1); ``reconnect=False`` turns a lost or
    draining server into a return instead of a backoff loop.
    """

    def __init__(self, host: Optional[str] = None,
                 port: Optional[int] = None, *,
                 name: Optional[str] = None,
                 heartbeat: Optional[float] = None,
                 poll_window: float = DEFAULT_POLL_WINDOW,
                 max_points: Optional[int] = None,
                 reconnect: bool = True,
                 rng: Optional[random.Random] = None,
                 verbose: bool = False):
        from repro.service.server import DEFAULT_ADDR
        default_host, default_port = env.get_hostport(
            "REPRO_SERVICE_ADDR", DEFAULT_ADDR)
        self.host = default_host if host is None else host
        self.port = default_port if port is None else port
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self._heartbeat = heartbeat
        self._poll_window = max(0.1, poll_window)
        self._max_points = max_points
        self._reconnect = reconnect
        self._rng = rng if rng is not None else random.Random()
        self._verbose = verbose
        self._stop = threading.Event()
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._write_lock = threading.Lock()
        self.completed = 0
        self.failed = 0
        self.stale = 0
        self.reconnects = 0

    # ---------------------------------------------------------- control

    def stop(self) -> None:
        """Graceful stop: finish the in-flight lease, then return.

        Safe to call from a signal handler or another thread.
        """
        self._stop.set()

    def _say(self, text: str) -> None:
        if self._verbose:
            print(f"[worker {self.name}] {text}", flush=True)

    # ------------------------------------------------------------- wire

    def _connect(self) -> None:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=30.0)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._file = sock.makefile("rb")

    def _disconnect(self) -> None:
        file, self._file = self._file, None
        sock, self._sock = self._sock, None
        for closer in (file, sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass

    def _send(self, message: Dict[str, Any]) -> None:
        """One message out, under the write lock (heartbeats interleave)."""
        data = protocol.encode(message)
        with self._write_lock:
            assert self._sock is not None
            self._sock.sendall(data)

    def _read(self, timeout: float) -> Dict[str, Any]:
        assert self._sock is not None and self._file is not None
        self._sock.settimeout(timeout)
        line = self._file.readline(protocol.MAX_LINE + 1)
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode(line)

    # ------------------------------------------------------------- loop

    def run(self) -> int:
        """Serve leases until stopped; returns points completed.

        Arms this process as a fault-injection worker first, so
        ``REPRO_FAULTS`` behaves identically whether a point lands on
        the local pool or on this remote worker.
        """
        faults.mark_worker()
        failures = 0
        while not self._done():
            try:
                self._session()
                failures = 0
            except (OSError, ConnectionError, protocol.ProtocolError,
                    EOFError) as exc:
                self._disconnect()
                if self._done() or not self._reconnect:
                    break
                failures += 1
                self.reconnects += 1
                ceiling = min(RECONNECT_CAP,
                              RECONNECT_BASE * (2 ** min(failures, 10)))
                delay = self._rng.uniform(0.0, ceiling)
                self._say(f"connection lost ({exc}); "
                          f"reconnecting in {delay:.2f}s")
                if self._stop.wait(delay):
                    break
            except WorkerStopped:
                break
        self._disconnect()
        return self.completed

    def _done(self) -> bool:
        return self._stop.is_set() or (
            self._max_points is not None
            and self.completed >= self._max_points)

    def _session(self) -> None:
        """One connection's lifetime: register, then poll/compute."""
        self._connect()
        try:
            heartbeat = self._register()
            self._say(f"registered with {self.host}:{self.port} "
                      f"(heartbeat {heartbeat:.1f}s)")
            while not self._done():
                reply = self._poll()
                kind = reply.get("type")
                if kind == "lease":
                    self._serve_lease(reply, heartbeat)
                elif kind == "idle":
                    continue
                elif kind == "draining":
                    self._say("server draining; disconnecting")
                    if not self._reconnect:
                        raise WorkerStopped()
                    raise ConnectionError("server draining")
                else:
                    raise protocol.ProtocolError(
                        f"unexpected poll answer: {kind!r}")
        finally:
            self._disconnect()

    def _register(self) -> float:
        self._send({
            "id": "register", "op": "worker-register",
            "name": self.name, "host": socket.gethostname(),
            "pid": os.getpid(), "kinds": ["frontend", "machine"],
            "cost_rate": 1.0, "version": protocol.PROTOCOL_VERSION,
        })
        reply = self._read(30.0)
        if reply.get("type") != "registered":
            raise protocol.ProtocolError(
                f"registration refused: {reply.get('error') or reply}")
        if self._heartbeat is not None:
            return max(0.05, self._heartbeat)
        return max(0.05, float(reply.get("heartbeat",
                                         env.get_float("REPRO_HEARTBEAT",
                                                       5.0))))

    def _poll(self) -> Dict[str, Any]:
        self._send({"id": "poll", "op": "worker-poll",
                    "window": self._poll_window})
        return self._read(self._poll_window + 30.0)

    def _serve_lease(self, lease: Dict[str, Any],
                     heartbeat: float) -> None:
        """Compute one leased point and ship the outcome."""
        lease_id = lease.get("lease")
        key = str(lease.get("key", ""))
        point = protocol.point_from_dict(lease["point"]).resolved()
        engine = lease.get("engine")
        ordinal = int(lease.get("ordinal", 0))
        attempt = int(lease.get("attempt", 0))
        self._say(f"lease {lease_id}: {point.kind} {point.benchmark} "
                  f"(attempt {attempt})")
        self._send({"op": "worker-started", "lease": lease_id, "key": key})
        beat_stop = threading.Event()
        beater = threading.Thread(
            target=self._beat, args=(beat_stop, heartbeat, lease_id),
            daemon=True)
        beater.start()
        began = time.monotonic()
        try:
            result = scheduler.run_point_task(point, ordinal, attempt, key,
                                              engine=engine)
            payload = protocol.result_to_payload(point.kind, result)
        except BaseException as exc:
            beat_stop.set()
            beater.join(timeout=heartbeat + 1.0)
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            kind = faults.classify(exc)
            self.failed += 1
            self._say(f"lease {lease_id} failed ({kind}): "
                      f"{faults.format_error(exc)}")
            self._send({"id": "fail", "op": "worker-fail",
                        "lease": lease_id, "key": key,
                        "error": faults.format_error(exc),
                        "failure": kind})
            self._read_ack("fail-ack")
            return
        beat_stop.set()
        beater.join(timeout=heartbeat + 1.0)
        elapsed = time.monotonic() - began
        self._send({"id": "complete", "op": "worker-complete",
                    "lease": lease_id, "key": key, "payload": payload,
                    "elapsed": elapsed})
        accepted = self._read_ack("complete-ack")
        if accepted:
            self.completed += 1
            self._say(f"lease {lease_id} completed in {elapsed:.2f}s")
        else:
            self.stale += 1
            self._say(f"lease {lease_id} was revoked before the result "
                      "arrived (stale; server already requeued it)")

    def _read_ack(self, expected: str) -> bool:
        reply = self._read(30.0)
        if reply.get("type") != expected:
            raise protocol.ProtocolError(
                f"expected {expected}, got {reply.get('type')!r}")
        return bool(reply.get("accepted", False))

    def _beat(self, stop: threading.Event, interval: float,
              lease_id: Any) -> None:
        """Heartbeat thread body: renew the lease until told to stop.

        A send failure just ends the thread — the main thread will hit
        the same dead socket when it ships the result, and the server
        side has already started the revocation clock.
        """
        while not stop.wait(interval):
            try:
                self._send({"op": "worker-heartbeat",
                            "leases": [lease_id]})
            except (OSError, protocol.ProtocolError):
                return


def run_worker(host: Optional[str] = None, port: Optional[int] = None,
               **kwargs: Any) -> FleetWorker:
    """Construct and run a worker; returns it (counters populated)."""
    worker = FleetWorker(host, port, **kwargs)
    worker.run()
    return worker
