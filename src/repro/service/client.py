"""Thin blocking client for the experiment service.

A deliberately boring counterpart to the async server: one TCP socket,
line-delimited JSON, synchronous calls — so sweep scripts, notebooks
and CI shards can use the service without touching asyncio.  The one
piece of sophistication is *pipelining*: requests carry client-chosen
ids and the server answers in completion order, so
:meth:`ServiceClient.submit_nowait` can put hundreds of submissions on
the wire before :meth:`ServiceClient.result` starts collecting — the
duplicate-storm benchmark and tests drive coalescing this way.

Overload is a first-class answer, not an error to crash on:
``rejected`` responses raise :class:`ServiceOverloaded` carrying the
server's ``retry_after`` hint, and :func:`submit_with_retry` turns that
into capped exponential backoff with full jitter (decorrelated clients
— a storm of rejected clients must not re-arrive in lockstep).
"""

from __future__ import annotations

import collections
import itertools
import random
import socket
import time
from typing import Any, Dict, Iterable, Iterator, List, Optional, \
    Sequence, Tuple

from repro.experiments import env
from repro.experiments.scheduler import GridPoint
from repro.service import protocol
from repro.service.server import DEFAULT_ADDR


class ServiceError(RuntimeError):
    """Protocol-level failure talking to the experiment service."""


class ServiceOverloaded(ServiceError):
    """The service rejected a submission (admission control).

    ``reason`` is ``overloaded`` / ``draining`` / ``client-backlog``;
    ``retry_after`` is the server's backoff hint in seconds.
    """

    def __init__(self, reason: str, retry_after: float):
        super().__init__(f"submission rejected: {reason} "
                         f"(retry after {retry_after:.2f}s)")
        self.reason = reason
        self.retry_after = retry_after


class ServicePointError(ServiceError):
    """A submitted point failed terminally on the server."""

    def __init__(self, key: str, error: str, retryable: bool,
                 failure: Optional[str] = None):
        super().__init__(f"point {key[:12]}… failed: {error}")
        self.key = key
        self.error = error
        self.retryable = retryable
        self.failure = failure


class ServiceClient:
    """Blocking line-JSON client; safe for single-threaded use.

    Usable as a context manager.  ``host``/``port`` default to
    ``REPRO_SERVICE_ADDR``.
    """

    def __init__(self, host: Optional[str] = None,
                 port: Optional[int] = None, *,
                 timeout: Optional[float] = 300.0):
        default_host, default_port = env.get_hostport(
            "REPRO_SERVICE_ADDR", DEFAULT_ADDR)
        self.host = default_host if host is None else host
        self.port = default_port if port is None else port
        self._timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._ids = itertools.count(1)
        self._pending: Dict[Any, Dict[str, Any]] = {}
        # Event messages share a subscription's id across many lines,
        # so they cannot live in _pending (one slot per id): they queue
        # here in arrival order until events() consumes them.
        self._events: "collections.deque[Dict[str, Any]]" = \
            collections.deque()

    # ------------------------------------------------------------ plumbing

    def connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self._timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._file = sock.makefile("rb")

    def close(self) -> None:
        file, self._file = self._file, None
        sock, self._sock = self._sock, None
        self._pending.clear()
        self._events.clear()
        for closer in (file, sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass

    def __enter__(self) -> "ServiceClient":
        self.connect()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _send(self, message: Dict[str, Any]) -> Any:
        self.connect()
        request_id = next(self._ids)
        message = {"id": request_id, **message}
        assert self._sock is not None
        try:
            self._sock.sendall(protocol.encode(message))
        except OSError as exc:
            self.close()
            raise ServiceError(f"send failed: {exc}") from None
        return request_id

    def _wait(self, request_id: Any) -> Dict[str, Any]:
        """Read replies (any order) until ``request_id``'s arrives."""
        reply = self._pending.pop(request_id, None)
        if reply is not None:
            return reply
        assert self._file is not None
        while True:
            try:
                line = self._file.readline(protocol.MAX_LINE + 1)
            except OSError as exc:
                self.close()
                raise ServiceError(f"read failed: {exc}") from None
            if not line:
                self.close()
                raise ServiceError("connection closed by the service")
            reply = protocol.decode(line)
            if reply.get("type") == "event":
                self._events.append(reply)
                continue
            if reply.get("id") == request_id:
                return reply
            if reply.get("id") is not None:
                self._pending[reply["id"]] = reply

    # ------------------------------------------------------------- verbs

    def ping(self) -> Dict[str, Any]:
        return self._wait(self._send({"op": "ping"}))

    def status(self) -> Dict[str, Any]:
        return self._wait(self._send({"op": "status"}))

    def drain(self) -> Dict[str, Any]:
        """Ask the service to drain gracefully (what SIGTERM does)."""
        return self._wait(self._send({"op": "drain"}))

    def submit_nowait(self, points: Sequence[GridPoint],
                      deadline: Optional[float] = None) -> Any:
        """Pipeline one submission; returns the id for :meth:`result`."""
        message: Dict[str, Any] = {
            "op": "submit",
            "points": [protocol.point_to_dict(p) for p in points],
        }
        if deadline is not None:
            message["deadline"] = deadline
        return self._send(message)

    def result(self, request_id: Any, *,
               raw: bool = False) -> List[Any]:
        """Collect one pipelined submission's answer.

        Returns deserialized result objects in submission order (or the
        raw per-point dicts with ``raw=True``).  Raises
        :class:`ServiceOverloaded` on rejection and
        :class:`ServicePointError` on the first failed point.
        """
        reply = self._wait(request_id)
        kind = reply.get("type")
        if kind == "rejected":
            raise ServiceOverloaded(reply.get("reason", "overloaded"),
                                    float(reply.get("retry_after", 1.0)))
        if kind == "error":
            raise ServiceError(str(reply.get("error")))
        if kind != "done":
            raise ServiceError(f"unexpected reply type: {kind!r}")
        entries = reply.get("results")
        if not isinstance(entries, list):
            raise ServiceError("malformed done reply")
        if raw:
            return entries
        results = []
        for entry in entries:
            if entry.get("status") != "ok":
                raise ServicePointError(
                    str(entry.get("key", "")), str(entry.get("error")),
                    bool(entry.get("retryable", False)),
                    entry.get("failure"))
            results.append(protocol.result_from_payload(
                entry["kind"], entry["payload"]))
        return results

    def submit(self, points: Sequence[GridPoint],
               deadline: Optional[float] = None, *,
               raw: bool = False) -> List[Any]:
        """Submit one grid and block for its results."""
        return self.result(self.submit_nowait(points, deadline), raw=raw)

    # ------------------------------------------------------------- events

    def subscribe(self, keys: Optional[Iterable[str]] = None) -> Any:
        """Open a progress-event feed on this connection.

        Returns the subscription id — pass it to :meth:`events` to
        iterate the feed and to :meth:`unsubscribe` to close it.  With
        ``keys``, only events for those point cache keys are delivered;
        without, the feed carries every event the service emits
        (including fleet membership changes).
        """
        message: Dict[str, Any] = {"op": "subscribe"}
        if keys is not None:
            message["keys"] = list(keys)
        sub_id = self._send(message)
        reply = self._wait(sub_id)
        if reply.get("type") != "subscribed":
            raise ServiceError(
                f"subscribe failed: {reply.get('error') or reply}")
        return sub_id

    def unsubscribe(self, sub_id: Any) -> None:
        """Close one event feed (buffered events remain readable)."""
        self._wait(self._send({"op": "unsubscribe", "subscription": sub_id}))

    def events(self, sub_id: Any,
               until: Any = None) -> Iterator[Dict[str, Any]]:
        """Yield event dicts from one subscription, in delivery order.

        Each yielded dict carries ``seq`` (hub-global, monotonically
        increasing), ``event`` (``queued``/``leased``/``started``/
        ``retried``/``diverged``/``completed``/``failed``/...), usually
        ``key``, and per-event fields such as ``worker`` and timing.

        With ``until=<request id>``, the iterator returns once the
        reply for that request arrives — the reply is stashed so a
        following :meth:`result` call still observes it.  This is the
        ``repro submit --stream`` shape: subscribe, pipeline the
        submission, stream events until the answer lands, collect it.
        Without ``until``, iterate until the peer closes or the caller
        breaks out.
        """
        while True:
            while self._events:
                message = self._events.popleft()
                if message.get("id") == sub_id:
                    yield message.get("data") or {}
            if until is not None and until in self._pending:
                return
            if self._file is None:
                return
            try:
                line = self._file.readline(protocol.MAX_LINE + 1)
            except OSError as exc:
                self.close()
                raise ServiceError(f"read failed: {exc}") from None
            if not line:
                self.close()
                if until is None:
                    return
                raise ServiceError("connection closed by the service")
            reply = protocol.decode(line)
            if reply.get("type") == "event":
                self._events.append(reply)
            elif reply.get("id") is not None:
                self._pending[reply["id"]] = reply


def submit_with_retry(client: ServiceClient, points: Sequence[GridPoint],
                      *, deadline: Optional[float] = None,
                      attempts: int = 6, base: float = 0.2,
                      cap: float = 30.0,
                      rng: Optional[random.Random] = None,
                      sleep=time.sleep, raw: bool = False) -> List[Any]:
    """Submit with capped exponential backoff on explicit rejection.

    The delay before retry *n* is drawn uniformly from
    ``[retry_after, min(cap, max(retry_after, base * 2^n))]`` — the
    server's ``retry_after`` hint is the *floor* (retrying sooner than
    the server asked is guaranteed to be rejected again), and the
    jittered headroom above it decorrelates a thousand rejected clients
    instead of letting them hammer the service again in lockstep.  Only
    :class:`ServiceOverloaded` is retried; real failures propagate
    immediately.
    """
    rng = rng if rng is not None else random.Random()
    last: Optional[ServiceOverloaded] = None
    for attempt in range(max(1, attempts)):
        try:
            return client.submit(points, deadline, raw=raw)
        except ServiceOverloaded as exc:
            last = exc
            ceiling = min(cap, max(exc.retry_after, base * (2 ** attempt)))
            floor = min(max(0.0, exc.retry_after), ceiling)
            sleep(floor + rng.uniform(0.0, max(0.0, ceiling - floor)))
    assert last is not None
    raise last
