"""Wire protocol of the experiment service: line-delimited JSON.

Every message — request or response — is one JSON object on one
``\\n``-terminated line, so the protocol needs no length prefixes, is
trivially debuggable with ``nc``, and framing survives any JSON value
(the encoder never emits raw newlines).  Requests carry a caller-chosen
``id`` that the matching response echoes back, which lets a client
pipeline many requests over one connection and demultiplex the replies
in whatever order the server finishes them.

Requests (``op`` selects the verb):

* ``{"id": .., "op": "submit", "points": [..], "deadline": ..?}`` —
  run a grid; ``points`` are :func:`point_to_dict` objects and the
  optional ``deadline`` is a wall-clock budget in seconds.
* ``{"id": .., "op": "status"}`` — queue depths, cache and coalescing
  counters, breaker state.
* ``{"id": .., "op": "ping"}`` — liveness probe.
* ``{"id": .., "op": "drain"}`` — begin graceful drain (what SIGTERM
  triggers); mainly for tests and orchestration glue.
* ``{"id": .., "op": "subscribe", "keys": [..]?}`` — open a progress
  event feed on this connection (optionally filtered to point keys).
  The ``subscribed`` ack echoes the id; thereafter every event arrives
  as ``{"id": <same id>, "type": "event", "data": {..}}`` until an
  ``unsubscribe`` op (``"subscription": <id>``) or disconnect.

Fleet worker verbs (sent by ``repro worker`` processes):

* ``{"id": .., "op": "worker-register", "name", "host", "pid",
  "kinds", "cost_rate"?}`` — join the fleet; the ``registered`` ack
  carries the server-chosen ``heartbeat`` interval and base
  ``lease_ttl``.
* ``{"id": .., "op": "worker-poll", "window": ..}`` — long-poll for
  work; answered with ``lease`` (the point, its lease id, TTL and
  pinned engine), ``idle`` (window elapsed empty) or ``draining``.
* ``{"op": "worker-heartbeat", "leases": [..]}`` /
  ``{"op": "worker-started", "lease": ..}`` — one-way notifications
  (no id, no reply): deadline renewal and compute-start marking.
* ``{"id": .., "op": "worker-complete", "lease", "key", "payload",
  "elapsed"}`` / ``{"id": .., "op": "worker-fail", "lease", "key",
  "error", "failure"}`` — ship the outcome; the ack's ``accepted``
  flag is False for a stale (already-revoked) lease, which the worker
  treats as "the server moved on" and simply polls again.

Responses (``type`` selects the shape): ``done`` carries one entry per
submitted point in submission order — ``{"key", "kind", "status":
"ok"|"error", ...}`` with a serialized result payload on ``ok`` and an
``{"error", "retryable"}`` pair otherwise; ``rejected`` is the explicit
admission-control answer (``reason`` ∈ ``overloaded`` / ``draining`` /
``client-backlog``, plus a ``retry_after`` hint in seconds); ``status``
/ ``pong`` / ``error`` are what they sound like.

Nothing here imports asyncio — the same functions serve the blocking
client and the async server.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.experiments.cachekey import config_from_dict, config_to_dict
from repro.experiments.scheduler import FRONTEND, MACHINE, GridPoint
from repro.experiments.serialize import (
    frontend_result_from_dict,
    frontend_result_to_dict,
    machine_result_from_dict,
    machine_result_to_dict,
)

#: Protocol revision, carried on every message so a future incompatible
#: change can be detected instead of misparsed.
PROTOCOL_VERSION = 1

#: Hard cap on one wire line.  A machine-result payload is a few KB;
#: 8 MiB leaves three orders of magnitude of headroom while bounding
#: what a broken or hostile peer can make either side buffer.
MAX_LINE = 8 * 1024 * 1024

#: ``rejected`` reasons.
OVERLOADED = "overloaded"
DRAINING = "draining"
CLIENT_BACKLOG = "client-backlog"


class ProtocolError(ValueError):
    """A malformed, oversized or unparseable protocol message."""


def encode(message: Dict[str, Any]) -> bytes:
    """One message -> one newline-terminated UTF-8 JSON line."""
    line = json.dumps(message, sort_keys=True, separators=(",", ":"))
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_LINE:
        raise ProtocolError(f"message of {len(data)} bytes exceeds the "
                            f"{MAX_LINE}-byte line limit")
    return data


def decode(line: bytes) -> Dict[str, Any]:
    """One wire line -> message dict; raises :class:`ProtocolError`."""
    if len(line) > MAX_LINE:
        raise ProtocolError("oversized protocol line")
    try:
        message = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"unparseable protocol line: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("protocol message is not a JSON object")
    return message


def point_to_dict(point: GridPoint) -> Dict[str, Any]:
    """Serialize a grid point for the wire (configs are type-tagged)."""
    return {
        "kind": point.kind,
        "benchmark": point.benchmark,
        "config": config_to_dict(point.config),
        "n": point.n,
        "warmup": point.warmup,
    }


def point_from_dict(data: Dict[str, Any]) -> GridPoint:
    """Inverse of :func:`point_to_dict`; raises :class:`ProtocolError`."""
    if not isinstance(data, dict):
        raise ProtocolError("grid point is not a JSON object")
    kind = data.get("kind")
    benchmark = data.get("benchmark")
    config = data.get("config")
    n = data.get("n")
    warmup = data.get("warmup", True)
    if kind not in (FRONTEND, MACHINE):
        raise ProtocolError(f"unknown grid point kind: {kind!r}")
    if not isinstance(benchmark, str) or not benchmark:
        raise ProtocolError(f"bad benchmark: {benchmark!r}")
    if n is not None and (not isinstance(n, int) or n <= 0):
        raise ProtocolError(f"bad run length: {n!r}")
    if not isinstance(warmup, bool):
        raise ProtocolError(f"bad warmup flag: {warmup!r}")
    if not isinstance(config, dict):
        raise ProtocolError("grid point has no config object")
    try:
        built = config_from_dict(config)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad config: {exc}") from None
    return GridPoint(kind=kind, benchmark=benchmark, config=built,
                     n=n, warmup=warmup)


def result_to_payload(kind: str, result: Any) -> Dict[str, Any]:
    """Serialize one computed result by its point kind."""
    if kind == FRONTEND:
        return frontend_result_to_dict(result)
    return machine_result_to_dict(result)


def result_from_payload(kind: str, payload: Dict[str, Any]) -> Any:
    """Rebuild a result object from its wire payload."""
    if kind == FRONTEND:
        return frontend_result_from_dict(payload)
    return machine_result_from_dict(payload)


def parse_deadline(value: Any) -> Optional[float]:
    """Validate an optional submit deadline (seconds, positive)."""
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or value <= 0:
        raise ProtocolError(f"bad deadline: {value!r}")
    return float(value)
