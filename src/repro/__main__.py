"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — show the benchmark suite and the named configurations;
* ``run`` — simulate one benchmark under one configuration (front end by
  default, ``--machine`` for the full cycle-level core);
* ``experiment`` — regenerate one of the paper's tables or figures;
* ``validate-replay`` — re-run the lockstep comparison a divergence
  report describes; exits nonzero iff it still reproduces;
* ``serve`` — run the shared experiment service (async grid front door
  with admission control and request coalescing; see
  :mod:`repro.service`); drains gracefully on SIGTERM;
  ``serve --status`` instead queries a running service and prints its
  health, fleet membership and live leases;
* ``worker`` — join a running service's worker fleet: pull grid points
  under heartbeat-renewed leases, compute them locally, ship results
  back; reconnects with backoff and drains on SIGTERM;
* ``submit`` — submit one simulation to a running service and print the
  headline numbers (retries with backoff when the service sheds load);
  ``--stream`` additionally subscribes to the service's event feed and
  prints each per-point lifecycle transition as it happens.

``run --validate [MODE]`` and ``experiment --validate [MODE]`` arm the
online divergence guard (:mod:`repro.validate`): every simulation also
runs on the frozen reference stack and the two are cross-checked.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro import config as cfg
from repro.config import CoreConfig, MachineConfig
from repro.core.machine import Machine
from repro.frontend.simulator import FrontEndSimulator
from repro.report import format_bar_chart, format_table
from repro.trace.fill_unit import PackingPolicy
from repro.workloads import generate_program
from repro.workloads.profiles import BENCHMARK_NAMES, get_profile

CONFIGS = {
    "icache": cfg.ICACHE,
    "baseline": cfg.BASELINE,
    "packing": cfg.PACKING,
    "promotion": cfg.PROMOTION,
    "promotion_packing": cfg.PROMOTION_PACKING,
    "promotion_costreg": cfg.PROMOTION_COST_REG,
}

EXPERIMENTS = (
    "table1", "table2", "table3", "table4",
    "fig4", "fig6", "fig7", "fig9", "fig10",
    "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
)


def _cmd_list(_args) -> int:
    rows = [[name, get_profile(name).paper_inst_count_m,
             get_profile(name).default_dynamic, get_profile(name).description]
            for name in BENCHMARK_NAMES]
    print(format_table(["Benchmark", "Paper (M)", "Scaled run", "Description"],
                       rows, title="Benchmarks"))
    print("\nConfigurations: " + ", ".join(sorted(CONFIGS)))
    print("Experiments:    " + ", ".join(EXPERIMENTS))
    return 0


def _build_config(args):
    config = CONFIGS[args.config]
    if args.threshold is not None:
        config = replace(config, promote=True, promote_threshold=args.threshold)
    if args.packing_policy is not None:
        config = replace(config, packing=PackingPolicy(args.packing_policy))
    if args.static_promotion:
        config = replace(config, promote=False, promote_static=True)
    if args.path_assoc:
        config = replace(config, path_associativity=True)
    if args.no_inactive_issue:
        config = replace(config, inactive_issue=False)
    return config


def _print_divergence(exc) -> int:
    """Render a caught DivergenceError; the exit status for the caller."""
    print("DIVERGENCE: the fast engine disagrees with the reference engine.")
    print(f"  {exc.message}")
    if exc.fetch_index >= 0:
        print(f"  first mismatching fetch: #{exc.fetch_index}")
    if exc.report_path:
        print(f"  report: {exc.report_path}")
        print("  replay: python -m repro validate-replay "
              f"{exc.report_path}")
    return 1


def _cmd_run(args) -> int:
    import os

    if args.validate:
        os.environ["REPRO_VALIDATE"] = args.validate
    program = generate_program(args.benchmark)
    config = _build_config(args)
    n = args.instructions or get_profile(args.benchmark).default_dynamic
    if args.machine:
        machine_config = MachineConfig(
            frontend=config,
            core=CoreConfig(perfect_disambiguation=args.perfect_memory),
        )
        if args.validate:
            from repro.validate.errors import DivergenceError
            from repro.validate.lockstep import lockstep_machine
            try:
                result = lockstep_machine(args.benchmark, machine_config, n,
                                          warmup=False)
            except DivergenceError as exc:
                return _print_divergence(exc)
        else:
            result = Machine(program, machine_config,
                             max_instructions=n).run()
        print(format_table(
            ["Metric", "Value"],
            [["benchmark", args.benchmark],
             ["configuration", machine_config.describe()],
             ["retired instructions", result.retired],
             ["cycles", result.cycles],
             ["IPC", result.ipc],
             ["conditional branches", result.cond_branches],
             ["promoted executions", result.promoted_branches],
             ["mispredicted branches", result.total_mispredicted_branches],
             ["avg resolution time", result.avg_resolution_time],
             ["trace cache hits/misses", f"{result.tc_hits}/{result.tc_misses}"]],
            title="Machine simulation",
        ))
        print()
        print(format_bar_chart(
            {k.value: v for k, v in result.cycle_accounting.items()},
            title="Cycle accounting", fmt="{:8d}",
        ))
    else:
        if args.validate:
            from repro.frontend.simulator import compute_oracle
            from repro.validate.errors import DivergenceError
            from repro.validate.lockstep import lockstep_frontend
            try:
                result = lockstep_frontend(
                    args.benchmark, config, n, program=program,
                    oracle=compute_oracle(program, n))
            except DivergenceError as exc:
                return _print_divergence(exc)
        else:
            result = FrontEndSimulator(program, config,
                                       max_instructions=n).run()
        stats = result.stats
        print(format_table(
            ["Metric", "Value"],
            [["benchmark", args.benchmark],
             ["configuration", config.describe()],
             ["retired instructions", result.instructions_retired],
             ["fetches", stats.fetches],
             ["effective fetch rate", result.effective_fetch_rate],
             ["cond mispredict rate", f"{100 * stats.cond_mispredict_rate:.2f}%"],
             ["promoted executions", stats.promoted_branches],
             ["promotions/demotions", f"{result.promotions}/{result.demotions}"],
             ["promoted faults", stats.promoted_faults],
             ["trace cache hits/misses", f"{result.tc_hits}/{result.tc_misses}"]],
            title="Front-end simulation",
        ))
    return 0


def _print_failure_report(failed) -> None:
    """Render a GridFailures exception as the end-of-run failure table."""
    from repro.experiments import faults

    print(format_table(list(faults.FAILURE_HEADERS),
                       faults.failure_rows(failed.failures),
                       title="Failed grid points"))
    print(f"\n{len(failed.failures)} point(s) failed, "
          f"{len(failed.results)} completed; completed points are "
          "checkpointed and a re-run resumes from the journal.")


def _print_divergence_report() -> None:
    """Render grid points that diverged and completed on the reference."""
    from repro.experiments import faults, scheduler

    divergences = scheduler.take_divergences()
    if not divergences:
        return
    print()
    print(format_table(list(faults.FAILURE_HEADERS),
                       faults.failure_rows(divergences),
                       title="Divergences (recomputed on reference engine)"))
    print(f"\n{len(divergences)} point(s) diverged from the reference "
          "engine; their numbers above come from the frozen reference "
          "stack.  Replay a report with: "
          "python -m repro validate-replay <report.json>")


def _cmd_experiment(args) -> int:
    import os

    from repro.experiments.faults import GridFailures

    # The builders resolve every supervision knob from the environment,
    # so one flag covers every grid the experiment touches.
    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.max_retries is not None:
        os.environ["REPRO_RETRIES"] = str(args.max_retries)
    if args.keep_going:
        os.environ["REPRO_KEEP_GOING"] = "1"
    elif args.fail_fast:
        os.environ["REPRO_KEEP_GOING"] = "0"
    if args.resume:
        os.environ["REPRO_RESUME"] = "1"
    elif args.no_resume:
        os.environ["REPRO_RESUME"] = "0"
    if args.validate:
        os.environ["REPRO_VALIDATE"] = args.validate
    try:
        status = _render_experiment(args.name)
    except GridFailures as failed:
        _print_failure_report(failed)
        _print_divergence_report()
        return 1
    _print_divergence_report()
    return status


def _cmd_validate_replay(args) -> int:
    from repro.validate import report as report_module

    try:
        exc = report_module.replay_report(args.report)
    except (OSError, ValueError) as err:
        print(f"cannot replay {args.report}: {err}", file=sys.stderr)
        return 2
    if exc is None:
        print(f"no divergence: {args.report} does not reproduce "
              "on this source tree")
        return 0
    return _print_divergence(exc)


def _render_experiment(name: str) -> int:
    """Build and print one paper table/figure (grids may raise)."""
    from repro.experiments import paper

    if name == "table1":
        rows = paper.table1_rows()
    elif name == "table2":
        rows = paper.table2_rows()
    elif name == "table3":
        rows = paper.table3_rows()
    elif name == "table4":
        rows = paper.table4_rows()["rows"]
    elif name in ("fig4", "fig6"):
        config = cfg.BASELINE if name == "fig4" else cfg.PROMOTION
        data = paper.fetch_breakdown("gcc", config)
        print(format_bar_chart({f"size {s}": f for (s, _r), f
                                in sorted(data["histogram"].items())},
                               title=f"{name}: gcc fetch sizes "
                                     f"(avg {data['avg']:.2f})", fmt="{:6.3f}"))
        return 0
    elif name == "fig7":
        rows = paper.figure7_rows()
    elif name == "fig9":
        rows = paper.figure9_rows()
    elif name == "fig10":
        rows = paper.figure10_rows()
    elif name == "fig11":
        rows = paper.figure11_rows()
    elif name == "fig12":
        rows = paper.figure12_rows()
    elif name == "fig13":
        rows = paper.figure13_rows()
    elif name == "fig14":
        rows = paper.figure14_rows()
    elif name == "fig15":
        rows = paper.figure15_rows()
    elif name == "fig16":
        rows = paper.figure16_rows()
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(name)
    headers = list(rows[0].keys())
    print(format_table(headers, [[row[h] for h in headers] for row in rows],
                       title=name))
    return 0


def _cmd_serve(args) -> int:
    from repro.service import serve

    if args.status:
        return _print_service_status(args.host, args.port)
    try:
        serve(args.host, args.port, jobs=args.jobs,
              admit_max=args.admit_max)
    except KeyboardInterrupt:
        # Abrupt but safe: completed points are journaled and cached.
        return 130
    return 0


def _print_service_status(host, port) -> int:
    """``repro serve --status``: one query, human-readable tables."""
    from repro.service import ServiceClient, ServiceError

    try:
        with ServiceClient(host, port, timeout=30.0) as client:
            status = client.status()
    except (ServiceError, OSError) as exc:
        print(f"cannot reach the experiment service: {exc}", file=sys.stderr)
        return 2
    counters = status.get("counters", {})
    fleet = status.get("fleet", {})
    breaker = status.get("breaker", {})
    fleet_breaker = status.get("fleet_breaker", {})
    print(format_table(
        ["Field", "Value"],
        [["draining", status.get("draining")],
         ["jobs", status.get("jobs")],
         ["in flight", status.get("in_flight")],
         ["computed ok / failed",
          f"{counters.get('computed_ok')}/{counters.get('computed_failed')}"],
         ["cache / journal hits",
          f"{counters.get('cache_hits')}/{counters.get('journal_hits')}"],
         ["coalesced", counters.get("coalesced")],
         ["rejected", counters.get("rejected")],
         ["pool breaker", breaker.get("state")],
         ["fleet breaker", fleet_breaker.get("state")],
         ["fleet workers", len(fleet.get("workers", []))],
         ["live leases", len(fleet.get("leases", []))],
         ["leases granted / requeued / stale",
          f"{fleet.get('granted_total')}/{fleet.get('requeued_total')}"
          f"/{fleet.get('stale_completions')}"]],
        title="Experiment service"))
    workers = fleet.get("workers", [])
    if workers:
        print()
        print(format_table(
            ["Worker", "Host", "PID", "Heartbeat age", "Leases",
             "Completed", "Requeued", "Failed"],
            [[w.get("worker"), w.get("host"), w.get("pid"),
              f"{w.get('heartbeat_age', 0.0):.1f}s", w.get("leases"),
              w.get("completed"), w.get("requeued"), w.get("failed")]
             for w in workers],
            title="Fleet membership"))
    leases = fleet.get("leases", [])
    if leases:
        print()
        print(format_table(
            ["Lease", "Point", "Worker", "Age", "TTL left", "Attempt"],
            [[l.get("lease"), str(l.get("key", ""))[:12] + "…",
              l.get("worker"), f"{l.get('age', 0.0):.1f}s",
              f"{l.get('ttl_remaining', 0.0):.1f}s", l.get("attempt")]
             for l in leases],
            title="Live leases"))
    return 0


def _cmd_worker(args) -> int:
    import signal

    from repro.experiments import env
    from repro.service.server import DEFAULT_ADDR
    from repro.service.worker import FleetWorker

    host = port = None
    if args.addr:
        default = env.get_hostport("REPRO_SERVICE_ADDR", DEFAULT_ADDR)
        try:
            host, port = env.parse_hostport(args.addr, default)
        except ValueError as exc:
            print(f"bad service address {args.addr!r}: {exc}",
                  file=sys.stderr)
            return 2
    worker = FleetWorker(host, port, name=args.name,
                         heartbeat=args.heartbeat,
                         max_points=args.max_points,
                         verbose=not args.quiet)
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, lambda *_: worker.stop())
        except (ValueError, OSError):
            pass
    worker.run()
    print(f"worker {worker.name}: {worker.completed} completed, "
          f"{worker.failed} failed, {worker.stale} stale, "
          f"{worker.reconnects} reconnects", flush=True)
    return 0


def _cmd_submit(args) -> int:
    from repro.experiments.scheduler import FRONTEND, MACHINE, GridPoint
    from repro.service import (ServiceClient, ServiceError, ServiceOverloaded,
                               submit_with_retry)

    config = _build_config(args)
    if args.machine:
        config = MachineConfig(frontend=config, core=CoreConfig())
    point = GridPoint(MACHINE if args.machine else FRONTEND,
                      args.benchmark, config, n=args.instructions)
    try:
        with ServiceClient(args.host, args.port) as client:
            if args.stream:
                # Subscribe first so even the queued event is captured,
                # then pipeline the submission and narrate its lifecycle
                # until the answer lands.
                sub = client.subscribe()
                request = client.submit_nowait([point],
                                               deadline=args.deadline)
                for event in client.events(sub, until=request):
                    worker = event.get("worker")
                    line = f"[{event.get('seq')}] {event.get('event')}"
                    if worker:
                        line += f" on {worker}"
                    if event.get("reason"):
                        line += f" ({event['reason']})"
                    if event.get("elapsed") is not None:
                        line += f" in {event['elapsed']}s"
                    print(line, flush=True)
                results = client.result(request)
            else:
                results = submit_with_retry(client, [point],
                                            deadline=args.deadline)
    except ServiceOverloaded as exc:
        print(f"service overloaded, gave up: {exc}", file=sys.stderr)
        return 3
    except (ServiceError, OSError) as exc:
        print(f"cannot reach the experiment service: {exc}", file=sys.stderr)
        return 2
    result = results[0]
    if args.machine:
        rows = [["IPC", result.ipc], ["cycles", result.cycles],
                ["retired instructions", result.retired]]
    else:
        rows = [["effective fetch rate", result.effective_fetch_rate],
                ["retired instructions", result.instructions_retired],
                ["trace cache hits/misses",
                 f"{result.tc_hits}/{result.tc_misses}"]]
    print(format_table(["Metric", "Value"],
                       [["benchmark", args.benchmark],
                        ["configuration", config.describe()]] + rows,
                       title="Service result"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Trace cache + branch promotion + trace packing "
                    "(Patel, Evers & Patt, ISCA 1998) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show benchmarks, configurations, experiments")

    run = sub.add_parser("run", help="simulate one benchmark")
    run.add_argument("benchmark", choices=BENCHMARK_NAMES)
    run.add_argument("--config", choices=sorted(CONFIGS), default="baseline")
    run.add_argument("--instructions", type=int, default=None)
    run.add_argument("--machine", action="store_true",
                     help="run the full cycle-level machine")
    run.add_argument("--perfect-memory", action="store_true",
                     help="perfect memory disambiguation (with --machine)")
    run.add_argument("--threshold", type=int, default=None,
                     help="enable promotion at this bias threshold")
    run.add_argument("--packing-policy",
                     choices=[p.value for p in PackingPolicy], default=None)
    run.add_argument("--static-promotion", action="store_true")
    run.add_argument("--path-assoc", action="store_true")
    run.add_argument("--no-inactive-issue", action="store_true")
    run.add_argument("--validate", nargs="?", const="lockstep", default=None,
                     metavar="MODE",
                     help="cross-check against the frozen reference stack "
                          "(MODE: lockstep, sample, or sample:N; "
                          "default lockstep)")

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("name", choices=EXPERIMENTS)
    exp.add_argument("--jobs", "-j", type=int, default=None,
                     help="worker processes for the simulation grid "
                          "(default: REPRO_JOBS or the CPU count)")
    exp.add_argument("--max-retries", type=int, default=None,
                     help="transient-failure retry budget per grid point "
                          "(default: REPRO_RETRIES or 2)")
    stop = exp.add_mutually_exclusive_group()
    stop.add_argument("--fail-fast", action="store_true",
                      help="stop at the first failed grid point (default)")
    stop.add_argument("--keep-going", action="store_true",
                      help="finish the grid, then exit nonzero with a "
                           "per-point failure table")
    res = exp.add_mutually_exclusive_group()
    res.add_argument("--resume", action="store_true",
                     help="replay this grid's checkpoint journal before "
                          "scheduling (default)")
    res.add_argument("--no-resume", action="store_true",
                     help="ignore any existing checkpoint journal")
    exp.add_argument("--validate", nargs="?", const="lockstep", default=None,
                     metavar="MODE",
                     help="arm the divergence guard for every grid point "
                          "(MODE: lockstep, sample, or sample:N; a "
                          "diverging point is recomputed on the frozen "
                          "reference stack and reported)")

    serve = sub.add_parser(
        "serve",
        help="run the shared experiment service (SIGTERM drains gracefully)")
    serve.add_argument("--host", default=None,
                       help="bind address (default: REPRO_SERVICE_ADDR "
                            "or 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None,
                       help="bind port; 0 asks the OS for an ephemeral port")
    serve.add_argument("--jobs", "-j", type=int, default=None,
                       help="worker processes (default: REPRO_JOBS or the "
                            "CPU count)")
    serve.add_argument("--admit-max", type=int, default=None,
                       help="max in-flight computations before submissions "
                            "are rejected (default: REPRO_ADMIT_MAX or "
                            "4x jobs)")
    serve.add_argument("--status", action="store_true",
                       help="query a running service instead of starting "
                            "one: print health, fleet membership, live "
                            "leases and per-worker counters")

    worker = sub.add_parser(
        "worker",
        help="join a running service's worker fleet (drains on SIGTERM)")
    worker.add_argument("addr", nargs="?", default=None,
                        help="service address as HOST:PORT, :PORT or PORT "
                             "(default: REPRO_SERVICE_ADDR)")
    worker.add_argument("--name", default=None,
                        help="worker identity shown in status and events "
                             "(default: <hostname>-<pid>)")
    worker.add_argument("--heartbeat", type=float, default=None,
                        help="lease renewal interval in seconds (default: "
                             "the server's REPRO_HEARTBEAT)")
    worker.add_argument("--max-points", type=int, default=None,
                        help="exit after completing this many points "
                             "(default: run until stopped)")
    worker.add_argument("--quiet", action="store_true",
                        help="suppress per-lease progress lines")

    submit = sub.add_parser(
        "submit", help="run one simulation through a running service")
    submit.add_argument("benchmark", choices=BENCHMARK_NAMES)
    submit.add_argument("--config", choices=sorted(CONFIGS),
                        default="baseline")
    submit.add_argument("--instructions", type=int, default=None)
    submit.add_argument("--machine", action="store_true",
                        help="run the full cycle-level machine")
    submit.add_argument("--threshold", type=int, default=None,
                        help="enable promotion at this bias threshold")
    submit.add_argument("--packing-policy",
                        choices=[p.value for p in PackingPolicy],
                        default=None)
    submit.add_argument("--static-promotion", action="store_true")
    submit.add_argument("--path-assoc", action="store_true")
    submit.add_argument("--no-inactive-issue", action="store_true")
    submit.add_argument("--host", default=None,
                        help="service address (default: REPRO_SERVICE_ADDR)")
    submit.add_argument("--port", type=int, default=None)
    submit.add_argument("--deadline", type=float, default=None,
                        help="wall-clock budget in seconds for the request")
    submit.add_argument("--stream", action="store_true",
                        help="subscribe to the service's event feed and "
                             "print each lifecycle transition (queued/"
                             "leased/started/retried/diverged/completed) "
                             "while waiting for the result")

    replay = sub.add_parser(
        "validate-replay",
        help="re-run the lockstep comparison a divergence report "
             "describes; exits nonzero iff it still reproduces")
    replay.add_argument("report", help="path to a divergence report JSON "
                                       "(written under the cache's "
                                       "divergences/ directory)")

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "validate-replay":
        return _cmd_validate_replay(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "submit":
        return _cmd_submit(args)
    return _cmd_experiment(args)


if __name__ == "__main__":
    sys.exit(main())
