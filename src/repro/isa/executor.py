"""Functional (architectural) execution of programs.

Two consumers share the same instruction semantics:

* :class:`FunctionalExecutor` runs a program in order against architectural
  state — used for oracle instruction streams, workload statistics, and
  front-end-only simulations.
* The out-of-order core calls :func:`step_instruction` directly with its own
  speculative register file and store-queue-aware memory hooks, so wrong-path
  instructions execute real semantics and are rolled back via checkpoint
  repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from repro.isa.instruction import Instruction, NUM_REGS, REG_LINK, REG_SP, REG_ZERO
from repro.isa.opcodes import Opcode
from repro.isa.program import Program

_WORD_MASK = (1 << 64) - 1
_SIGN_BIT = 1 << 63

#: Stack pointer initial value (word address); stacks grow downward.
STACK_BASE = 1 << 24


def _to_signed(value: int) -> int:
    value &= _WORD_MASK
    return value - (1 << 64) if value & _SIGN_BIT else value


class ExecResult:
    """Outcome of executing one instruction.

    A hand-rolled ``__slots__`` class rather than a frozen dataclass: one is
    allocated per executed instruction and frozen-dataclass construction
    (one ``object.__setattr__`` per field) was a measurable fraction of
    functional-execution time.

    Attributes:
        next_pc: address of the next instruction on this path.
        taken: for conditional branches, whether the branch was taken.
        mem_addr: effective word address for loads/stores.
        value: value written to ``dest`` (or stored, for ST).
        dest: destination register actually written, or None.
        halted: True after HALT.
    """

    __slots__ = ("next_pc", "taken", "mem_addr", "value", "dest", "halted")

    def __init__(self, next_pc: int, taken: Optional[bool] = None,
                 mem_addr: Optional[int] = None, value: Optional[int] = None,
                 dest: Optional[int] = None, halted: bool = False):
        self.next_pc = next_pc
        self.taken = taken
        self.mem_addr = mem_addr
        self.value = value
        self.dest = dest
        self.halted = halted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ExecResult(next_pc={self.next_pc}, taken={self.taken}, "
                f"mem_addr={self.mem_addr}, value={self.value}, "
                f"dest={self.dest}, halted={self.halted})")

    def __eq__(self, other) -> bool:
        if not isinstance(other, ExecResult):
            return NotImplemented
        return all(getattr(self, name) == getattr(other, name) for name in self.__slots__)


def step_instruction(
    inst: Instruction,
    regs: List[int],
    read_mem: Callable[[int], int],
    write_mem: Callable[[int, int], None],
) -> ExecResult:
    """Execute ``inst`` against ``regs`` and the given memory hooks.

    ``regs`` is mutated in place (except r0, which stays zero).  Returns an
    :class:`ExecResult` describing control flow and memory effects.
    """
    op = inst.op
    next_pc = inst.fall_through
    taken = None
    mem_addr = None
    value = None
    dest = None

    # The chain is ordered by dynamic frequency in the paper workloads
    # (ALU immediates and adds, then memory, then branches): this function
    # executes every simulated instruction, so average chain depth matters.
    if op is Opcode.ADDI:
        value = (regs[inst.rs1] + inst.imm) & _WORD_MASK
    elif op is Opcode.ADD:
        value = (regs[inst.rs1] + regs[inst.rs2]) & _WORD_MASK
    elif op is Opcode.LD:
        mem_addr = (regs[inst.rs1] + inst.imm) & _WORD_MASK
        value = read_mem(mem_addr) & _WORD_MASK
    elif op is Opcode.ST:
        mem_addr = (regs[inst.rs1] + inst.imm) & _WORD_MASK
        value = regs[inst.rs2] & _WORD_MASK
        write_mem(mem_addr, value)
    elif op is Opcode.BNE:
        taken = regs[inst.rs1] != regs[inst.rs2]
    elif op is Opcode.BEQ:
        taken = regs[inst.rs1] == regs[inst.rs2]
    elif op is Opcode.BLT:
        taken = _to_signed(regs[inst.rs1]) < _to_signed(regs[inst.rs2])
    elif op is Opcode.BGE:
        taken = _to_signed(regs[inst.rs1]) >= _to_signed(regs[inst.rs2])
    elif op is Opcode.SUB:
        value = (regs[inst.rs1] - regs[inst.rs2]) & _WORD_MASK
    elif op is Opcode.AND:
        value = regs[inst.rs1] & regs[inst.rs2]
    elif op is Opcode.OR:
        value = regs[inst.rs1] | regs[inst.rs2]
    elif op is Opcode.XOR:
        value = regs[inst.rs1] ^ regs[inst.rs2]
    elif op is Opcode.SHL:
        value = (regs[inst.rs1] << (regs[inst.rs2] & 63)) & _WORD_MASK
    elif op is Opcode.SHR:
        value = (regs[inst.rs1] & _WORD_MASK) >> (regs[inst.rs2] & 63)
    elif op is Opcode.SLT:
        value = 1 if _to_signed(regs[inst.rs1]) < _to_signed(regs[inst.rs2]) else 0
    elif op is Opcode.MUL:
        value = (regs[inst.rs1] * regs[inst.rs2]) & _WORD_MASK
    elif op is Opcode.ANDI:
        value = regs[inst.rs1] & (inst.imm & _WORD_MASK)
    elif op is Opcode.ORI:
        value = regs[inst.rs1] | (inst.imm & _WORD_MASK)
    elif op is Opcode.XORI:
        value = regs[inst.rs1] ^ (inst.imm & _WORD_MASK)
    elif op is Opcode.SLTI:
        value = 1 if _to_signed(regs[inst.rs1]) < inst.imm else 0
    elif op is Opcode.LUI:
        value = (inst.imm << 16) & _WORD_MASK
    elif op is Opcode.JMP:
        next_pc = inst.target
    elif op is Opcode.CALL:
        value = inst.fall_through
        next_pc = inst.target
    elif op is Opcode.RET:
        next_pc = regs[REG_LINK] & _WORD_MASK
    elif op is Opcode.JR:
        next_pc = regs[inst.rs1] & _WORD_MASK
    elif op is Opcode.NOP or op is Opcode.TRAP:
        pass
    elif op is Opcode.HALT:
        return ExecResult(next_pc=inst.addr, halted=True)
    else:  # pragma: no cover - exhaustive over the opcode set
        raise NotImplementedError(op)

    if taken is not None:
        next_pc = inst.target if taken else inst.fall_through

    if value is not None and op is not Opcode.ST:
        dest = inst.dest_reg()
        if dest is not None:
            regs[dest] = value

    return ExecResult(next_pc=next_pc, taken=taken, mem_addr=mem_addr, value=value, dest=dest)


def run_oracle(program: Program, max_instructions: Optional[int] = None) -> list:
    """Correct-path instruction stream as ``(inst, taken, next_pc)`` tuples.

    Semantically identical to draining :class:`FunctionalExecutor` (same
    :func:`step_instruction` core), but inlined: no per-instruction
    :class:`DynInst`/state-object overhead.  This is the entry point the
    front-end simulator's oracle computation uses; every configuration of a
    benchmark replays this stream, so its cost is paid once per benchmark.
    """
    regs = [0] * NUM_REGS
    regs[REG_SP] = STACK_BASE
    memory = dict(program.data)
    mem_get = memory.get

    instructions = program.instructions
    limit = len(instructions)
    stream: list = []
    append = stream.append
    pc = program.entry
    remaining = max_instructions if max_instructions is not None else -1
    # The interpreter below inlines step_instruction's semantics (same
    # frequency-ordered dispatch) without the per-instruction call frame or
    # ExecResult allocation: only (inst, taken, next_pc) is kept, and that
    # tuple goes straight into the stream.  Destination registers use the
    # Instruction's precomputed ``_dest`` (None for discarded r0 writes).
    MASK = _WORD_MASK
    to_signed = _to_signed
    ADDI = Opcode.ADDI; ADD = Opcode.ADD; LD = Opcode.LD; ST = Opcode.ST
    BNE = Opcode.BNE; BEQ = Opcode.BEQ; BLT = Opcode.BLT; BGE = Opcode.BGE
    SUB = Opcode.SUB; AND = Opcode.AND; OR = Opcode.OR; XOR = Opcode.XOR
    SHL = Opcode.SHL; SHR = Opcode.SHR; SLT = Opcode.SLT; MUL = Opcode.MUL
    ANDI = Opcode.ANDI; ORI = Opcode.ORI; XORI = Opcode.XORI
    SLTI = Opcode.SLTI; LUI = Opcode.LUI; JMP = Opcode.JMP
    CALL = Opcode.CALL; RET = Opcode.RET; JR = Opcode.JR
    NOP = Opcode.NOP; TRAP = Opcode.TRAP; HALT = Opcode.HALT
    while remaining != 0 and 0 <= pc < limit:
        inst = instructions[pc]
        op = inst.op
        next_pc = pc + 1
        taken = None
        if op is ADDI:
            rd = inst._dest
            if rd is not None:
                regs[rd] = (regs[inst.rs1] + inst.imm) & MASK
        elif op is ADD:
            rd = inst._dest
            if rd is not None:
                regs[rd] = (regs[inst.rs1] + regs[inst.rs2]) & MASK
        elif op is LD:
            value = mem_get((regs[inst.rs1] + inst.imm) & MASK, 0) & MASK
            rd = inst._dest
            if rd is not None:
                regs[rd] = value
        elif op is ST:
            memory[(regs[inst.rs1] + inst.imm) & MASK] = regs[inst.rs2] & MASK
        elif op is BNE:
            taken = regs[inst.rs1] != regs[inst.rs2]
            if taken:
                next_pc = inst.target
        elif op is BEQ:
            taken = regs[inst.rs1] == regs[inst.rs2]
            if taken:
                next_pc = inst.target
        elif op is BLT:
            taken = to_signed(regs[inst.rs1]) < to_signed(regs[inst.rs2])
            if taken:
                next_pc = inst.target
        elif op is BGE:
            taken = to_signed(regs[inst.rs1]) >= to_signed(regs[inst.rs2])
            if taken:
                next_pc = inst.target
        elif op is SUB:
            rd = inst._dest
            if rd is not None:
                regs[rd] = (regs[inst.rs1] - regs[inst.rs2]) & MASK
        elif op is AND:
            rd = inst._dest
            if rd is not None:
                regs[rd] = regs[inst.rs1] & regs[inst.rs2]
        elif op is OR:
            rd = inst._dest
            if rd is not None:
                regs[rd] = regs[inst.rs1] | regs[inst.rs2]
        elif op is XOR:
            rd = inst._dest
            if rd is not None:
                regs[rd] = regs[inst.rs1] ^ regs[inst.rs2]
        elif op is SHL:
            rd = inst._dest
            if rd is not None:
                regs[rd] = (regs[inst.rs1] << (regs[inst.rs2] & 63)) & MASK
        elif op is SHR:
            rd = inst._dest
            if rd is not None:
                regs[rd] = (regs[inst.rs1] & MASK) >> (regs[inst.rs2] & 63)
        elif op is SLT:
            rd = inst._dest
            if rd is not None:
                regs[rd] = 1 if to_signed(regs[inst.rs1]) < to_signed(regs[inst.rs2]) else 0
        elif op is MUL:
            rd = inst._dest
            if rd is not None:
                regs[rd] = (regs[inst.rs1] * regs[inst.rs2]) & MASK
        elif op is ANDI:
            rd = inst._dest
            if rd is not None:
                regs[rd] = regs[inst.rs1] & (inst.imm & MASK)
        elif op is ORI:
            rd = inst._dest
            if rd is not None:
                regs[rd] = regs[inst.rs1] | (inst.imm & MASK)
        elif op is XORI:
            rd = inst._dest
            if rd is not None:
                regs[rd] = regs[inst.rs1] ^ (inst.imm & MASK)
        elif op is SLTI:
            rd = inst._dest
            if rd is not None:
                regs[rd] = 1 if to_signed(regs[inst.rs1]) < inst.imm else 0
        elif op is LUI:
            rd = inst._dest
            if rd is not None:
                regs[rd] = (inst.imm << 16) & MASK
        elif op is JMP:
            next_pc = inst.target
        elif op is CALL:
            regs[REG_LINK] = pc + 1
            next_pc = inst.target
        elif op is RET:
            next_pc = regs[REG_LINK] & MASK
        elif op is JR:
            next_pc = regs[inst.rs1] & MASK
        elif op is NOP or op is TRAP:
            pass
        elif op is HALT:
            append((inst, None, pc))
            break
        else:  # pragma: no cover - exhaustive over the opcode set
            raise NotImplementedError(op)
        append((inst, taken, next_pc))
        pc = next_pc
        remaining -= 1
    return stream


@dataclass
class ExecState:
    """Architectural state: register file, data memory, PC."""

    regs: List[int]
    memory: Dict[int, int]
    pc: int
    halted: bool = False
    instret: int = 0

    @classmethod
    def for_program(cls, program: Program) -> "ExecState":
        regs = [0] * NUM_REGS
        regs[REG_SP] = STACK_BASE
        return cls(regs=regs, memory=dict(program.data), pc=program.entry)


@dataclass(frozen=True)
class DynInst:
    """One element of the dynamic instruction stream."""

    inst: Instruction
    result: ExecResult
    seq: int


class FunctionalExecutor:
    """In-order architectural execution of a :class:`Program`."""

    def __init__(self, program: Program, max_instructions: Optional[int] = None):
        self.program = program
        self.state = ExecState.for_program(program)
        self.max_instructions = max_instructions

    def step(self) -> Optional[DynInst]:
        """Execute one instruction; None once halted or off the image."""
        state = self.state
        if state.halted:
            return None
        if self.max_instructions is not None and state.instret >= self.max_instructions:
            state.halted = True
            return None
        inst = self.program.fetch(state.pc)
        if inst is None:
            state.halted = True
            return None
        result = step_instruction(inst, state.regs, self._read_mem, self._write_mem)
        dyn = DynInst(inst=inst, result=result, seq=state.instret)
        state.instret += 1
        if result.halted:
            state.halted = True
        else:
            state.pc = result.next_pc
        return dyn

    def run(self) -> Iterator[DynInst]:
        """Yield the dynamic instruction stream until halt."""
        while True:
            dyn = self.step()
            if dyn is None:
                return
            yield dyn

    def run_to_completion(self) -> int:
        """Execute everything; return the retired instruction count."""
        for _ in self.run():
            pass
        return self.state.instret

    def _read_mem(self, addr: int) -> int:
        return self.state.memory.get(addr, 0)

    def _write_mem(self, addr: int, value: int) -> None:
        self.state.memory[addr] = value
