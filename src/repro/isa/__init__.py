"""A small RISC instruction set used by the simulator.

The paper's experiments ran SPECint95 binaries compiled for the SimpleScalar
PISA ISA.  This package provides the stand-in: a compact RISC ISA with real
register/memory semantics, a two-pass assembler for writing programs by hand,
and a functional executor used both standalone (oracle instruction streams)
and speculatively inside the out-of-order core.
"""

from repro.isa.opcodes import Opcode, OpClass
from repro.isa.instruction import Instruction, NUM_REGS, REG_ZERO, REG_SP, REG_LINK
from repro.isa.program import Program
from repro.isa.assembler import assemble, AssemblerError
from repro.isa.executor import ExecState, FunctionalExecutor, ExecResult, step_instruction

__all__ = [
    "Opcode",
    "OpClass",
    "Instruction",
    "Program",
    "assemble",
    "AssemblerError",
    "ExecState",
    "ExecResult",
    "FunctionalExecutor",
    "step_instruction",
    "NUM_REGS",
    "REG_ZERO",
    "REG_SP",
    "REG_LINK",
]
