"""The :class:`Program` container: code image, initial data, symbols."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


@dataclass
class Program:
    """A fully resolved executable image.

    Attributes:
        instructions: code image; ``instructions[a].addr == a`` for all a.
        entry: address of the first instruction to execute.
        data: initial contents of word-addressed data memory.
        symbols: code labels -> addresses.
        data_symbols: data labels -> word addresses.
        name: human-readable identifier (benchmark name or file stem).
    """

    instructions: List[Instruction]
    entry: int = 0
    data: Dict[int, int] = field(default_factory=dict)
    symbols: Dict[str, int] = field(default_factory=dict)
    data_symbols: Dict[str, int] = field(default_factory=dict)
    name: str = "program"

    def __post_init__(self):
        for index, inst in enumerate(self.instructions):
            if inst.addr != index:
                raise ValueError(
                    f"instruction {index} has addr {inst.addr}; the code image must be dense"
                )
        if self.instructions and not 0 <= self.entry < len(self.instructions):
            raise ValueError(f"entry {self.entry} outside code image")

    def __len__(self) -> int:
        return len(self.instructions)

    def fetch(self, addr: int) -> Optional[Instruction]:
        """Instruction at ``addr`` or None when the address is off the image."""
        if 0 <= addr < len(self.instructions):
            return self.instructions[addr]
        return None

    # --- static statistics ------------------------------------------------

    def static_cond_branches(self) -> List[Instruction]:
        return [i for i in self.instructions if i.op.is_cond_branch]

    def static_block_starts(self) -> List[int]:
        """Addresses that begin a static basic block (leaders)."""
        leaders = {self.entry}
        for inst in self.instructions:
            if inst.op.ends_fetch_block:
                leaders.add(inst.fall_through)
                if inst.target is not None:
                    leaders.add(inst.target)
        return sorted(a for a in leaders if 0 <= a < len(self.instructions))

    def validate_targets(self) -> None:
        """Raise ValueError if any direct control target is off the image."""
        limit = len(self.instructions)
        for inst in self.instructions:
            if inst.target is not None and not 0 <= inst.target < limit:
                raise ValueError(f"{inst} targets {inst.target}, outside [0, {limit})")

    def listing(self, start: int = 0, count: Optional[int] = None) -> str:
        """Human-readable disassembly listing."""
        stop = len(self.instructions) if count is None else min(len(self.instructions), start + count)
        reverse_symbols = {addr: name for name, addr in self.symbols.items()}
        lines = []
        for inst in self.instructions[start:stop]:
            label = reverse_symbols.get(inst.addr)
            if label is not None:
                lines.append(f"{label}:")
            lines.append(f"    {inst}")
        return "\n".join(lines)
