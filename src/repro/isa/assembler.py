"""A two-pass assembler for the simulator ISA.

Syntax overview::

            .data
    arr:    .words 1 0 0 1 0      ; labelled word array
    buf:    .space 64             ; 64 zero words
            .text
    main:   ADDI r1, r0, 10
            ADDI r20, r0, arr     ; data labels resolve to word addresses
    loop:   ADDI r1, r1, -1
            BNE r1, r0, loop
            CALL fn
            HALT
    fn:     RET

Comments begin with ``;`` or ``#``.  Immediates may be decimal, hex
(``0x...``), negative, a code label, or a data label.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import Instruction, NUM_REGS
from repro.isa.opcodes import Opcode, BRANCH_OPS, REG3_OPS, REG_IMM_OPS
from repro.isa.program import Program


class AssemblerError(ValueError):
    """Raised on any syntax or resolution error, with the line number."""

    def __init__(self, line_no: int, message: str):
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


_MNEMONICS: Dict[str, Opcode] = {op.mnemonic: op for op in Opcode}
_MEM_OPERAND = re.compile(r"^(-?\w+)\((r\d+)\)$")
_LABEL_DEF = re.compile(r"^([A-Za-z_.$][\w.$]*):")


def _strip_comment(line: str) -> str:
    for marker in (";", "#"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


def _split_operands(rest: str) -> List[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


class _Assembler:
    def __init__(self, source: str, name: str):
        self.source = source
        self.name = name
        self.symbols: Dict[str, int] = {}
        self.data_symbols: Dict[str, int] = {}
        self.data: Dict[int, int] = {}
        # (line_no, opcode, operand strings, address)
        self.pending: List[Tuple[int, Opcode, List[str], int]] = []
        self.data_cursor = 0

    def assemble(self) -> Program:
        self._first_pass()
        instructions = [self._resolve(entry) for entry in self.pending]
        entry = self.symbols.get("main", 0)
        program = Program(
            instructions=instructions,
            entry=entry,
            data=self.data,
            symbols=self.symbols,
            data_symbols=self.data_symbols,
            name=self.name,
        )
        program.validate_targets()
        return program

    # --- pass 1: collect labels and raw statements ----------------------

    def _first_pass(self) -> None:
        section = "text"
        code_cursor = 0
        for line_no, raw in enumerate(self.source.splitlines(), start=1):
            line = _strip_comment(raw)
            if not line:
                continue
            match = _LABEL_DEF.match(line)
            if match:
                label = match.group(1)
                if label in self.symbols or label in self.data_symbols:
                    raise AssemblerError(line_no, f"duplicate label {label!r}")
                if section == "text":
                    self.symbols[label] = code_cursor
                else:
                    self.data_symbols[label] = self.data_cursor
                line = line[match.end():].strip()
                if not line:
                    continue
            if line.startswith("."):
                section = self._directive(line_no, line, section)
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].upper()
            opcode = _MNEMONICS.get(mnemonic)
            if opcode is None:
                raise AssemblerError(line_no, f"unknown mnemonic {parts[0]!r}")
            if section != "text":
                raise AssemblerError(line_no, "instruction outside .text section")
            operands = _split_operands(parts[1] if len(parts) > 1 else "")
            self.pending.append((line_no, opcode, operands, code_cursor))
            code_cursor += 1

    def _directive(self, line_no: int, line: str, section: str) -> str:
        parts = line.split()
        name = parts[0].lower()
        if name == ".text":
            return "text"
        if name == ".data":
            return "data"
        if name in (".words", ".word"):
            if section != "data":
                raise AssemblerError(line_no, f"{name} outside .data section")
            for token in parts[1:]:
                self.data[self.data_cursor] = self._number(line_no, token)
                self.data_cursor += 1
            return section
        if name == ".space":
            if section != "data":
                raise AssemblerError(line_no, ".space outside .data section")
            if len(parts) != 2:
                raise AssemblerError(line_no, ".space takes one count")
            self.data_cursor += self._number(line_no, parts[1])
            return section
        raise AssemblerError(line_no, f"unknown directive {parts[0]!r}")

    # --- pass 2: resolve operands ----------------------------------------

    def _resolve(self, entry: Tuple[int, Opcode, List[str], int]) -> Instruction:
        line_no, opcode, operands, addr = entry
        try:
            return self._build(line_no, opcode, operands, addr)
        except AssemblerError:
            raise
        except ValueError as exc:
            raise AssemblerError(line_no, str(exc)) from exc

    def _build(self, line_no: int, op: Opcode, ops: List[str], addr: int) -> Instruction:
        if op in REG3_OPS:
            self._arity(line_no, op, ops, 3)
            return Instruction(addr, op, rd=self._reg(line_no, ops[0]),
                               rs1=self._reg(line_no, ops[1]), rs2=self._reg(line_no, ops[2]))
        if op in REG_IMM_OPS:
            self._arity(line_no, op, ops, 3)
            return Instruction(addr, op, rd=self._reg(line_no, ops[0]),
                               rs1=self._reg(line_no, ops[1]), imm=self._value(line_no, ops[2]))
        if op is Opcode.LUI:
            self._arity(line_no, op, ops, 2)
            return Instruction(addr, op, rd=self._reg(line_no, ops[0]),
                               imm=self._value(line_no, ops[1]))
        if op is Opcode.LD:
            self._arity(line_no, op, ops, 2)
            base, disp = self._mem_operand(line_no, ops[1])
            return Instruction(addr, op, rd=self._reg(line_no, ops[0]), rs1=base, imm=disp)
        if op is Opcode.ST:
            self._arity(line_no, op, ops, 2)
            base, disp = self._mem_operand(line_no, ops[1])
            return Instruction(addr, op, rs1=base, rs2=self._reg(line_no, ops[0]), imm=disp)
        if op in BRANCH_OPS:
            self._arity(line_no, op, ops, 3)
            return Instruction(addr, op, rs1=self._reg(line_no, ops[0]),
                               rs2=self._reg(line_no, ops[1]),
                               target=self._code_target(line_no, ops[2]))
        if op in (Opcode.JMP, Opcode.CALL):
            self._arity(line_no, op, ops, 1)
            return Instruction(addr, op, target=self._code_target(line_no, ops[0]))
        if op is Opcode.JR:
            self._arity(line_no, op, ops, 1)
            return Instruction(addr, op, rs1=self._reg(line_no, ops[0]))
        self._arity(line_no, op, ops, 0)
        return Instruction(addr, op)

    @staticmethod
    def _arity(line_no: int, op: Opcode, ops: List[str], expected: int) -> None:
        if len(ops) != expected:
            raise AssemblerError(line_no, f"{op.mnemonic} expects {expected} operands, got {len(ops)}")

    @staticmethod
    def _reg(line_no: int, token: str) -> int:
        token = token.strip().lower()
        if not token.startswith("r"):
            raise AssemblerError(line_no, f"expected register, got {token!r}")
        try:
            number = int(token[1:])
        except ValueError as exc:
            raise AssemblerError(line_no, f"bad register {token!r}") from exc
        if not 0 <= number < NUM_REGS:
            raise AssemblerError(line_no, f"register {token!r} out of range")
        return number

    @staticmethod
    def _number(line_no: int, token: str) -> int:
        try:
            return int(token, 0)
        except ValueError as exc:
            raise AssemblerError(line_no, f"bad number {token!r}") from exc

    def _value(self, line_no: int, token: str) -> int:
        """An immediate: a literal, code label, or data label."""
        token = token.strip()
        if token in self.data_symbols:
            return self.data_symbols[token]
        if token in self.symbols:
            return self.symbols[token]
        return self._number(line_no, token)

    def _code_target(self, line_no: int, token: str) -> int:
        token = token.strip()
        if token in self.symbols:
            return self.symbols[token]
        return self._number(line_no, token)

    def _mem_operand(self, line_no: int, token: str) -> Tuple[int, int]:
        match = _MEM_OPERAND.match(token.strip().replace(" ", ""))
        if not match:
            raise AssemblerError(line_no, f"expected disp(reg), got {token!r}")
        disp_token, reg_token = match.groups()
        return self._reg(line_no, reg_token), self._value(line_no, disp_token)


def assemble(source: str, name: str = "program") -> Program:
    """Assemble ``source`` into a :class:`Program`.

    Execution starts at the ``main`` label when present, otherwise at
    address 0.
    """
    return _Assembler(source, name).assemble()
