"""Opcode definitions and classification predicates.

The classification here drives the whole front end: what terminates a fetch
block, what terminates a trace segment, and what consumes branch-predictor
bandwidth all derive from :class:`OpClass`.
"""

from __future__ import annotations

import enum


class OpClass(enum.Enum):
    """Coarse instruction classes used by the pipeline and fill unit."""

    ALU = "alu"
    MUL = "mul"
    LOAD = "load"
    STORE = "store"
    COND_BRANCH = "cond_branch"
    JUMP = "jump"  # direct unconditional
    CALL = "call"  # direct subroutine call
    RETURN = "return"
    INDIRECT = "indirect"  # indirect jump (e.g. switch tables)
    TRAP = "trap"  # serializing instruction
    HALT = "halt"
    NOP = "nop"


_CONTROL_CLASSES = frozenset(
    {
        OpClass.COND_BRANCH,
        OpClass.JUMP,
        OpClass.CALL,
        OpClass.RETURN,
        OpClass.INDIRECT,
    }
)

#: Small-int class codes consulted by the core's commit/complete stages.
#: Comparing a cached int against constants is measurably cheaper in the
#: per-retired-instruction hot path than chained ``opclass is OpClass.X``
#: enum-identity tests (each of which re-loads two attributes).  Classes
#: with no commit/complete-time side effects (ALU, JUMP, NOP) share code 0.
_COMMIT_CODE = {
    OpClass.STORE: 1,
    OpClass.LOAD: 2,
    OpClass.COND_BRANCH: 3,
    OpClass.CALL: 4,
    OpClass.RETURN: 5,
    OpClass.INDIRECT: 6,
    OpClass.TRAP: 7,
    OpClass.HALT: 8,
    OpClass.MUL: 9,
}


class Opcode(enum.Enum):
    """Every opcode in the ISA, tagged with its :class:`OpClass`."""

    # Three-register ALU operations.
    ADD = ("ADD", OpClass.ALU)
    SUB = ("SUB", OpClass.ALU)
    AND = ("AND", OpClass.ALU)
    OR = ("OR", OpClass.ALU)
    XOR = ("XOR", OpClass.ALU)
    SHL = ("SHL", OpClass.ALU)
    SHR = ("SHR", OpClass.ALU)
    SLT = ("SLT", OpClass.ALU)
    MUL = ("MUL", OpClass.MUL)

    # Register-immediate ALU operations.
    ADDI = ("ADDI", OpClass.ALU)
    ANDI = ("ANDI", OpClass.ALU)
    ORI = ("ORI", OpClass.ALU)
    XORI = ("XORI", OpClass.ALU)
    SLTI = ("SLTI", OpClass.ALU)
    LUI = ("LUI", OpClass.ALU)

    # Memory.
    LD = ("LD", OpClass.LOAD)
    ST = ("ST", OpClass.STORE)

    # Control.
    BEQ = ("BEQ", OpClass.COND_BRANCH)
    BNE = ("BNE", OpClass.COND_BRANCH)
    BLT = ("BLT", OpClass.COND_BRANCH)
    BGE = ("BGE", OpClass.COND_BRANCH)
    JMP = ("JMP", OpClass.JUMP)
    CALL = ("CALL", OpClass.CALL)
    RET = ("RET", OpClass.RETURN)
    JR = ("JR", OpClass.INDIRECT)

    # Miscellaneous.
    TRAP = ("TRAP", OpClass.TRAP)
    NOP = ("NOP", OpClass.NOP)
    HALT = ("HALT", OpClass.HALT)

    def __init__(self, mnemonic: str, opclass: OpClass):
        self.mnemonic = mnemonic
        self.opclass = opclass
        # Classification flags are precomputed plain attributes: they are
        # consulted millions of times per simulation, so property-call
        # overhead matters.
        #: conditional branch
        self.is_cond_branch = opclass is OpClass.COND_BRANCH
        #: any instruction that can redirect the PC
        self.is_control = opclass in _CONTROL_CLASSES
        self.is_uncond_control = opclass in (
            OpClass.JUMP, OpClass.CALL, OpClass.RETURN, OpClass.INDIRECT)
        #: control with a statically known target
        self.is_direct_control = opclass in (
            OpClass.COND_BRANCH, OpClass.JUMP, OpClass.CALL)
        self.is_indirect_control = opclass in (OpClass.RETURN, OpClass.INDIRECT)
        self.is_call = opclass is OpClass.CALL
        self.is_load = opclass is OpClass.LOAD
        self.is_store = opclass is OpClass.STORE
        self.is_mem = opclass in (OpClass.LOAD, OpClass.STORE)
        #: traps serialize the pipeline and terminate trace segments
        self.is_serializing = opclass is OpClass.TRAP
        #: a fetch block runs from the current fetch address to the next
        #: control instruction (traps and halt serialize, ending it too)
        self.ends_fetch_block = self.is_control or opclass in (OpClass.TRAP, OpClass.HALT)
        #: returns, indirect branches and serializing instructions force the
        #: fill unit to finalize a segment; branches, jumps and calls do not
        self.ends_trace_segment = opclass in (
            OpClass.RETURN, OpClass.INDIRECT, OpClass.TRAP, OpClass.HALT)
        #: commit/complete dispatch code; see :data:`_COMMIT_CODE`
        self.commit_code = _COMMIT_CODE.get(opclass, 0)


#: Opcodes whose textual form takes ``rd, rs1, rs2``.
REG3_OPS = frozenset(
    {Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR, Opcode.SLT, Opcode.MUL}
)

#: Opcodes whose textual form takes ``rd, rs1, imm``.
REG_IMM_OPS = frozenset({Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLTI})

#: Conditional-branch opcodes (``rs1, rs2, target``).
BRANCH_OPS = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE})
