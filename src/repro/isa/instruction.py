"""The :class:`Instruction` record and register-file conventions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.isa.opcodes import Opcode, BRANCH_OPS, REG3_OPS, REG_IMM_OPS

#: Number of architectural integer registers.  ``r0`` is hard-wired to zero.
NUM_REGS = 32

#: Register hard-wired to zero.
REG_ZERO = 0

#: Stack-pointer convention used by generated code.
REG_SP = 30

#: Link register written by ``CALL`` and read by ``RET``.
REG_LINK = 31

#: Bytes per instruction; instruction caches index with ``addr * INST_BYTES``.
INST_BYTES = 4


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    Addresses are in instruction units: the instruction at address ``a`` is
    followed sequentially by the instruction at ``a + 1``.  Multiply by
    :data:`INST_BYTES` when indexing byte-addressed structures.

    Attributes:
        addr: static address of this instruction.
        op: opcode.
        rd: destination register (0 if none; writes to r0 are discarded).
        rs1: first source register.
        rs2: second source register.
        imm: immediate / memory displacement.
        target: static target address for direct control instructions.
    """

    addr: int
    op: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    target: Optional[int] = None

    def __post_init__(self):
        for name in ("rd", "rs1", "rs2"):
            value = getattr(self, name)
            if not 0 <= value < NUM_REGS:
                raise ValueError(f"{name}={value} out of range for {self.op.mnemonic}")
        if self.op.is_direct_control and self.target is None:
            raise ValueError(f"{self.op.mnemonic} at {self.addr} requires a target")
        # Cache the dataflow queries; they run in the dispatch hot path.
        object.__setattr__(self, "_srcs", self._compute_src_regs())
        object.__setattr__(self, "_dest", self._compute_dest_reg())

    # --- dataflow helpers ------------------------------------------------

    @property
    def fall_through(self) -> int:
        """Address of the next sequential instruction."""
        return self.addr + 1

    def src_regs(self) -> tuple:
        """Architectural registers this instruction reads (r0 excluded)."""
        return self._srcs

    def dest_reg(self) -> Optional[int]:
        """Architectural register this instruction writes, or None."""
        return self._dest

    def _compute_src_regs(self) -> tuple:
        op = self.op
        if op in REG3_OPS or op in BRANCH_OPS:
            srcs = (self.rs1, self.rs2)
        elif op in REG_IMM_OPS or op is Opcode.LD or op is Opcode.JR:
            srcs = (self.rs1,)
        elif op is Opcode.ST:
            srcs = (self.rs1, self.rs2)  # address base, data
        elif op is Opcode.RET:
            srcs = (REG_LINK,)
        else:
            srcs = ()
        return tuple(r for r in srcs if r != REG_ZERO)

    def _compute_dest_reg(self) -> Optional[int]:
        op = self.op
        if op in REG3_OPS or op in REG_IMM_OPS or op in (Opcode.LD, Opcode.LUI):
            return self.rd if self.rd != REG_ZERO else None
        if op is Opcode.CALL:
            return REG_LINK
        return None

    # --- presentation -----------------------------------------------------

    def disassemble(self) -> str:
        """Render this instruction in assembler syntax."""
        op = self.op
        if op in REG3_OPS:
            return f"{op.mnemonic} r{self.rd}, r{self.rs1}, r{self.rs2}"
        if op in REG_IMM_OPS:
            return f"{op.mnemonic} r{self.rd}, r{self.rs1}, {self.imm}"
        if op is Opcode.LUI:
            return f"LUI r{self.rd}, {self.imm}"
        if op is Opcode.LD:
            return f"LD r{self.rd}, {self.imm}(r{self.rs1})"
        if op is Opcode.ST:
            return f"ST r{self.rs2}, {self.imm}(r{self.rs1})"
        if op in BRANCH_OPS:
            return f"{op.mnemonic} r{self.rs1}, r{self.rs2}, {self.target}"
        if op in (Opcode.JMP, Opcode.CALL):
            return f"{op.mnemonic} {self.target}"
        if op is Opcode.JR:
            return f"JR r{self.rs1}"
        return op.mnemonic

    def __str__(self) -> str:
        return f"{self.addr:6d}: {self.disassemble()}"


def alu(op: Opcode, addr: int, rd: int, rs1: int, rs2: int = 0, imm: int = 0) -> Instruction:
    """Convenience constructor for ALU instructions."""
    return Instruction(addr=addr, op=op, rd=rd, rs1=rs1, rs2=rs2, imm=imm)
