"""Dynamic branch-population analysis.

The paper's motivation rests on a population statistic — "over 50% of
conditional branches are strongly biased" — and branch promotion's
threshold semantics depend on *consecutive-run* structure, not just bias.
This module measures both for any program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.executor import FunctionalExecutor
from repro.isa.program import Program


@dataclass
class BranchSiteProfile:
    """Dynamic statistics for one static conditional branch."""

    addr: int
    executions: int = 0
    taken: int = 0
    #: longest run of consecutive same-direction outcomes
    longest_run: int = 0
    #: direction of the longest run
    longest_run_direction: Optional[bool] = None
    _current_run: int = 0
    _previous: Optional[bool] = None

    def record(self, outcome: bool) -> None:
        self.executions += 1
        if outcome:
            self.taken += 1
        if outcome == self._previous:
            self._current_run += 1
        else:
            self._current_run = 1
            self._previous = outcome
        if self._current_run > self.longest_run:
            self.longest_run = self._current_run
            self.longest_run_direction = outcome

    @property
    def taken_rate(self) -> float:
        return self.taken / self.executions if self.executions else 0.0

    @property
    def bias(self) -> float:
        """Max of taken rate and not-taken rate (0.5 = coin flip)."""
        return max(self.taken_rate, 1.0 - self.taken_rate)

    def is_strongly_biased(self, threshold: float = 0.95) -> bool:
        return self.bias >= threshold

    def promotable_at(self, threshold: int) -> bool:
        """Would the bias table ever promote this branch at ``threshold``?"""
        return self.longest_run >= threshold

    def classify(self) -> str:
        """A coarse label matching the generator's behaviour taxonomy."""
        if self.bias >= 0.999:
            return "always"
        if self.bias >= 0.95:
            return "strongly_biased"
        if self.bias >= 0.85:
            return "nearly_biased"
        if self.bias >= 0.65:
            return "moderate"
        return "hard"


@dataclass
class BranchPopulation:
    """Aggregate view over every conditional branch site in a run."""

    sites: Dict[int, BranchSiteProfile]
    dynamic_branches: int

    def strongly_biased_fraction(self, threshold: float = 0.95,
                                 min_executions: int = 8) -> float:
        """Fraction of *dynamic* branch executions from strongly biased
        sites — the paper's >50% population statistic."""
        biased = total = 0
        for site in self.sites.values():
            if site.executions < min_executions:
                continue
            total += site.executions
            if site.is_strongly_biased(threshold):
                biased += site.executions
        return biased / total if total else 0.0

    def promotable_fraction(self, threshold: int = 64,
                            min_executions: int = 8) -> float:
        """Fraction of dynamic executions from sites a bias table at
        ``threshold`` would (at some point) promote."""
        promotable = total = 0
        for site in self.sites.values():
            if site.executions < min_executions:
                continue
            total += site.executions
            if site.promotable_at(threshold):
                promotable += site.executions
        return promotable / total if total else 0.0

    def class_mix(self) -> Dict[str, float]:
        """Dynamic-execution share of each behaviour class."""
        mix: Dict[str, int] = {}
        for site in self.sites.values():
            mix[site.classify()] = mix.get(site.classify(), 0) + site.executions
        total = sum(mix.values()) or 1
        return {label: count / total for label, count in sorted(mix.items())}

    def top_sites(self, k: int = 10) -> List[BranchSiteProfile]:
        """The ``k`` most-executed branch sites."""
        return sorted(self.sites.values(), key=lambda s: -s.executions)[:k]


def profile_branches(program: Program,
                     max_instructions: Optional[int] = 60_000) -> BranchPopulation:
    """Run ``program`` functionally and profile every conditional branch."""
    sites: Dict[int, BranchSiteProfile] = {}
    dynamic = 0
    executor = FunctionalExecutor(program, max_instructions=max_instructions)
    for dyn in executor.run():
        if dyn.inst.op.is_cond_branch:
            dynamic += 1
            site = sites.get(dyn.inst.addr)
            if site is None:
                site = BranchSiteProfile(addr=dyn.inst.addr)
                sites[dyn.inst.addr] = site
            site.record(bool(dyn.result.taken))
    return BranchPopulation(sites=sites, dynamic_branches=dynamic)
