"""Dynamic branch-population analysis.

The paper's motivation rests on a population statistic — "over 50% of
conditional branches are strongly biased" — and branch promotion's
threshold semantics depend on *consecutive-run* structure, not just bias.
This module measures both for any program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.executor import FunctionalExecutor
from repro.isa.program import Program


@dataclass
class BranchSiteProfile:
    """Dynamic statistics for one static conditional branch."""

    addr: int
    executions: int = 0
    taken: int = 0
    #: longest run of consecutive same-direction outcomes
    longest_run: int = 0
    #: direction of the longest run
    longest_run_direction: Optional[bool] = None
    _current_run: int = 0
    _previous: Optional[bool] = None

    def record(self, outcome: bool) -> None:
        self.executions += 1
        if outcome:
            self.taken += 1
        if outcome == self._previous:
            self._current_run += 1
        else:
            self._current_run = 1
            self._previous = outcome
        if self._current_run > self.longest_run:
            self.longest_run = self._current_run
            self.longest_run_direction = outcome

    @property
    def taken_rate(self) -> float:
        return self.taken / self.executions if self.executions else 0.0

    @property
    def bias(self) -> float:
        """Max of taken rate and not-taken rate (0.5 = coin flip)."""
        return max(self.taken_rate, 1.0 - self.taken_rate)

    def is_strongly_biased(self, threshold: float = 0.95) -> bool:
        return self.bias >= threshold

    def promotable_at(self, threshold: int) -> bool:
        """Would the bias table ever promote this branch at ``threshold``?"""
        return self.longest_run >= threshold

    def classify(self) -> str:
        """A coarse label matching the generator's behaviour taxonomy."""
        if self.bias >= 0.999:
            return "always"
        if self.bias >= 0.95:
            return "strongly_biased"
        if self.bias >= 0.85:
            return "nearly_biased"
        if self.bias >= 0.65:
            return "moderate"
        return "hard"


@dataclass
class BranchPopulation:
    """Aggregate view over every conditional branch site in a run."""

    sites: Dict[int, BranchSiteProfile]
    dynamic_branches: int

    def strongly_biased_fraction(self, threshold: float = 0.95,
                                 min_executions: int = 8) -> float:
        """Fraction of *dynamic* branch executions from strongly biased
        sites — the paper's >50% population statistic."""
        biased = total = 0
        for site in self.sites.values():
            if site.executions < min_executions:
                continue
            total += site.executions
            if site.is_strongly_biased(threshold):
                biased += site.executions
        return biased / total if total else 0.0

    def promotable_fraction(self, threshold: int = 64,
                            min_executions: int = 8) -> float:
        """Fraction of dynamic executions from sites a bias table at
        ``threshold`` would (at some point) promote."""
        promotable = total = 0
        for site in self.sites.values():
            if site.executions < min_executions:
                continue
            total += site.executions
            if site.promotable_at(threshold):
                promotable += site.executions
        return promotable / total if total else 0.0

    def class_mix(self) -> Dict[str, float]:
        """Dynamic-execution share of each behaviour class."""
        mix: Dict[str, int] = {}
        for site in self.sites.values():
            mix[site.classify()] = mix.get(site.classify(), 0) + site.executions
        total = sum(mix.values()) or 1
        return {label: count / total for label, count in sorted(mix.items())}

    def top_sites(self, k: int = 10) -> List[BranchSiteProfile]:
        """The ``k`` most-executed branch sites."""
        return sorted(self.sites.values(), key=lambda s: -s.executions)[:k]


def profile_branches(program: Program,
                     max_instructions: Optional[int] = 60_000) -> BranchPopulation:
    """Run ``program`` functionally and profile every conditional branch.

    Under ``REPRO_VECTOR`` (with numpy present) the profile is computed
    from the oracle's direction column in a handful of array passes;
    ``REPRO_VECTOR=0`` keeps the per-record executor walk.  Both produce
    identical populations — site order, counts, and run structure.
    """
    from repro.experiments import columns

    if columns.enabled():
        return _profile_branches_columns(program, max_instructions)
    return _profile_branches_scalar(program, max_instructions)


def _profile_branches_scalar(
        program: Program,
        max_instructions: Optional[int]) -> BranchPopulation:
    """The reference per-record walk (``REPRO_VECTOR=0``)."""
    sites: Dict[int, BranchSiteProfile] = {}
    dynamic = 0
    executor = FunctionalExecutor(program, max_instructions=max_instructions)
    for dyn in executor.run():
        if dyn.inst.op.is_cond_branch:
            dynamic += 1
            site = sites.get(dyn.inst.addr)
            if site is None:
                site = BranchSiteProfile(addr=dyn.inst.addr)
                sites[dyn.inst.addr] = site
            site.record(bool(dyn.result.taken))
    return BranchPopulation(sites=sites, dynamic_branches=dynamic)


def _profile_branches_columns(
        program: Program,
        max_instructions: Optional[int]) -> BranchPopulation:
    """Columnar profile: one sort + run-length pass over the branch column.

    A site's outcome sequence is the oracle's branch stream filtered to
    its address, so a stable sort by address followed by run-length
    encoding yields every site's consecutive-run structure at once.  The
    scalar ``record`` loop tracks the *first* maximal run (it only
    replaces the champion on a strictly longer run), which ``argmax``
    reproduces exactly.
    """
    from repro.experiments import columns, tracefile
    from repro.frontend.simulator import compute_oracle

    np = columns.np
    oracle = tracefile.as_columns(compute_oracle(program, max_instructions))
    addrs = columns.as_u32(oracle.addrs)
    dirs = columns.as_u8(oracle.dirs)
    mask = columns.branch_mask(dirs)
    b_addrs = addrs[mask]
    b_taken = dirs[mask]
    dynamic = int(b_addrs.size)
    sites: Dict[int, BranchSiteProfile] = {}
    if not dynamic:
        return BranchPopulation(sites=sites, dynamic_branches=0)
    order = np.argsort(b_addrs, kind="stable")
    s_addrs = b_addrs[order]
    s_taken = b_taken[order]
    # Runs break on site change or direction change; within one site the
    # sorted order is retire order (stable sort), so these are exactly
    # the consecutive same-direction runs the scalar walk counts.
    run_starts, run_lengths, _ = columns.run_length_encode(
        s_addrs.astype(np.int64) << 1 | s_taken)
    run_addrs = s_addrs[run_starts]
    run_taken = s_taken[run_starts]
    site_breaks = np.flatnonzero(
        np.concatenate(([True], run_addrs[1:] != run_addrs[:-1])))
    site_ends = np.append(site_breaks[1:], run_starts.size)
    by_addr: Dict[int, BranchSiteProfile] = {}
    for lo, hi in zip(site_breaks.tolist(), site_ends.tolist()):
        lens = run_lengths[lo:hi]
        vals = run_taken[lo:hi]
        champion = lo + int(np.argmax(lens))
        addr = int(run_addrs[lo])
        by_addr[addr] = BranchSiteProfile(
            addr=addr,
            executions=int(lens.sum()),
            taken=int(lens[vals == 1].sum()),
            longest_run=int(run_lengths[champion]),
            longest_run_direction=bool(run_taken[champion]),
            _current_run=int(run_lengths[hi - 1]),
            _previous=bool(run_taken[hi - 1]),
        )
    for addr in columns.first_seen(b_addrs).tolist():
        sites[int(addr)] = by_addr[int(addr)]
    return BranchPopulation(sites=sites, dynamic_branches=dynamic)
