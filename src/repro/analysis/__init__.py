"""Analysis utilities over simulation results and hardware structures.

Tools a user studying trace caches actually reaches for:

* :mod:`repro.analysis.branches` — classify a program's dynamic branch
  population (bias, run structure, promotability at a given threshold);
* :mod:`repro.analysis.tracecache` — inspect a trace cache's contents:
  instruction duplication (the redundancy trace packing trades on),
  fragmentation, and the segment mix by finalize reason;
* :mod:`repro.analysis.timeline` — windowed time series of a front-end
  run (fetch-rate warmup curves, promotion ramp).
"""

from repro.analysis.branches import BranchSiteProfile, profile_branches
from repro.analysis.tracecache import RedundancyReport, redundancy_report
from repro.analysis.timeline import Timeline, run_with_timeline

__all__ = [
    "BranchSiteProfile",
    "profile_branches",
    "RedundancyReport",
    "redundancy_report",
    "Timeline",
    "run_with_timeline",
]
