"""Windowed time series over a front-end run (warmup curves, ramps)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import FrontEndConfig
from repro.frontend.simulator import FrontEndSimulator, compute_oracle
from repro.isa.program import Program


@dataclass
class TimelinePoint:
    """Cumulative state sampled at a window boundary."""

    instructions: int
    fetches: int
    cycles: int
    mispredicts: int
    promotions: int
    tc_hits: int
    tc_misses: int


@dataclass
class Timeline:
    """A sequence of samples plus windowed (per-interval) views."""

    points: List[TimelinePoint] = field(default_factory=list)

    def windowed_efr(self) -> List[float]:
        """Effective fetch rate within each window."""
        rates = []
        previous = TimelinePoint(0, 0, 0, 0, 0, 0, 0)
        for point in self.points:
            d_inst = point.instructions - previous.instructions
            d_fetch = point.fetches - previous.fetches
            rates.append(d_inst / d_fetch if d_fetch else 0.0)
            previous = point
        return rates

    def windowed_tc_hit_rate(self) -> List[float]:
        rates = []
        previous = TimelinePoint(0, 0, 0, 0, 0, 0, 0)
        for point in self.points:
            d_hit = point.tc_hits - previous.tc_hits
            d_miss = point.tc_misses - previous.tc_misses
            total = d_hit + d_miss
            rates.append(d_hit / total if total else 0.0)
            previous = point
        return rates

    def windowed_mispredicts(self) -> List[int]:
        deltas = []
        previous = 0
        for point in self.points:
            deltas.append(point.mispredicts - previous)
            previous = point.mispredicts
        return deltas


def run_with_timeline(
    program: Program,
    config: FrontEndConfig,
    max_instructions: int = 100_000,
    window: int = 10_000,
    oracle: Optional[list] = None,
) -> Timeline:
    """Run the front-end simulator, sampling cumulative stats per window.

    Implemented by slicing the oracle stream into windows and running the
    simulator incrementally over each slice with shared engine state, so
    the samples reflect one continuous run.

    Two small boundary artifacts: the fill unit's pending segment is
    flushed at each window edge, and a misprediction in window k repairs
    global history to the state retired *within* that window.  Both are
    negligible at the intended window sizes (>= a few thousand
    instructions); use a single full run for exact numbers.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    if oracle is None:
        oracle = compute_oracle(program, max_instructions)
    from repro.frontend.build import build_engine

    engine = build_engine(program, config)
    timeline = Timeline()
    position = 0
    cumulative = TimelinePoint(0, 0, 0, 0, 0, 0, 0)
    while position < len(oracle):
        chunk = oracle[position:position + window]
        simulator = FrontEndSimulator(program, config, oracle=chunk, engine=engine)
        # Continue from where the previous window's correct path ended.
        simulator.program = program
        result = _run_chunk(simulator, chunk)
        cumulative = TimelinePoint(
            instructions=cumulative.instructions + result.instructions_retired,
            fetches=cumulative.fetches + result.stats.fetches,
            cycles=cumulative.cycles + result.cycles,
            mispredicts=cumulative.mispredicts + result.stats.total_cond_mispredicts,
            promotions=result.promotions,
            tc_hits=result.tc_hits,
            tc_misses=result.tc_misses,
        )
        timeline.points.append(cumulative)
        position += window
    return timeline


def _run_chunk(simulator: FrontEndSimulator, chunk) -> object:
    """Run one window; the simulator's loop starts at the chunk's first pc."""
    simulator.program = simulator.program
    # The simulator fetches from program.entry by default; patch the loop's
    # start by temporarily pointing the program entry at the chunk start.
    original_entry = simulator.program.entry
    simulator.program.entry = chunk[0][0].addr
    try:
        return simulator.run()
    finally:
        simulator.program.entry = original_entry
