"""Trace-cache content inspection: redundancy, fragmentation, segment mix.

Trace packing's whole tradeoff is *instruction duplication* — "the primary
cost of this redundancy is increased contention for trace cache lines"
(paper section 5).  This module quantifies it for a live cache.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

from repro.trace.segment import MAX_SEGMENT_INSTRUCTIONS
from repro.trace.trace_cache import TraceCache


@dataclass
class RedundancyReport:
    """Snapshot statistics of a trace cache's resident contents."""

    resident_segments: int
    stored_instructions: int
    unique_instructions: int
    avg_segment_length: float
    #: stored / unique: 1.0 = no duplication; packing pushes this up
    duplication_factor: float
    #: fraction of line capacity left unused by short segments
    fragmentation: float
    #: resident segments per finalize reason
    reason_mix: Dict[str, int] = field(default_factory=dict)
    #: distinct start addresses per instruction address (alignment spread)
    max_copies_of_one_instruction: int = 0
    promoted_branch_slots: int = 0
    dynamic_branch_slots: int = 0

    def summary(self) -> str:
        return (
            f"{self.resident_segments} segments, "
            f"{self.stored_instructions} stored instructions over "
            f"{self.unique_instructions} unique addresses "
            f"(duplication x{self.duplication_factor:.2f}), "
            f"avg length {self.avg_segment_length:.1f}, "
            f"fragmentation {100 * self.fragmentation:.1f}%"
        )


def redundancy_report(cache: TraceCache) -> RedundancyReport:
    """Inspect every resident segment and measure duplication."""
    copies: Counter = Counter()
    stored = 0
    segments = 0
    reason_mix: Counter = Counter()
    promoted_slots = 0
    dynamic_slots = 0
    for ways in cache._sets:
        for segment in ways:
            segments += 1
            stored += len(segment)
            reason_mix[segment.finalize_reason.value] += 1
            for inst in segment.instructions:
                copies[inst.addr] += 1
            for branch in segment.branches:
                if branch.promoted:
                    promoted_slots += 1
                else:
                    dynamic_slots += 1
    unique = len(copies)
    capacity_used = segments * MAX_SEGMENT_INSTRUCTIONS
    return RedundancyReport(
        resident_segments=segments,
        stored_instructions=stored,
        unique_instructions=unique,
        avg_segment_length=stored / segments if segments else 0.0,
        duplication_factor=stored / unique if unique else 0.0,
        fragmentation=1.0 - stored / capacity_used if capacity_used else 0.0,
        reason_mix=dict(reason_mix),
        max_copies_of_one_instruction=max(copies.values()) if copies else 0,
        promoted_branch_slots=promoted_slots,
        dynamic_branch_slots=dynamic_slots,
    )
