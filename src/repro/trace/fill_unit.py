"""The fill unit: builds trace segments from the retired instruction stream.

The fill unit collects retired instructions into fetch blocks (a block ends
at a non-promoted conditional branch, a segment-ending instruction, or a
16-instruction cap) and merges blocks into a pending segment under one of
the paper's block policies:

* **atomic** (baseline): a block merges only if it fits entirely; otherwise
  the pending segment is finalized and the block starts a new one;
* **unregulated packing**: blocks split at any instruction — segments are
  greedily packed to 16;
* **chunked packing (n=2, n=4)**: blocks split only at multiples of n
  instructions, halving/quartering the number of distinct split points;
* **cost-regulated packing**: a block may split only when the pending
  segment has at least half its length free, OR the pending segment
  contains a backward conditional branch with displacement <= 32
  instructions (a tight loop worth unrolling).

With promotion enabled, every retiring conditional branch consults the
:class:`~repro.trace.bias_table.BranchBiasTable`; promoted branches are
embedded with a static prediction, do not terminate blocks, and do not
count against the three-dynamic-branch limit.
"""

from __future__ import annotations

import enum
from collections import Counter
from typing import List, Optional

from repro.isa.instruction import Instruction
from repro.trace.bias_table import BranchBiasTable
from repro.trace.segment import (
    MAX_SEGMENT_BRANCHES,
    MAX_SEGMENT_INSTRUCTIONS,
    FinalizeReason,
    SegmentBranch,
    TraceSegment,
)
from repro.trace.trace_cache import TraceCache


class PackingPolicy(enum.Enum):
    """The fill unit's block-merge policies (paper section 5)."""

    ATOMIC = "atomic"
    UNREGULATED = "unregulated"
    CHUNK2 = "chunk2"
    CHUNK4 = "chunk4"
    COST_REGULATED = "cost_regulated"

    @property
    def granule(self) -> int:
        if self is PackingPolicy.CHUNK2:
            return 2
        if self is PackingPolicy.CHUNK4:
            return 4
        return 1

    @property
    def packs(self) -> bool:
        return self is not PackingPolicy.ATOMIC


#: One instruction queued in the fill unit: ``(inst, direction, promoted)``.
#: A plain tuple, not a dataclass — the fill unit consumes every retired
#: instruction, so per-instruction allocation cost dominates its profile.
_Slot = tuple

def _segment_validation_armed() -> bool:
    """Validate every finalized segment against its structural invariants?

    The checks are pure paranoia about fill-unit bugs (they re-walk each
    segment instruction by instruction) and cost ~15% of front-end
    simulation time, so they arm only when ``REPRO_VALIDATE`` enables a
    validation mode (historically ``1``, now also ``lockstep`` /
    ``sample``).  Evaluated per fill-unit construction, not at import,
    so tests and the CLI can arm the guard after this module loads.
    """
    from repro import validate
    return validate.invariants_armed()


class FillUnit:
    """Builds and writes trace segments from retire-order instructions."""

    def __init__(
        self,
        trace_cache: TraceCache,
        bias_table: Optional[BranchBiasTable] = None,
        policy: PackingPolicy = PackingPolicy.ATOMIC,
        promote: bool = False,
        static_promotions: Optional[dict] = None,
    ):
        if promote and bias_table is None:
            raise ValueError("promotion requires a bias table")
        if promote and static_promotions is not None:
            raise ValueError("dynamic and static promotion are exclusive")
        self.trace_cache = trace_cache
        self.bias_table = bias_table
        self.policy = policy
        self.promote = promote
        #: addr -> StaticPromotion: compiler-marked strongly biased branches
        #: (no warm-up, no demotion; see repro.trace.static_promotion)
        self.static_promotions = static_promotions
        self._pending: List[_Slot] = []
        self._block: List[_Slot] = []
        #: dynamic (non-promoted) conditional branches in ``_pending``,
        #: maintained incrementally — scanning per merge was a hot spot.
        self._pending_dyn = 0
        #: (reason, ((addr, dir, promoted), ...)) -> TraceSegment.  Loops
        #: finalize the same slot sequence over and over; reusing the
        #: previously built (immutable-in-practice) segment skips the
        #: SegmentBranch/TraceSegment construction, which dominated
        #: finalize time.  Keyed by address — a program address names a
        #: unique static instruction.
        self._segment_memo: dict = {}
        self.finalize_reasons: Counter = Counter()
        self.segments_built = 0
        #: Compiled-retire state machine: the merge/finalize cascade a
        #: compiled fetch plan triggers is a pure function of the fill
        #: unit's (pending, block) state, the plan, and the bias table's
        #: promotion responses — so each distinct state is interned as a
        #: node and each (plan, responses) edge out of it replays as
        #: "insert these memoized segments, move to that node".
        #: node: [edges, pending_slots, block_slots, pending_dyn,
        #: recovery_edge] — edges maps (plan id, bias responses) ->
        #: (plan, finalized segments, target node); recovery_edge caches
        #: what :meth:`note_recovery` finalizes from this state (every
        #: recovery ends in the empty state).
        self._state_nodes: dict = {}
        #: The empty (pending, block) state, pre-interned: every recovery
        #: and flush lands here, so it is the most-visited node by far.
        self._empty_node: list = [{}, (), (), 0, None]
        self._state_nodes[((), ())] = self._empty_node
        self._cur_node: Optional[list] = None
        #: True while ``_cur_node`` is authoritative and the live
        #: ``_pending``/``_block`` lists lag behind it (edge-hit fast
        #: transitions don't touch them; see :meth:`_materialize`).
        self._state_stale = False
        self._recording: Optional[list] = None
        #: Segment invariant checks, armed at construction (zero cost off).
        self._validate_segments = _segment_validation_armed()

    # ------------------------------------------------------------- retire

    def retire(self, inst: Instruction, taken: Optional[bool] = None) -> None:
        """Feed one retired instruction (with its outcome if a branch)."""
        self._materialize()
        self._cur_node = None  # per-instruction feed leaves the state machine
        op = inst.op
        block = self._block
        if op.is_cond_branch:
            if taken is None:
                raise ValueError(f"retiring branch {inst} without an outcome")
            promoted = False
            if self.promote:
                promoted = self.bias_table.update_fast(inst.addr, taken)
            elif self.static_promotions is not None:
                static = self.static_promotions.get(inst.addr)
                promoted = static is not None and static.direction == taken
            block.append((inst, taken, promoted))
            if not promoted:
                # A block's ONLY dynamic branch is its terminating one.
                self._block = []
                self._merge_block(block, False, 1)
            elif len(block) >= MAX_SEGMENT_INSTRUCTIONS:
                self._block = []
                self._merge_block(block, False, 0)
        else:
            block.append((inst, None, False))
            if op.ends_trace_segment:
                self._block = []
                self._merge_block(block, True, 0)
            elif len(block) >= MAX_SEGMENT_INSTRUCTIONS:
                self._block = []
                self._merge_block(block, False, 0)  # straightline fragment cap

    def retire_batch(self, items) -> None:
        """Feed a sequence of ``(inst, taken, ...)`` retirements at once.

        Only the first two fields of each item are read, so callers may
        pass richer tuples (the front-end simulator hands its
        ``(inst, taken, promoted, record)`` slots straight through).
        Identical behaviour to calling :meth:`retire` per element, minus
        one Python call frame and the per-call attribute traffic for each
        retired instruction — this is the front-end simulator's retire
        path, executed once per simulated instruction.
        """
        self._materialize()
        self._cur_node = None  # batch feed leaves the state machine
        block = self._block
        bias_update = self.bias_table.update_fast if self.promote else None
        statics = self.static_promotions
        merge = self._merge_block
        cap = MAX_SEGMENT_INSTRUCTIONS
        for item in items:
            inst = item[0]
            taken = item[1]
            op = inst.op
            if op.is_cond_branch:
                if taken is None:
                    raise ValueError(f"retiring branch {inst} without an outcome")
                promoted = False
                if bias_update is not None:
                    promoted = bias_update(inst.addr, taken)
                elif statics is not None:
                    static = statics.get(inst.addr)
                    promoted = static is not None and static.direction == taken
                block.append((inst, taken, promoted))
                if not promoted:
                    full, block = block, []
                    self._block = block
                    merge(full, False, 1)
                elif len(block) >= cap:
                    full, block = block, []
                    self._block = block
                    merge(full, False, 0)
            else:
                block.append((inst, None, False))
                if op.ends_trace_segment:
                    full, block = block, []
                    self._block = block
                    merge(full, True, 0)
                elif len(block) >= cap:
                    full, block = block, []
                    self._block = block
                    merge(full, False, 0)

    #: Bound on interned compiled-retire states; beyond it new states stop
    #: being cached (the transition still executes, uncached).  In practice
    #: programs settle into a few hundred states.
    MAX_STATE_NODES = 1 << 16

    def retire_compiled(self, plan) -> None:
        """Feed one compiled fetch plan's retirements at once.

        ``plan`` is a compiled fetch variant (see
        :func:`repro.frontend.fetch.compile_variant`) exposing
        ``fill_branches`` — its conditional branches as ``(addr, taken)``
        in retire order — and ``fill_events``, its event-compressed slot
        walk.  Behaviour is identical to feeding the plan's slots through
        :meth:`retire_batch`.

        The bias table is consulted live (promotion state evolves between
        fetches of the same plan); everything downstream of the responses
        — the block/pending merge cascade and the segments it finalizes —
        is deterministic given the current fill state, so it replays from
        the state machine's edge cache when this (state, plan, responses)
        combination has run before.
        """
        bias_update = self.bias_table.update_fast if self.promote else None
        statics = self.static_promotions
        responses = 0
        if bias_update is not None:
            k = 0
            for addr, taken in plan.fill_branches:
                if bias_update(addr, taken):
                    responses |= 1 << k
                k += 1
        elif statics is not None:
            k = 0
            for addr, taken in plan.fill_branches:
                static = statics.get(addr)
                if static is not None and static.direction == taken:
                    responses |= 1 << k
                k += 1
        node = self._cur_node
        if node is None:
            # _cur_node is None only when the live lists are current.
            node = self._intern_state()
        if node is not None:
            # Int edge key: a 16-inst segment holds < 16 branches, so the
            # responses mask fits in 16 bits under the plan's id().  The
            # stored plan is identity-checked below, which also pins it
            # against id() reuse.
            edge = node[0].get((id(plan) << 16) | responses)
            if edge is not None and edge[0] is plan:
                insert = self.trace_cache.insert
                reasons = self.finalize_reasons
                segments = edge[1]
                for segment, reason in segments:
                    insert(segment)
                    reasons[reason] += 1
                self.segments_built += len(segments)
                self._cur_node = edge[2]
                self._state_stale = True
                return
        self._materialize()
        recording: list = []
        self._recording = recording
        self._replay_events(plan.fill_events, responses)
        self._recording = None
        nxt = self._intern_state()
        if node is not None and nxt is not None:
            node[0][(id(plan) << 16) | responses] = (plan, tuple(recording), nxt)
        self._cur_node = nxt

    def _intern_state(self) -> Optional[list]:
        """Intern the current (pending, block) contents as a state node.

        Must be called with the live lists current.  A slot is identified
        by ``(addr, direction, promoted)`` — a program address names a
        unique static instruction (the same convention as the segment
        memo).  Returns None once the node budget is exhausted.
        """
        key = (
            tuple([(inst.addr, d, p) for inst, d, p in self._pending]),
            tuple([(inst.addr, d, p) for inst, d, p in self._block]),
        )
        node = self._state_nodes.get(key)
        if node is None:
            if len(self._state_nodes) >= self.MAX_STATE_NODES:
                return None
            node = [{}, tuple(self._pending), tuple(self._block),
                    self._pending_dyn, None]
            self._state_nodes[key] = node
        return node

    def _materialize(self) -> None:
        """Copy the current node's contents back into the live lists.

        Edge-hit transitions advance ``_cur_node`` without touching
        ``_pending``/``_block``; anything that executes against the live
        lists (an edge miss, the generic retire paths, recovery, flush)
        calls this first.
        """
        if self._state_stale:
            node = self._cur_node
            self._pending = list(node[1])
            self._block = list(node[2])
            self._pending_dyn = node[3]
            self._state_stale = False

    def _replay_events(self, events, responses: int) -> None:
        """Execute a compiled event list against the live fill state.

        ``responses`` carries the bias table's promotion answers for the
        plan's conditional branches (bit ``k`` for the ``k``-th branch),
        already computed — and their side effects applied — by
        :meth:`retire_compiled`.
        """
        block = self._block
        merge = self._merge_block
        cap = MAX_SEGMENT_INSTRUCTIONS
        branch_index = 0
        for kind, payload in events:
            if kind == 0:
                run_len = len(payload)
                room = cap - len(block)
                if run_len < room:
                    block.extend(payload)
                else:
                    start = 0
                    while run_len - start >= room:
                        block.extend(payload[start:start + room])
                        start += room
                        full, block = block, []
                        self._block = block
                        merge(full, False, 0)
                        room = cap
                    if start < run_len:
                        block.extend(payload[start:])
            elif kind == 1:
                inst, taken = payload
                promoted = bool((responses >> branch_index) & 1)
                branch_index += 1
                block.append((inst, taken, promoted))
                if not promoted:
                    full, block = block, []
                    self._block = block
                    merge(full, False, 1)
                elif len(block) >= cap:
                    full, block = block, []
                    self._block = block
                    merge(full, False, 0)
            else:
                block.append(payload)
                full, block = block, []
                self._block = block
                merge(full, True, 0)

    def flush(self) -> None:
        """Finalize any partial state (end of simulation)."""
        self._materialize()
        if self._block:
            # A partial block never holds a dynamic branch: a non-promoted
            # conditional branch terminates its block at retire time.
            block, self._block = self._block, []
            self._merge_block(block, False, 0)
        self._finalize(FinalizeReason.FLUSH)
        # Pending and block are both empty now: the known empty state.
        self._cur_node = self._empty_node

    def note_recovery(self) -> None:
        """A branch misprediction flushed the pipeline.

        Real fill units finalize the pending segment on a flush, which
        re-synchronizes segment start addresses with fetch addresses —
        without this, trace packing can drift into alignments the fetch
        engine never looks up (a closed loop whose block boundaries never
        coincide with the 16-instruction packing stride becomes
        unreachable in the trace cache).

        What a recovery finalizes is a pure function of the current fill
        state and always lands in the empty state, so from a known state
        node it replays as a cached edge — on the compiled fetch path every
        misprediction takes a recovery, making this the second-hottest
        transition after :meth:`retire_compiled`'s.
        """
        node = self._cur_node
        if node is not None:
            edge = node[4]
            if edge is not None:
                insert = self.trace_cache.insert
                reasons = self.finalize_reasons
                for segment, reason in edge:
                    insert(segment)
                    reasons[reason] += 1
                self.segments_built += len(edge)
                self._pending = []
                self._block = []
                self._pending_dyn = 0
                self._state_stale = False
                self._cur_node = self._empty_node
                return
        self._materialize()
        recording: list = []
        self._recording = recording
        if self._block:
            block, self._block = self._block, []
            self._merge_block(block, False, 0)
        self._finalize(FinalizeReason.RECOVERY)
        self._recording = None
        if node is not None:
            node[4] = tuple(recording)
        # Pending and block are both empty now: the known empty state.
        self._cur_node = self._empty_node

    # -------------------------------------------------------------- merging

    @staticmethod
    def _block_branches(block: List[_Slot]) -> int:
        return sum(1 for inst, _dir, promoted in block
                   if inst.op.is_cond_branch and not promoted)

    def _pending_branches(self) -> int:
        return self._pending_dyn

    def _merge_block(self, block: List[_Slot], seg_end: bool,
                     block_dyn: int) -> None:
        # ``block_dyn`` is the number of dynamic (non-promoted) conditional
        # branches in the block — 0 or 1, and when 1 the branch is the
        # block's LAST instruction (a dynamic branch terminates its block
        # at retire time).  Passing it explicitly replaces a per-merge
        # rescan of the block.
        if self.policy.packs and self._pack_allowed():
            self._merge_packing(block, seg_end, block_dyn)
        else:
            self._merge_atomic(block, seg_end, block_dyn)

    def _pack_allowed(self) -> bool:
        """May the *pending segment* accept a split block right now?"""
        if self.policy is not PackingPolicy.COST_REGULATED:
            return True
        if not self._pending:
            return True
        free = MAX_SEGMENT_INSTRUCTIONS - len(self._pending)
        if 2 * free >= len(self._pending):
            return True
        return self._has_tight_loop_branch()

    def _has_tight_loop_branch(self, max_displacement: int = 32) -> bool:
        for inst, _dir, _promoted in self._pending:
            if inst.op.is_cond_branch and inst.target is not None:
                if inst.target < inst.addr and inst.addr - inst.target <= max_displacement:
                    return True
        return False

    def _merge_atomic(self, block: List[_Slot], seg_end: bool,
                      block_dyn: int) -> None:
        if self._pending:
            fits_brs = self._pending_dyn + block_dyn <= MAX_SEGMENT_BRANCHES
            fits_size = len(self._pending) + len(block) <= MAX_SEGMENT_INSTRUCTIONS
            if not fits_brs:
                self._finalize(FinalizeReason.MAX_BRANCHES)
            elif not fits_size:
                self._finalize(FinalizeReason.ATOMIC_BLOCK)
        self._pending.extend(block)
        self._pending_dyn += block_dyn
        self._post_append(seg_end)

    def _merge_packing(self, block: List[_Slot], seg_end: bool,
                       block_dyn: int) -> None:
        granule = self.policy.granule
        while block:
            free = MAX_SEGMENT_INSTRUCTIONS - len(self._pending)
            brs_left = MAX_SEGMENT_BRANCHES - self._pending_dyn
            # How much of the block may enter the pending segment?
            take = min(free, len(block))
            brs_limited = False
            # A block's dynamic branch, if any, is its last instruction —
            # so a prefix holds ``block_dyn`` branches only when it is the
            # whole block.
            if (block_dyn if take == len(block) else 0) > brs_left:
                # The block's terminating branch (its last instruction)
                # cannot be added; take at most everything before it.
                take = min(take, len(block) - 1)
                brs_limited = True
            if take < len(block) and granule > 1 and self._pending:
                # Split points restricted to multiples of the granule,
                # measured from the start of the block.
                take = (take // granule) * granule
            if take == len(block):
                self._pending.extend(block)
                self._pending_dyn += block_dyn
                block = []
                self._post_append(seg_end)
                continue
            # Partial merge: append the prefix, finalize, carry the rest —
            # the remainder keeps the block's terminating dynamic branch.
            self._pending.extend(block[:take])
            block = block[take:]
            if brs_limited and len(self._pending) < MAX_SEGMENT_INSTRUCTIONS:
                self._finalize(FinalizeReason.MAX_BRANCHES)
            elif len(self._pending) == MAX_SEGMENT_INSTRUCTIONS:
                self._finalize(FinalizeReason.MAX_SIZE)
            else:
                # Granule prevented any (or a full) merge.
                self._finalize(FinalizeReason.ATOMIC_BLOCK)

    def _post_append(self, seg_end: bool) -> None:
        if seg_end:
            self._finalize(FinalizeReason.SEG_ENDER)
        elif len(self._pending) >= MAX_SEGMENT_INSTRUCTIONS:
            self._finalize(FinalizeReason.MAX_SIZE)

    # ------------------------------------------------------------- finalize

    def _finalize(self, reason: FinalizeReason) -> None:
        if not self._pending:
            return
        slots, self._pending = self._pending, []
        self._pending_dyn = 0
        key = (reason, tuple([(inst.addr, direction, promoted)
                              for inst, direction, promoted in slots]))
        segment = self._segment_memo.get(key)
        if segment is None:
            self._segment_memo[key] = segment = self._build_segment(slots, reason)
        self.trace_cache.insert(segment)
        self.finalize_reasons[reason] += 1
        self.segments_built += 1
        recording = self._recording
        if recording is not None:
            recording.append((segment, reason))

    def _build_segment(self, slots: List[_Slot],
                       reason: FinalizeReason) -> TraceSegment:
        instructions = [inst for inst, _dir, _promoted in slots]
        branches = [
            SegmentBranch(position=i, direction=direction, promoted=promoted)
            for i, (inst, direction, promoted) in enumerate(slots)
            if inst.op.is_cond_branch
        ]
        # Successor of the whole segment along its embedded path, computed
        # directly from the last slot (cheaper than the generic
        # TraceSegment walk, which re-derives each branch's direction).
        last_inst, last_dir, _last_promoted = slots[-1]
        last_op = last_inst.op
        if last_op.is_cond_branch:
            next_addr = last_inst.target if last_dir else last_inst.fall_through
        elif last_op.is_direct_control:  # JMP / CALL
            next_addr = last_inst.target
        elif last_op.is_indirect_control:
            next_addr = -1  # not statically known; segment ends here
        else:
            next_addr = last_inst.fall_through
        segment = TraceSegment(
            start_addr=instructions[0].addr,
            instructions=instructions,
            branches=branches,
            finalize_reason=reason,
            next_addr=next_addr,
        )
        if self._validate_segments:
            segment.validate()
        return segment
