"""The fill unit: builds trace segments from the retired instruction stream.

The fill unit collects retired instructions into fetch blocks (a block ends
at a non-promoted conditional branch, a segment-ending instruction, or a
16-instruction cap) and merges blocks into a pending segment under one of
the paper's block policies:

* **atomic** (baseline): a block merges only if it fits entirely; otherwise
  the pending segment is finalized and the block starts a new one;
* **unregulated packing**: blocks split at any instruction — segments are
  greedily packed to 16;
* **chunked packing (n=2, n=4)**: blocks split only at multiples of n
  instructions, halving/quartering the number of distinct split points;
* **cost-regulated packing**: a block may split only when the pending
  segment has at least half its length free, OR the pending segment
  contains a backward conditional branch with displacement <= 32
  instructions (a tight loop worth unrolling).

With promotion enabled, every retiring conditional branch consults the
:class:`~repro.trace.bias_table.BranchBiasTable`; promoted branches are
embedded with a static prediction, do not terminate blocks, and do not
count against the three-dynamic-branch limit.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass
from typing import List, Optional

from repro.isa.instruction import Instruction
from repro.trace.bias_table import BranchBiasTable
from repro.trace.segment import (
    MAX_SEGMENT_BRANCHES,
    MAX_SEGMENT_INSTRUCTIONS,
    FinalizeReason,
    SegmentBranch,
    TraceSegment,
)
from repro.trace.trace_cache import TraceCache


class PackingPolicy(enum.Enum):
    """The fill unit's block-merge policies (paper section 5)."""

    ATOMIC = "atomic"
    UNREGULATED = "unregulated"
    CHUNK2 = "chunk2"
    CHUNK4 = "chunk4"
    COST_REGULATED = "cost_regulated"

    @property
    def granule(self) -> int:
        if self is PackingPolicy.CHUNK2:
            return 2
        if self is PackingPolicy.CHUNK4:
            return 4
        return 1

    @property
    def packs(self) -> bool:
        return self is not PackingPolicy.ATOMIC


@dataclass
class _Slot:
    """One instruction queued in the fill unit, with its branch metadata."""

    inst: Instruction
    direction: Optional[bool]
    promoted: bool


class FillUnit:
    """Builds and writes trace segments from retire-order instructions."""

    def __init__(
        self,
        trace_cache: TraceCache,
        bias_table: Optional[BranchBiasTable] = None,
        policy: PackingPolicy = PackingPolicy.ATOMIC,
        promote: bool = False,
        static_promotions: Optional[dict] = None,
    ):
        if promote and bias_table is None:
            raise ValueError("promotion requires a bias table")
        if promote and static_promotions is not None:
            raise ValueError("dynamic and static promotion are exclusive")
        self.trace_cache = trace_cache
        self.bias_table = bias_table
        self.policy = policy
        self.promote = promote
        #: addr -> StaticPromotion: compiler-marked strongly biased branches
        #: (no warm-up, no demotion; see repro.trace.static_promotion)
        self.static_promotions = static_promotions
        self._pending: List[_Slot] = []
        self._block: List[_Slot] = []
        self.finalize_reasons: Counter = Counter()
        self.segments_built = 0

    # ------------------------------------------------------------- retire

    def retire(self, inst: Instruction, taken: Optional[bool] = None) -> None:
        """Feed one retired instruction (with its outcome if a branch)."""
        promoted = False
        direction = None
        if inst.op.is_cond_branch:
            if taken is None:
                raise ValueError(f"retiring branch {inst} without an outcome")
            direction = taken
            if self.promote:
                entry = self.bias_table.update(inst.addr, taken)
                promoted = entry.promoted and entry.promoted_dir == taken
            elif self.static_promotions is not None:
                static = self.static_promotions.get(inst.addr)
                promoted = static is not None and static.direction == taken
        self._block.append(_Slot(inst=inst, direction=direction, promoted=promoted))

        ends_block = False
        seg_end = False
        if inst.op.is_cond_branch and not promoted:
            ends_block = True
        elif inst.op.ends_trace_segment:
            ends_block = True
            seg_end = True
        elif len(self._block) >= MAX_SEGMENT_INSTRUCTIONS:
            ends_block = True  # straightline fragment cap
        if ends_block:
            block, self._block = self._block, []
            self._merge_block(block, seg_end)

    def flush(self) -> None:
        """Finalize any partial state (end of simulation)."""
        if self._block:
            block, self._block = self._block, []
            self._merge_block(block, seg_end=False)
        self._finalize(FinalizeReason.FLUSH)

    def note_recovery(self) -> None:
        """A branch misprediction flushed the pipeline.

        Real fill units finalize the pending segment on a flush, which
        re-synchronizes segment start addresses with fetch addresses —
        without this, trace packing can drift into alignments the fetch
        engine never looks up (a closed loop whose block boundaries never
        coincide with the 16-instruction packing stride becomes
        unreachable in the trace cache).
        """
        if self._block:
            block, self._block = self._block, []
            self._merge_block(block, seg_end=False)
        self._finalize(FinalizeReason.RECOVERY)

    # -------------------------------------------------------------- merging

    @staticmethod
    def _block_branches(block: List[_Slot]) -> int:
        return sum(1 for slot in block if slot.inst.op.is_cond_branch and not slot.promoted)

    def _pending_branches(self) -> int:
        return self._block_branches(self._pending)

    def _merge_block(self, block: List[_Slot], seg_end: bool) -> None:
        if self.policy.packs and self._pack_allowed():
            self._merge_packing(block, seg_end)
        else:
            self._merge_atomic(block, seg_end)

    def _pack_allowed(self) -> bool:
        """May the *pending segment* accept a split block right now?"""
        if self.policy is not PackingPolicy.COST_REGULATED:
            return True
        if not self._pending:
            return True
        free = MAX_SEGMENT_INSTRUCTIONS - len(self._pending)
        if 2 * free >= len(self._pending):
            return True
        return self._has_tight_loop_branch()

    def _has_tight_loop_branch(self, max_displacement: int = 32) -> bool:
        for slot in self._pending:
            inst = slot.inst
            if inst.op.is_cond_branch and inst.target is not None:
                if inst.target < inst.addr and inst.addr - inst.target <= max_displacement:
                    return True
        return False

    def _merge_atomic(self, block: List[_Slot], seg_end: bool) -> None:
        if self._pending:
            fits_brs = self._pending_branches() + self._block_branches(block) <= MAX_SEGMENT_BRANCHES
            fits_size = len(self._pending) + len(block) <= MAX_SEGMENT_INSTRUCTIONS
            if not fits_brs:
                self._finalize(FinalizeReason.MAX_BRANCHES)
            elif not fits_size:
                self._finalize(FinalizeReason.ATOMIC_BLOCK)
        self._pending.extend(block)
        self._post_append(seg_end)

    def _merge_packing(self, block: List[_Slot], seg_end: bool) -> None:
        granule = self.policy.granule
        while block:
            free = MAX_SEGMENT_INSTRUCTIONS - len(self._pending)
            brs_left = MAX_SEGMENT_BRANCHES - self._pending_branches()
            # How much of the block may enter the pending segment?
            take = min(free, len(block))
            brs_limited = False
            if self._block_branches(block[:take]) > brs_left:
                # The block's terminating branch (its last instruction)
                # cannot be added; take at most everything before it.
                take = min(take, len(block) - 1)
                brs_limited = True
            if take < len(block) and granule > 1 and self._pending:
                # Split points restricted to multiples of the granule,
                # measured from the start of the block.
                take = (take // granule) * granule
            if take == len(block):
                self._pending.extend(block)
                block = []
                self._post_append(seg_end)
                continue
            # Partial merge: append the prefix, finalize, carry the rest.
            self._pending.extend(block[:take])
            block = block[take:]
            if brs_limited and len(self._pending) < MAX_SEGMENT_INSTRUCTIONS:
                self._finalize(FinalizeReason.MAX_BRANCHES)
            elif len(self._pending) == MAX_SEGMENT_INSTRUCTIONS:
                self._finalize(FinalizeReason.MAX_SIZE)
            else:
                # Granule prevented any (or a full) merge.
                self._finalize(FinalizeReason.ATOMIC_BLOCK)

    def _post_append(self, seg_end: bool) -> None:
        if seg_end:
            self._finalize(FinalizeReason.SEG_ENDER)
        elif len(self._pending) >= MAX_SEGMENT_INSTRUCTIONS:
            self._finalize(FinalizeReason.MAX_SIZE)

    # ------------------------------------------------------------- finalize

    def _finalize(self, reason: FinalizeReason) -> None:
        if not self._pending:
            return
        slots, self._pending = self._pending, []
        instructions = [slot.inst for slot in slots]
        branches = [
            SegmentBranch(position=i, direction=slot.direction, promoted=slot.promoted)
            for i, slot in enumerate(slots)
            if slot.inst.op.is_cond_branch
        ]
        segment = TraceSegment(
            start_addr=instructions[0].addr,
            instructions=instructions,
            branches=branches,
            finalize_reason=reason,
        )
        next_addr = segment.compute_next_addr()
        segment.next_addr = -1 if next_addr is None else next_addr
        segment.validate()
        self.trace_cache.insert(segment)
        self.finalize_reasons[reason] += 1
        self.segments_built += 1
