"""The trace cache, fill unit, and branch promotion machinery.

This package is the paper's primary contribution:

* :class:`TraceSegment` — up to 16 logically contiguous instructions with
  embedded branch directions, at most three of which are *non-promoted*
  conditional branches;
* :class:`TraceCache` — 2K lines, 4-way set associative, no path
  associativity (one resident segment per start address);
* :class:`BranchBiasTable` — the tagged 8K-entry table that detects
  strongly biased branches and drives promotion/demotion;
* :class:`FillUnit` — builds segments from the retired instruction stream
  with selectable block policies: atomic, unregulated packing, chunked
  packing (n=2/4) and cost-regulated packing.
"""

from repro.trace.segment import TraceSegment, FinalizeReason, SegmentBranch
from repro.trace.bias_table import BranchBiasTable, BiasEntry
from repro.trace.trace_cache import TraceCache
from repro.trace.fill_unit import FillUnit, PackingPolicy

__all__ = [
    "TraceSegment",
    "FinalizeReason",
    "SegmentBranch",
    "BranchBiasTable",
    "BiasEntry",
    "TraceCache",
    "FillUnit",
    "PackingPolicy",
]
