"""Static branch promotion (the paper's section 4 closing discussion).

    "Branch promotion can be done statically, as well.  The ISA must allow
    for extra encodings to communicate strongly biased branches to the
    hardware. ... branches need not go through a warm-up phase before
    being detected as promotable ..."

This module plays the compiler's role: profile a program's conditional
branches over a training run and emit the set of strongly biased ones with
their likely directions.  The fill unit then embeds those branches with
static predictions from the first time it sees them — no bias table, no
warm-up — at the cost of missing branches whose bias is input-dependent or
shifts over time (they keep faulting, with no demotion mechanism to
rescue them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.isa.executor import FunctionalExecutor
from repro.isa.program import Program


@dataclass(frozen=True)
class StaticPromotion:
    """One statically promoted branch."""

    addr: int
    direction: bool
    executions: int
    taken_rate: float


def profile_biased_branches(
    program: Program,
    max_instructions: Optional[int] = 60_000,
    bias_threshold: float = 0.95,
    min_executions: int = 32,
) -> Dict[int, StaticPromotion]:
    """Run the program and return strongly biased branch sites.

    A branch qualifies when it executed at least ``min_executions`` times
    in the training run and went one direction at least ``bias_threshold``
    of the time.  Returns {branch address -> StaticPromotion}.
    """
    if not 0.5 < bias_threshold <= 1.0:
        raise ValueError("bias_threshold must be in (0.5, 1.0]")
    from repro.experiments import columns

    if columns.enabled():
        # Columnar profile: count per-site executions and taken outcomes
        # with two first-seen-ordered bincount passes over the oracle's
        # branch column instead of a per-record executor walk.
        from repro.experiments import tracefile
        from repro.frontend.simulator import compute_oracle

        oracle = tracefile.as_columns(compute_oracle(program, max_instructions))
        addrs = columns.as_u32(oracle.addrs)
        dirs = columns.as_u8(oracle.dirs)
        sites, counts = columns.site_counts(addrs[columns.branch_mask(dirs)])
        executions = dict(zip(sites.tolist(), counts.tolist()))
        sites, counts = columns.site_counts(addrs[dirs == 1])
        taken = dict(zip(sites.tolist(), counts.tolist()))
    else:
        executions = {}
        taken = {}
        executor = FunctionalExecutor(program,
                                      max_instructions=max_instructions)
        for dyn in executor.run():
            if dyn.inst.op.is_cond_branch:
                addr = dyn.inst.addr
                executions[addr] = executions.get(addr, 0) + 1
                if dyn.result.taken:
                    taken[addr] = taken.get(addr, 0) + 1

    promotions: Dict[int, StaticPromotion] = {}
    for addr, count in executions.items():
        if count < min_executions:
            continue
        rate = taken.get(addr, 0) / count
        if rate >= bias_threshold:
            direction = True
        elif rate <= 1.0 - bias_threshold:
            direction = False
        else:
            continue
        promotions[addr] = StaticPromotion(
            addr=addr, direction=direction, executions=count, taken_rate=rate
        )
    return promotions
