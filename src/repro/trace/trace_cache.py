"""The trace cache proper: 2K lines, 4-way set associative, no path
associativity."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.trace.segment import TraceSegment


@dataclass
class TraceCacheStats:
    hits: int = 0
    misses: int = 0
    writes: int = 0
    replacements: int = 0  # evictions of a *different* start address
    overwrites: int = 0    # same start address rewritten (path changed)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class TraceCache:
    """Stores :class:`TraceSegment` lines indexed by starting fetch address.

    Without path associativity, only one segment starting at a given
    address can be resident: writing ``ABC`` evicts a resident ``ABD``
    (the paper's baseline configuration).
    """

    def __init__(self, n_lines: int = 2048, assoc: int = 4,
                 path_assoc: bool = False):
        if n_lines % assoc != 0:
            raise ValueError("n_lines must be divisible by assoc")
        self.n_lines = n_lines
        self.assoc = assoc
        #: with path associativity, segments with the same start address but
        #: different embedded paths may coexist (see [9]'s discussion; the
        #: paper's configurations leave this off)
        self.path_assoc = path_assoc
        self.n_sets = n_lines // assoc
        if self.n_sets & (self.n_sets - 1):
            raise ValueError("set count must be a power of two")
        # Each set: list of segments in LRU order (least recent first).
        self._sets: List[List[TraceSegment]] = [[] for _ in range(self.n_sets)]
        self.stats = TraceCacheStats()
        #: content-change epoch: bumped on every insert/flush so the fetch
        #: engine's per-pc candidate memo can invalidate in O(1).  (LRU
        #: reordering does not change membership, so hits leave it alone.)
        self.epoch = 0

    def _set_index(self, start_addr: int) -> int:
        return start_addr & (self.n_sets - 1)

    def lookup(self, fetch_addr: int) -> Optional[TraceSegment]:
        """Probe for a segment starting at ``fetch_addr`` (updates LRU/stats)."""
        ways = self._sets[fetch_addr & (self.n_sets - 1)]
        stats = self.stats
        for i, segment in enumerate(ways):
            if segment.start_addr == fetch_addr:
                if i != len(ways) - 1:  # already most-recently-used
                    ways.append(ways.pop(i))
                stats.hits += 1
                return segment
        stats.misses += 1
        return None

    def probe(self, fetch_addr: int) -> Optional[TraceSegment]:
        """Side-effect-free lookup."""
        for segment in self._sets[self._set_index(fetch_addr)]:
            if segment.start_addr == fetch_addr:
                return segment
        return None

    @staticmethod
    def _path_signature(segment: TraceSegment) -> tuple:
        return tuple((b.position, b.direction) for b in segment.branches)

    def insert(self, segment: TraceSegment) -> None:
        """Write a finalized segment.

        Without path associativity a new segment evicts any resident one
        with the same start address; with it, only a same-start same-path
        segment is replaced and different paths coexist.
        """
        ways = self._sets[self._set_index(segment.start_addr)]
        self.stats.writes += 1
        self.epoch += 1
        signature = self._path_signature(segment) if self.path_assoc else None
        for i, resident in enumerate(ways):
            if resident.start_addr != segment.start_addr:
                continue
            if self.path_assoc and self._path_signature(resident) != signature:
                continue
            del ways[i]
            self.stats.overwrites += 1
            break
        else:
            if len(ways) >= self.assoc:
                ways.pop(0)
                self.stats.replacements += 1
        ways.append(segment)

    def lookup_candidates(self, fetch_addr: int):
        """All resident segments starting at ``fetch_addr`` (no stats)."""
        return [s for s in self._sets[self._set_index(fetch_addr)]
                if s.start_addr == fetch_addr]

    def record_hit(self, segment: TraceSegment) -> None:
        """Account a hit on a candidate chosen by the fetch engine."""
        ways = self._sets[self._set_index(segment.start_addr)]
        for i, resident in enumerate(ways):
            if resident is segment:
                ways.append(ways.pop(i))
                break
        self.stats.hits += 1

    def record_miss(self) -> None:
        self.stats.misses += 1

    def resident_segments(self) -> int:
        return sum(len(ways) for ways in self._sets)

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.n_sets)]
        self.epoch += 1
