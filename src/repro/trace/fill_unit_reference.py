"""Frozen reference copies of the seed fill unit and bias table (PR 4).

**Verbatim copies** of :class:`repro.trace.fill_unit.FillUnit` and
:class:`repro.trace.bias_table.BranchBiasTable` exactly as they stood
before the fast front-end rewrite.  ``REPRO_FAST_FRONTEND=0`` wires a
reference trace-cache front end from these classes (see
:mod:`repro.frontend.build`) so the optimized fill path can be pinned
byte-identical against known-good behaviour.

Do not optimize or otherwise edit this module; it is the contract.
"""


from __future__ import annotations

import enum
import os
from collections import Counter
from dataclasses import dataclass
from typing import List, Optional

from repro.isa.instruction import Instruction
from repro.trace.segment import (
    MAX_SEGMENT_BRANCHES,
    MAX_SEGMENT_INSTRUCTIONS,
    FinalizeReason,
    SegmentBranch,
    TraceSegment,
)
from repro.trace.fill_unit import PackingPolicy
from repro.trace.trace_cache import TraceCache


#: One instruction queued in the fill unit: ``(inst, direction, promoted)``.
#: A plain tuple, not a dataclass — the fill unit consumes every retired
#: instruction, so per-instruction allocation cost dominates its profile.
_Slot = tuple

#: Validate every finalized segment against its structural invariants.
#: The checks are pure paranoia about fill-unit bugs (they re-walk each
#: segment instruction by instruction) and cost ~15% of front-end
#: simulation time, so they are opt-in: set ``REPRO_VALIDATE=1``.
VALIDATE_SEGMENTS = os.environ.get("REPRO_VALIDATE", "") not in ("", "0")


class FillUnit:
    """Builds and writes trace segments from retire-order instructions."""

    def __init__(
        self,
        trace_cache: TraceCache,
        bias_table: Optional[BranchBiasTable] = None,
        policy: PackingPolicy = PackingPolicy.ATOMIC,
        promote: bool = False,
        static_promotions: Optional[dict] = None,
    ):
        if promote and bias_table is None:
            raise ValueError("promotion requires a bias table")
        if promote and static_promotions is not None:
            raise ValueError("dynamic and static promotion are exclusive")
        self.trace_cache = trace_cache
        self.bias_table = bias_table
        self.policy = policy
        self.promote = promote
        #: addr -> StaticPromotion: compiler-marked strongly biased branches
        #: (no warm-up, no demotion; see repro.trace.static_promotion)
        self.static_promotions = static_promotions
        self._pending: List[_Slot] = []
        self._block: List[_Slot] = []
        #: dynamic (non-promoted) conditional branches in ``_pending``,
        #: maintained incrementally — scanning per merge was a hot spot.
        self._pending_dyn = 0
        #: (reason, ((addr, dir, promoted), ...)) -> TraceSegment.  Loops
        #: finalize the same slot sequence over and over; reusing the
        #: previously built (immutable-in-practice) segment skips the
        #: SegmentBranch/TraceSegment construction, which dominated
        #: finalize time.  Keyed by address — a program address names a
        #: unique static instruction.
        self._segment_memo: dict = {}
        self.finalize_reasons: Counter = Counter()
        self.segments_built = 0

    # ------------------------------------------------------------- retire

    def retire(self, inst: Instruction, taken: Optional[bool] = None) -> None:
        """Feed one retired instruction (with its outcome if a branch)."""
        op = inst.op
        block = self._block
        if op.is_cond_branch:
            if taken is None:
                raise ValueError(f"retiring branch {inst} without an outcome")
            promoted = False
            if self.promote:
                entry = self.bias_table.update(inst.addr, taken)
                promoted = entry.promoted and entry.promoted_dir == taken
            elif self.static_promotions is not None:
                static = self.static_promotions.get(inst.addr)
                promoted = static is not None and static.direction == taken
            block.append((inst, taken, promoted))
            if not promoted:
                # A block's ONLY dynamic branch is its terminating one.
                self._block = []
                self._merge_block(block, False, 1)
            elif len(block) >= MAX_SEGMENT_INSTRUCTIONS:
                self._block = []
                self._merge_block(block, False, 0)
        else:
            block.append((inst, None, False))
            if op.ends_trace_segment:
                self._block = []
                self._merge_block(block, True, 0)
            elif len(block) >= MAX_SEGMENT_INSTRUCTIONS:
                self._block = []
                self._merge_block(block, False, 0)  # straightline fragment cap

    def retire_batch(self, items) -> None:
        """Feed a sequence of ``(inst, taken, ...)`` retirements at once.

        Only the first two fields of each item are read, so callers may
        pass richer tuples (the front-end simulator hands its
        ``(inst, taken, promoted, record)`` slots straight through).
        Identical behaviour to calling :meth:`retire` per element, minus
        one Python call frame and the per-call attribute traffic for each
        retired instruction — this is the front-end simulator's retire
        path, executed once per simulated instruction.
        """
        block = self._block
        bias_update = self.bias_table.update if self.promote else None
        statics = self.static_promotions
        merge = self._merge_block
        cap = MAX_SEGMENT_INSTRUCTIONS
        for item in items:
            inst = item[0]
            taken = item[1]
            op = inst.op
            if op.is_cond_branch:
                if taken is None:
                    raise ValueError(f"retiring branch {inst} without an outcome")
                promoted = False
                if bias_update is not None:
                    entry = bias_update(inst.addr, taken)
                    promoted = entry.promoted and entry.promoted_dir == taken
                elif statics is not None:
                    static = statics.get(inst.addr)
                    promoted = static is not None and static.direction == taken
                block.append((inst, taken, promoted))
                if not promoted:
                    full, block = block, []
                    self._block = block
                    merge(full, False, 1)
                elif len(block) >= cap:
                    full, block = block, []
                    self._block = block
                    merge(full, False, 0)
            else:
                block.append((inst, None, False))
                if op.ends_trace_segment:
                    full, block = block, []
                    self._block = block
                    merge(full, True, 0)
                elif len(block) >= cap:
                    full, block = block, []
                    self._block = block
                    merge(full, False, 0)

    def flush(self) -> None:
        """Finalize any partial state (end of simulation)."""
        if self._block:
            # A partial block never holds a dynamic branch: a non-promoted
            # conditional branch terminates its block at retire time.
            block, self._block = self._block, []
            self._merge_block(block, False, 0)
        self._finalize(FinalizeReason.FLUSH)

    def note_recovery(self) -> None:
        """A branch misprediction flushed the pipeline.

        Real fill units finalize the pending segment on a flush, which
        re-synchronizes segment start addresses with fetch addresses —
        without this, trace packing can drift into alignments the fetch
        engine never looks up (a closed loop whose block boundaries never
        coincide with the 16-instruction packing stride becomes
        unreachable in the trace cache).
        """
        if self._block:
            block, self._block = self._block, []
            self._merge_block(block, False, 0)
        self._finalize(FinalizeReason.RECOVERY)

    # -------------------------------------------------------------- merging

    @staticmethod
    def _block_branches(block: List[_Slot]) -> int:
        return sum(1 for inst, _dir, promoted in block
                   if inst.op.is_cond_branch and not promoted)

    def _pending_branches(self) -> int:
        return self._pending_dyn

    def _merge_block(self, block: List[_Slot], seg_end: bool,
                     block_dyn: int) -> None:
        # ``block_dyn`` is the number of dynamic (non-promoted) conditional
        # branches in the block — 0 or 1, and when 1 the branch is the
        # block's LAST instruction (a dynamic branch terminates its block
        # at retire time).  Passing it explicitly replaces a per-merge
        # rescan of the block.
        if self.policy.packs and self._pack_allowed():
            self._merge_packing(block, seg_end, block_dyn)
        else:
            self._merge_atomic(block, seg_end, block_dyn)

    def _pack_allowed(self) -> bool:
        """May the *pending segment* accept a split block right now?"""
        if self.policy is not PackingPolicy.COST_REGULATED:
            return True
        if not self._pending:
            return True
        free = MAX_SEGMENT_INSTRUCTIONS - len(self._pending)
        if 2 * free >= len(self._pending):
            return True
        return self._has_tight_loop_branch()

    def _has_tight_loop_branch(self, max_displacement: int = 32) -> bool:
        for inst, _dir, _promoted in self._pending:
            if inst.op.is_cond_branch and inst.target is not None:
                if inst.target < inst.addr and inst.addr - inst.target <= max_displacement:
                    return True
        return False

    def _merge_atomic(self, block: List[_Slot], seg_end: bool,
                      block_dyn: int) -> None:
        if self._pending:
            fits_brs = self._pending_dyn + block_dyn <= MAX_SEGMENT_BRANCHES
            fits_size = len(self._pending) + len(block) <= MAX_SEGMENT_INSTRUCTIONS
            if not fits_brs:
                self._finalize(FinalizeReason.MAX_BRANCHES)
            elif not fits_size:
                self._finalize(FinalizeReason.ATOMIC_BLOCK)
        self._pending.extend(block)
        self._pending_dyn += block_dyn
        self._post_append(seg_end)

    def _merge_packing(self, block: List[_Slot], seg_end: bool,
                       block_dyn: int) -> None:
        granule = self.policy.granule
        while block:
            free = MAX_SEGMENT_INSTRUCTIONS - len(self._pending)
            brs_left = MAX_SEGMENT_BRANCHES - self._pending_dyn
            # How much of the block may enter the pending segment?
            take = min(free, len(block))
            brs_limited = False
            # A block's dynamic branch, if any, is its last instruction —
            # so a prefix holds ``block_dyn`` branches only when it is the
            # whole block.
            if (block_dyn if take == len(block) else 0) > brs_left:
                # The block's terminating branch (its last instruction)
                # cannot be added; take at most everything before it.
                take = min(take, len(block) - 1)
                brs_limited = True
            if take < len(block) and granule > 1 and self._pending:
                # Split points restricted to multiples of the granule,
                # measured from the start of the block.
                take = (take // granule) * granule
            if take == len(block):
                self._pending.extend(block)
                self._pending_dyn += block_dyn
                block = []
                self._post_append(seg_end)
                continue
            # Partial merge: append the prefix, finalize, carry the rest —
            # the remainder keeps the block's terminating dynamic branch.
            self._pending.extend(block[:take])
            block = block[take:]
            if brs_limited and len(self._pending) < MAX_SEGMENT_INSTRUCTIONS:
                self._finalize(FinalizeReason.MAX_BRANCHES)
            elif len(self._pending) == MAX_SEGMENT_INSTRUCTIONS:
                self._finalize(FinalizeReason.MAX_SIZE)
            else:
                # Granule prevented any (or a full) merge.
                self._finalize(FinalizeReason.ATOMIC_BLOCK)

    def _post_append(self, seg_end: bool) -> None:
        if seg_end:
            self._finalize(FinalizeReason.SEG_ENDER)
        elif len(self._pending) >= MAX_SEGMENT_INSTRUCTIONS:
            self._finalize(FinalizeReason.MAX_SIZE)

    # ------------------------------------------------------------- finalize

    def _finalize(self, reason: FinalizeReason) -> None:
        if not self._pending:
            return
        slots, self._pending = self._pending, []
        self._pending_dyn = 0
        key = (reason, tuple([(inst.addr, direction, promoted)
                              for inst, direction, promoted in slots]))
        segment = self._segment_memo.get(key)
        if segment is None:
            self._segment_memo[key] = segment = self._build_segment(slots, reason)
        self.trace_cache.insert(segment)
        self.finalize_reasons[reason] += 1
        self.segments_built += 1

    def _build_segment(self, slots: List[_Slot],
                       reason: FinalizeReason) -> TraceSegment:
        instructions = [inst for inst, _dir, _promoted in slots]
        branches = [
            SegmentBranch(position=i, direction=direction, promoted=promoted)
            for i, (inst, direction, promoted) in enumerate(slots)
            if inst.op.is_cond_branch
        ]
        # Successor of the whole segment along its embedded path, computed
        # directly from the last slot (cheaper than the generic
        # TraceSegment walk, which re-derives each branch's direction).
        last_inst, last_dir, _last_promoted = slots[-1]
        last_op = last_inst.op
        if last_op.is_cond_branch:
            next_addr = last_inst.target if last_dir else last_inst.fall_through
        elif last_op.is_direct_control:  # JMP / CALL
            next_addr = last_inst.target
        elif last_op.is_indirect_control:
            next_addr = -1  # not statically known; segment ends here
        else:
            next_addr = last_inst.fall_through
        segment = TraceSegment(
            start_addr=instructions[0].addr,
            instructions=instructions,
            branches=branches,
            finalize_reason=reason,
            next_addr=next_addr,
        )
        if VALIDATE_SEGMENTS:
            segment.validate()
        return segment


# ----- frozen copy of repro.trace.bias_table -----

@dataclass
class BiasEntry:
    tag: int
    direction: bool       # previous outcome
    count: int            # consecutive occurrences of ``direction``
    promoted: bool = False
    promoted_dir: bool = False


class BranchBiasTable:
    """Direct-mapped, tagged table of :class:`BiasEntry` (default 8K)."""

    def __init__(self, entries: int = 8192, threshold: int = 64, counter_bits: int = 10):
        if entries <= 0:
            raise ValueError("entries must be positive")
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.entries = entries
        self.threshold = threshold
        self.count_cap = (1 << counter_bits) - 1
        if self.count_cap < threshold:
            raise ValueError("counter too narrow for threshold")
        self._table: List[Optional[BiasEntry]] = [None] * entries
        self.promotions = 0
        self.demotions = 0

    def _slot(self, pc: int) -> int:
        return pc % self.entries

    def lookup(self, pc: int) -> Optional[BiasEntry]:
        entry = self._table[self._slot(pc)]
        if entry is not None and entry.tag == pc:
            return entry
        return None

    def update(self, pc: int, taken: bool) -> BiasEntry:
        """Record a retired outcome; returns the (possibly new) entry."""
        slot = self._slot(pc)
        entry = self._table[slot]
        if entry is None or entry.tag != pc:
            # Allocate, evicting any conflicting branch.  The evicted branch
            # loses its promoted status (a future bias-table miss demotes).
            entry = BiasEntry(tag=pc, direction=taken, count=1)
            self._table[slot] = entry
            return entry
        if taken == entry.direction:
            if entry.count < self.count_cap:
                entry.count += 1
        else:
            entry.direction = taken
            entry.count = 1
        self._apply_promotion_rules(entry)
        return entry

    def _apply_promotion_rules(self, entry: BiasEntry) -> None:
        if not entry.promoted:
            if entry.count >= self.threshold:
                entry.promoted = True
                entry.promoted_dir = entry.direction
                self.promotions += 1
            return
        # Promoted: demote on >= 2 consecutive outcomes against the
        # promoted direction.
        if entry.direction != entry.promoted_dir and entry.count >= 2:
            entry.promoted = False
            self.demotions += 1
            # The run in the new direction may itself qualify immediately.
            if entry.count >= self.threshold:
                entry.promoted = True
                entry.promoted_dir = entry.direction
                self.promotions += 1

    def is_promoted(self, pc: int) -> bool:
        entry = self.lookup(pc)
        return entry is not None and entry.promoted

    def promoted_direction(self, pc: int) -> Optional[bool]:
        entry = self.lookup(pc)
        if entry is not None and entry.promoted:
            return entry.promoted_dir
        return None
