"""The branch bias table: detection, promotion and demotion (paper Fig. 5).

Each entry records a branch's previous outcome and the number of
consecutive times it has repeated, plus the promotion state machine:

* when the consecutive-outcome count reaches the threshold, the branch is
  *promoted* in that direction — the fill unit will embed it with a static
  prediction;
* a promoted branch is *demoted* when there are two or more consecutive
  outcomes opposite its promoted direction, or when its entry misses in
  the (tagged) table.  A single opposite outcome — e.g. the final
  iteration of a loop — does not demote.

The table is stored as parallel flat arrays (tag list plus ``array('l')``
counters and bytearrays for the direction/promotion bits) rather than a
list of entry objects: :meth:`update_fast` runs once per retired
conditional branch, and indexed array reads/writes avoid both the
per-entry allocation and the attribute traffic of the object layout.
:class:`BiasEntry` remains the inspection API — :meth:`lookup` and
:meth:`update` materialize one on demand as a value snapshot of the
addressed slot.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Optional


@dataclass
class BiasEntry:
    """Value snapshot of one bias-table slot (see module docstring)."""

    tag: int
    direction: bool       # previous outcome
    count: int            # consecutive occurrences of ``direction``
    promoted: bool = False
    promoted_dir: bool = False


class BranchBiasTable:
    """Direct-mapped, tagged table of bias entries (default 8K).

    Layout: ``_tags[slot]`` holds the full PC (−1 = empty), ``_counts`` the
    consecutive-outcome counter (an ``array('l')`` — counts exceed one byte
    at the paper's 10-bit counter width), and ``_dirs``/``_promoted``/
    ``_promoted_dirs`` one byte each for the single-bit fields.  A slot is
    addressed by ``pc % entries`` exactly as the object-based layout did.
    """

    def __init__(self, entries: int = 8192, threshold: int = 64, counter_bits: int = 10):
        if entries <= 0:
            raise ValueError("entries must be positive")
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.entries = entries
        self.threshold = threshold
        self.count_cap = (1 << counter_bits) - 1
        if self.count_cap < threshold:
            raise ValueError("counter too narrow for threshold")
        self._tags = [-1] * entries
        self._dirs = bytearray(entries)
        self._counts = array("l", [0]) * entries
        self._promoted = bytearray(entries)
        self._promoted_dirs = bytearray(entries)
        self.promotions = 0
        self.demotions = 0
        # Structural self-checks, armed at construction: a True return
        # from update_fast promises the fill unit that the slot really
        # is promoted in the retired direction.  The checked wrapper is
        # bound as an instance attribute only when armed, so the off
        # path keeps the bare method — zero added cost per branch.
        from repro import validate
        if validate.invariants_armed():
            self.update_fast = self._update_fast_checked

    def _slot(self, pc: int) -> int:
        return pc % self.entries

    def _entry_view(self, slot: int) -> BiasEntry:
        return BiasEntry(
            tag=self._tags[slot],
            direction=bool(self._dirs[slot]),
            count=self._counts[slot],
            promoted=bool(self._promoted[slot]),
            promoted_dir=bool(self._promoted_dirs[slot]),
        )

    def lookup(self, pc: int) -> Optional[BiasEntry]:
        slot = pc % self.entries
        if self._tags[slot] == pc:
            return self._entry_view(slot)
        return None

    def update(self, pc: int, taken: bool) -> BiasEntry:
        """Record a retired outcome; returns a snapshot of the entry."""
        self.update_fast(pc, taken)
        return self._entry_view(pc % self.entries)

    def update_fast(self, pc: int, taken: bool) -> bool:
        """Record a retired outcome; True iff the branch retires promoted.

        The return value is exactly the fill unit's question: *is this
        branch promoted in the direction it just went?*  One array-indexed
        state-machine step, no entry object.
        """
        slot = pc % self.entries
        t = 1 if taken else 0
        tags = self._tags
        counts = self._counts
        dirs = self._dirs
        if tags[slot] != pc:
            # Allocate, evicting any conflicting branch.  The evicted branch
            # loses its promoted status (a future bias-table miss demotes).
            tags[slot] = pc
            dirs[slot] = t
            counts[slot] = 1
            self._promoted[slot] = 0
            self._promoted_dirs[slot] = 0
            return False
        if t == dirs[slot]:
            count = counts[slot]
            if count < self.count_cap:
                counts[slot] = count = count + 1
        else:
            dirs[slot] = t
            counts[slot] = count = 1
        promoted = self._promoted
        if not promoted[slot]:
            if count >= self.threshold:
                promoted[slot] = 1
                self._promoted_dirs[slot] = t
                self.promotions += 1
                return True
            return False
        # Promoted: demote on >= 2 consecutive outcomes against the
        # promoted direction.
        if t != self._promoted_dirs[slot]:
            if count >= 2:
                promoted[slot] = 0
                self.demotions += 1
                # The run in the new direction may itself qualify immediately.
                if count >= self.threshold:
                    promoted[slot] = 1
                    self._promoted_dirs[slot] = t
                    self.promotions += 1
                    return True
            return False
        return True

    def _update_fast_checked(self, pc: int, taken: bool) -> bool:
        """:meth:`update_fast` plus the promoted-consistency invariant."""
        promoted = BranchBiasTable.update_fast(self, pc, taken)
        slot = pc % self.entries
        if promoted and not (self._tags[slot] == pc
                             and self._promoted[slot]
                             and bool(self._promoted_dirs[slot]) == taken):
            from repro.validate.errors import InvariantError
            raise InvariantError(
                f"bias table promoted branch {pc:#x} inconsistently: "
                f"entry={self._entry_view(slot)!r} taken={taken}")
        return promoted

    def is_promoted(self, pc: int) -> bool:
        slot = pc % self.entries
        return self._tags[slot] == pc and bool(self._promoted[slot])

    def promoted_direction(self, pc: int) -> Optional[bool]:
        slot = pc % self.entries
        if self._tags[slot] == pc and self._promoted[slot]:
            return bool(self._promoted_dirs[slot])
        return None
