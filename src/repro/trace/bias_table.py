"""The branch bias table: detection, promotion and demotion (paper Fig. 5).

Each entry records a branch's previous outcome and the number of
consecutive times it has repeated, plus the promotion state machine:

* when the consecutive-outcome count reaches the threshold, the branch is
  *promoted* in that direction — the fill unit will embed it with a static
  prediction;
* a promoted branch is *demoted* when there are two or more consecutive
  outcomes opposite its promoted direction, or when its entry misses in
  the (tagged) table.  A single opposite outcome — e.g. the final
  iteration of a loop — does not demote.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class BiasEntry:
    tag: int
    direction: bool       # previous outcome
    count: int            # consecutive occurrences of ``direction``
    promoted: bool = False
    promoted_dir: bool = False


class BranchBiasTable:
    """Direct-mapped, tagged table of :class:`BiasEntry` (default 8K)."""

    def __init__(self, entries: int = 8192, threshold: int = 64, counter_bits: int = 10):
        if entries <= 0:
            raise ValueError("entries must be positive")
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.entries = entries
        self.threshold = threshold
        self.count_cap = (1 << counter_bits) - 1
        if self.count_cap < threshold:
            raise ValueError("counter too narrow for threshold")
        self._table: List[Optional[BiasEntry]] = [None] * entries
        self.promotions = 0
        self.demotions = 0

    def _slot(self, pc: int) -> int:
        return pc % self.entries

    def lookup(self, pc: int) -> Optional[BiasEntry]:
        entry = self._table[self._slot(pc)]
        if entry is not None and entry.tag == pc:
            return entry
        return None

    def update(self, pc: int, taken: bool) -> BiasEntry:
        """Record a retired outcome; returns the (possibly new) entry."""
        slot = self._slot(pc)
        entry = self._table[slot]
        if entry is None or entry.tag != pc:
            # Allocate, evicting any conflicting branch.  The evicted branch
            # loses its promoted status (a future bias-table miss demotes).
            entry = BiasEntry(tag=pc, direction=taken, count=1)
            self._table[slot] = entry
            return entry
        if taken == entry.direction:
            if entry.count < self.count_cap:
                entry.count += 1
        else:
            entry.direction = taken
            entry.count = 1
        self._apply_promotion_rules(entry)
        return entry

    def _apply_promotion_rules(self, entry: BiasEntry) -> None:
        if not entry.promoted:
            if entry.count >= self.threshold:
                entry.promoted = True
                entry.promoted_dir = entry.direction
                self.promotions += 1
            return
        # Promoted: demote on >= 2 consecutive outcomes against the
        # promoted direction.
        if entry.direction != entry.promoted_dir and entry.count >= 2:
            entry.promoted = False
            self.demotions += 1
            # The run in the new direction may itself qualify immediately.
            if entry.count >= self.threshold:
                entry.promoted = True
                entry.promoted_dir = entry.direction
                self.promotions += 1

    def is_promoted(self, pc: int) -> bool:
        entry = self.lookup(pc)
        return entry is not None and entry.promoted

    def promoted_direction(self, pc: int) -> Optional[bool]:
        entry = self.lookup(pc)
        if entry is not None and entry.promoted:
            return entry.promoted_dir
        return None
