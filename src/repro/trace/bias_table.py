"""The branch bias table: detection, promotion and demotion (paper Fig. 5).

Each entry records a branch's previous outcome and the number of
consecutive times it has repeated, plus the promotion state machine:

* when the consecutive-outcome count reaches the threshold, the branch is
  *promoted* in that direction — the fill unit will embed it with a static
  prediction;
* a promoted branch is *demoted* when there are two or more consecutive
  outcomes opposite its promoted direction, or when its entry misses in
  the (tagged) table.  A single opposite outcome — e.g. the final
  iteration of a loop — does not demote.

The table is stored as parallel flat arrays (tag list plus ``array('l')``
counters and bytearrays for the direction/promotion bits) rather than a
list of entry objects: :meth:`update_fast` runs once per retired
conditional branch, and indexed array reads/writes avoid both the
per-entry allocation and the attribute traffic of the object layout.
:class:`BiasEntry` remains the inspection API — :meth:`lookup` and
:meth:`update` materialize one on demand as a value snapshot of the
addressed slot.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Optional


@dataclass
class BiasEntry:
    """Value snapshot of one bias-table slot (see module docstring)."""

    tag: int
    direction: bool       # previous outcome
    count: int            # consecutive occurrences of ``direction``
    promoted: bool = False
    promoted_dir: bool = False


class BranchBiasTable:
    """Direct-mapped, tagged table of bias entries (default 8K).

    Layout: ``_tags[slot]`` holds the full PC (−1 = empty), ``_counts`` the
    consecutive-outcome counter (an ``array('l')`` — counts exceed one byte
    at the paper's 10-bit counter width), and ``_dirs``/``_promoted``/
    ``_promoted_dirs`` one byte each for the single-bit fields.  A slot is
    addressed by ``pc % entries`` exactly as the object-based layout did.
    """

    def __init__(self, entries: int = 8192, threshold: int = 64, counter_bits: int = 10):
        if entries <= 0:
            raise ValueError("entries must be positive")
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.entries = entries
        self.threshold = threshold
        self.count_cap = (1 << counter_bits) - 1
        if self.count_cap < threshold:
            raise ValueError("counter too narrow for threshold")
        self._tags = [-1] * entries
        self._dirs = bytearray(entries)
        self._counts = array("l", [0]) * entries
        self._promoted = bytearray(entries)
        self._promoted_dirs = bytearray(entries)
        self.promotions = 0
        self.demotions = 0
        # Structural self-checks, armed at construction: a True return
        # from update_fast promises the fill unit that the slot really
        # is promoted in the retired direction.  The checked wrapper is
        # bound as an instance attribute only when armed, so the off
        # path keeps the bare method — zero added cost per branch.
        from repro import validate
        if validate.invariants_armed():
            self.update_fast = self._update_fast_checked

    def _slot(self, pc: int) -> int:
        return pc % self.entries

    def _entry_view(self, slot: int) -> BiasEntry:
        return BiasEntry(
            tag=self._tags[slot],
            direction=bool(self._dirs[slot]),
            count=self._counts[slot],
            promoted=bool(self._promoted[slot]),
            promoted_dir=bool(self._promoted_dirs[slot]),
        )

    def lookup(self, pc: int) -> Optional[BiasEntry]:
        slot = pc % self.entries
        if self._tags[slot] == pc:
            return self._entry_view(slot)
        return None

    def update(self, pc: int, taken: bool) -> BiasEntry:
        """Record a retired outcome; returns a snapshot of the entry."""
        self.update_fast(pc, taken)
        return self._entry_view(pc % self.entries)

    def update_fast(self, pc: int, taken: bool) -> bool:
        """Record a retired outcome; True iff the branch retires promoted.

        The return value is exactly the fill unit's question: *is this
        branch promoted in the direction it just went?*  One array-indexed
        state-machine step, no entry object.
        """
        slot = pc % self.entries
        t = 1 if taken else 0
        tags = self._tags
        counts = self._counts
        dirs = self._dirs
        if tags[slot] != pc:
            # Allocate, evicting any conflicting branch.  The evicted branch
            # loses its promoted status (a future bias-table miss demotes).
            tags[slot] = pc
            dirs[slot] = t
            counts[slot] = 1
            self._promoted[slot] = 0
            self._promoted_dirs[slot] = 0
            return False
        if t == dirs[slot]:
            count = counts[slot]
            if count < self.count_cap:
                counts[slot] = count = count + 1
        else:
            dirs[slot] = t
            counts[slot] = count = 1
        promoted = self._promoted
        if not promoted[slot]:
            if count >= self.threshold:
                promoted[slot] = 1
                self._promoted_dirs[slot] = t
                self.promotions += 1
                return True
            return False
        # Promoted: demote on >= 2 consecutive outcomes against the
        # promoted direction.
        if t != self._promoted_dirs[slot]:
            if count >= 2:
                promoted[slot] = 0
                self.demotions += 1
                # The run in the new direction may itself qualify immediately.
                if count >= self.threshold:
                    promoted[slot] = 1
                    self._promoted_dirs[slot] = t
                    self.promotions += 1
                    return True
            return False
        return True

    def retire_bulk(self, pcs, takens) -> bytes:
        """Retire a whole column of conditional-branch outcomes at once.

        ``pcs``/``takens`` are parallel sequences (lists or numpy
        arrays) in retire order; the return value is one byte per
        element — exactly what :meth:`update_fast` would have returned
        for it — and the table state and promotion/demotion counters
        finish byte-identical to the sequential loop.

        Vectorized strategy: slots are independent, so a stable sort by
        slot groups each slot's outcome sequence contiguously *in retire
        order*; within a group, maximal same-``(pc, taken)`` runs
        collapse to O(1) state-machine advances (:meth:`_advance_run`) —
        the promotion counter semantics are run-structured, so a biased
        stream costs a handful of run steps per site instead of one
        Python call per dynamic branch.  Falls back to the sequential
        loop without numpy/``REPRO_VECTOR`` or for tiny inputs.
        """
        from repro.experiments import columns

        n = len(pcs)
        if n < 16 or not columns.enabled():
            out = bytearray(n)
            update = self.update_fast
            for i, (pc, taken) in enumerate(zip(pcs, takens)):
                if update(int(pc), bool(taken)):
                    out[i] = 1
            return bytes(out)
        np = columns.np
        pcs_a = np.asarray(pcs, dtype=np.int64)
        t_a = np.asarray(takens, dtype=np.uint8)
        # Same pc -> same slot, so runs only break where pc or direction
        # changes; the stable slot sort keeps each slot's retire order.
        order = np.argsort(pcs_a % self.entries, kind="stable")
        s_pcs = pcs_a[order]
        s_t = t_a[order]
        change = np.empty(n, dtype=bool)
        change[0] = True
        np.not_equal(s_pcs[1:], s_pcs[:-1], out=change[1:])
        change[1:] |= s_t[1:] != s_t[:-1]
        starts = np.flatnonzero(change)
        ends = np.append(starts[1:], n)
        flags_sorted = np.zeros(n, dtype=np.uint8)
        advance = self._advance_run
        for start, end in zip(starts.tolist(), ends.tolist()):
            not_promoted = advance(int(s_pcs[start]), int(s_t[start]),
                                   end - start)
            if start + not_promoted < end:
                flags_sorted[start + not_promoted:end] = 1
        out = np.zeros(n, dtype=np.uint8)
        out[order] = flags_sorted
        return out.tobytes()

    def _advance_run(self, pc: int, t: int, length: int) -> int:
        """Advance one slot through ``length`` retires of ``(pc, t)``.

        Returns how many of the run's retires came back *not* promoted;
        within a constant-``(pc, t)`` run the :meth:`update_fast` return
        values are always a (possibly empty) False prefix followed by
        Trues — promotion in direction ``t`` can only latch, never
        unlatch, while ``t`` keeps retiring.  Transition events (alloc,
        direction flip, demotion) take exact scalar steps; the two
        steady states (counting up not-promoted, or promoted in
        direction ``t``) collapse closed-form, using the state-machine
        invariant that a not-promoted resident entry counting in its own
        direction promotes at the first retire that reaches the
        threshold.
        """
        slot = pc % self.entries
        tags = self._tags
        counts = self._counts
        dirs = self._dirs
        promoted = self._promoted
        pdirs = self._promoted_dirs
        taken = bool(t)
        update = self.update_fast  # honors the checked wrapper when armed
        done = 0
        not_promoted = 0
        while done < length:
            if tags[slot] == pc and dirs[slot] == t:
                remaining = length - done
                if not promoted[slot]:
                    # Counting up toward promotion.  need = index (1-based
                    # within the remainder) of the first promoting retire;
                    # the max(1, ...) covers threshold=1 right after an
                    # allocation, where the count already sits at the
                    # threshold but the allocating retire returned False.
                    need = self.threshold - counts[slot]
                    if need < 1:
                        need = 1
                    if remaining < need:
                        counts[slot] += remaining
                        return not_promoted + remaining
                    count = counts[slot] + remaining
                    counts[slot] = count if count < self.count_cap \
                        else self.count_cap
                    promoted[slot] = 1
                    pdirs[slot] = t
                    self.promotions += 1
                    return not_promoted + need - 1
                if pdirs[slot] == t:
                    # Steady promoted state: every retire comes back True.
                    count = counts[slot] + remaining
                    counts[slot] = count if count < self.count_cap \
                        else self.count_cap
                    return not_promoted
            # Transition event (allocation, flip, demotion bookkeeping):
            # one exact scalar step; a steady state follows within <= 2.
            if not update(pc, taken):
                not_promoted += 1
            done += 1
        return not_promoted

    def _update_fast_checked(self, pc: int, taken: bool) -> bool:
        """:meth:`update_fast` plus the promoted-consistency invariant."""
        promoted = BranchBiasTable.update_fast(self, pc, taken)
        slot = pc % self.entries
        if promoted and not (self._tags[slot] == pc
                             and self._promoted[slot]
                             and bool(self._promoted_dirs[slot]) == taken):
            from repro.validate.errors import InvariantError
            raise InvariantError(
                f"bias table promoted branch {pc:#x} inconsistently: "
                f"entry={self._entry_view(slot)!r} taken={taken}")
        return promoted

    def is_promoted(self, pc: int) -> bool:
        slot = pc % self.entries
        return self._tags[slot] == pc and bool(self._promoted[slot])

    def promoted_direction(self, pc: int) -> Optional[bool]:
        slot = pc % self.entries
        if self._tags[slot] == pc and self._promoted[slot]:
            return bool(self._promoted_dirs[slot])
        return None
