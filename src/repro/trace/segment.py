"""Trace segments: the unit stored in, and supplied by, the trace cache."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.isa.instruction import Instruction

#: Maximum instructions per trace cache line.
MAX_SEGMENT_INSTRUCTIONS = 16

#: Maximum *non-promoted* conditional branches per line (one per prediction
#: the multiple branch predictor can supply).
MAX_SEGMENT_BRANCHES = 3


class FinalizeReason(enum.Enum):
    """Why the fill unit finalized a segment.

    These map one-to-one onto the fetch-termination categories of the
    paper's Figures 4 and 6 (the front end adds the fetch-time categories
    PartialMatch, MispredBR and Icache).
    """

    MAX_SIZE = "max_size"            # 16 instructions collected
    MAX_BRANCHES = "max_branches"    # a 4th dynamic branch would not fit
    ATOMIC_BLOCK = "atomic_block"    # next block didn't fit and blocks are atomic
    SEG_ENDER = "ret_indir_trap"     # return / indirect jump / trap
    RECOVERY = "recovery"            # pending segment cut by a pipeline flush
    FLUSH = "flush"                  # pipeline drain at end of run


@dataclass(frozen=True)
class SegmentBranch:
    """A conditional branch embedded in a segment.

    Attributes:
        position: index within the segment's instruction list.
        direction: the direction the trace embeds (the retired outcome when
            the segment was built).
        promoted: True when the fill unit promoted this branch; promoted
            branches carry their static prediction in ``direction`` and
            consume no dynamic-predictor bandwidth.
    """

    position: int
    direction: bool
    promoted: bool


@dataclass
class TraceSegment:
    """One trace cache line's worth of logically contiguous instructions."""

    start_addr: int
    instructions: List[Instruction] = field(default_factory=list)
    branches: List[SegmentBranch] = field(default_factory=list)
    finalize_reason: FinalizeReason = FinalizeReason.FLUSH
    #: Address the fetch continues at when every embedded branch follows the
    #: segment's path.
    next_addr: int = 0
    #: position -> SegmentBranch, built on first use.  The fetch engine
    #: probes every branch position on every hit, so the linear scan this
    #: replaces dominated segment-fetch time.
    _branch_map: Optional[dict] = field(default=None, init=False, repr=False, compare=False)
    #: per-instruction ``(inst, branch, call_fall_through)`` walk list,
    #: built on first fetch (see :meth:`fetch_slots`).
    _fetch_slots: Optional[list] = field(default=None, init=False, repr=False, compare=False)
    #: event-compressed fetch walk, built on first fetch (see
    #: :meth:`fetch_plan`).
    _fetch_plan: Optional[tuple] = field(default=None, init=False, repr=False, compare=False)
    #: predicted-pattern -> compiled fetch variant (see
    #: :func:`repro.frontend.fetch.compile_variant`); populated lazily by
    #: the fast fetch engine, never read by the reference stack.
    _variants: Optional[dict] = field(default=None, init=False, repr=False, compare=False)
    #: mask selecting the predictor-pattern bits this segment's dynamic
    #: branches actually consume: ``(1 << num_dynamic) - 1``.
    _pattern_mask: int = field(default=-1, init=False, repr=False, compare=False)
    #: the pattern whose bit ``k`` is the embedded direction of the
    #: ``k``-th dynamic branch — the key of the variant that follows the
    #: trace path end to end (valid once ``_pattern_mask`` is computed).
    _trace_key: int = field(default=0, init=False, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def dynamic_branches(self) -> List[SegmentBranch]:
        """Branches needing a prediction (non-promoted), in fetch order."""
        return [b for b in self.branches if not b.promoted]

    @property
    def promoted_branches(self) -> List[SegmentBranch]:
        return [b for b in self.branches if b.promoted]

    @property
    def num_dynamic_branches(self) -> int:
        return sum(1 for b in self.branches if not b.promoted)

    def branch_at(self, position: int) -> Optional[SegmentBranch]:
        bmap = self._branch_map
        if bmap is None or len(bmap) != len(self.branches):
            bmap = {b.position: b for b in self.branches}
            self._branch_map = bmap
        return bmap.get(position)

    def fetch_slots(self) -> list:
        """Cached per-instruction walk list for the fetch engine.

        Each element is ``(inst, branch, call_fall_through)``: ``branch``
        is the :class:`SegmentBranch` when ``inst`` is a conditional
        branch (else None), ``call_fall_through`` is ``inst.fall_through``
        when ``inst`` is a CALL (else None).  The fetch engine walks every
        resident segment instruction on every trace-cache hit; hoisting
        the opcode classification here turns that walk into tuple loads.
        """
        slots = self._fetch_slots
        if slots is None:
            slots = []
            for pos, inst in enumerate(self.instructions):
                op = inst.op
                branch = self.branch_at(pos) if op.is_cond_branch else None
                call_ft = inst.fall_through if op.is_call else None
                slots.append((inst, branch, call_ft))
            self._fetch_slots = slots
        return slots

    def fetch_plan(self) -> tuple:
        """Cached event-compressed walk for the fetch engine.

        Segments are immutable once built (``SegmentBranch`` is frozen and
        the fill unit never edits a finalized segment), so everything about
        a segment fetch that does not depend on live predictor/RAS state
        can be precomputed once: the control *events* (calls and branches,
        in fetch order) and the per-position direction/promotion templates
        along the segment's embedded path.

        Returns ``(events, dirs, promoted, promoted_addrs, tail)``:

        * ``events`` — list of ``(kind, position, payload)``; kind 0 is a
          call (payload = fall-through to push on the RAS), kind 1 a
          promoted branch (payload = its static direction), kind 2 a
          dynamic branch (payload = ``(embedded_direction, addr)``).
        * ``dirs`` / ``promoted`` — full per-position direction and
          promotion templates when the fetch follows the embedded path.
        * ``promoted_addrs`` — frozenset of promoted-branch addresses, for
          the fault-override disjointness test.
        * ``tail`` — how the segment ends: 0 follows ``next_addr``, 1 RET,
          2 indirect jump, 3 trap/halt.
        """
        plan = self._fetch_plan
        if plan is None:
            n = len(self.instructions)
            dirs: List[Optional[bool]] = [None] * n
            promoted = [False] * n
            events = []
            promoted_addrs = []
            for pos, inst in enumerate(self.instructions):
                op = inst.op
                if op.is_cond_branch:
                    branch = self.branch_at(pos)
                    dirs[pos] = branch.direction
                    if branch.promoted:
                        promoted[pos] = True
                        promoted_addrs.append(inst.addr)
                        events.append((1, pos, branch.direction))
                    else:
                        events.append((2, pos, (branch.direction, inst.addr)))
                elif op.is_call:
                    events.append((0, pos, inst.fall_through))
            last_op = self.instructions[-1].op
            if last_op.is_indirect_control:
                tail = 1 if last_op.mnemonic == "RET" else 2
            elif last_op.is_serializing or last_op.mnemonic == "HALT":
                tail = 3
            else:
                tail = 0
            plan = (events, dirs, promoted, frozenset(promoted_addrs), tail)
            self._fetch_plan = plan
        return plan

    def block_boundaries(self) -> List[int]:
        """End positions (inclusive) of each fetch block within the segment.

        Blocks are delimited by *non-promoted* conditional branches —
        promoted branches do not terminate an execution atomic unit.  The
        final block runs to the end of the segment.
        """
        ends = [b.position for b in self.branches if not b.promoted]
        last = len(self.instructions) - 1
        if not ends or ends[-1] != last:
            ends.append(last)
        return ends

    def validate(self) -> None:
        """Check the structural invariants the fill unit must maintain."""
        if not self.instructions:
            raise ValueError("empty segment")
        if len(self.instructions) > MAX_SEGMENT_INSTRUCTIONS:
            raise ValueError(f"segment of {len(self.instructions)} instructions")
        if self.instructions[0].addr != self.start_addr:
            raise ValueError("start_addr does not match first instruction")
        if self.num_dynamic_branches > MAX_SEGMENT_BRANCHES:
            raise ValueError(f"{self.num_dynamic_branches} dynamic branches in one segment")
        positions = {b.position for b in self.branches}
        if len(positions) != len(self.branches):
            raise ValueError("duplicate branch positions")
        for branch in self.branches:
            inst = self.instructions[branch.position]
            if not inst.op.is_cond_branch:
                raise ValueError(f"branch record at non-branch {inst}")
        # Logical contiguity: each instruction's successor along the
        # embedded path is the next instruction in the segment.
        for i, inst in enumerate(self.instructions[:-1]):
            expected = self._successor(i)
            if expected is not None and self.instructions[i + 1].addr != expected:
                raise ValueError(
                    f"discontiguous segment at position {i}: {inst} -> "
                    f"{self.instructions[i + 1].addr}, expected {expected}"
                )

    def _successor(self, position: int) -> Optional[int]:
        """Address following instruction ``position`` along the embedded path."""
        inst = self.instructions[position]
        if inst.op.is_cond_branch:
            branch = self.branch_at(position)
            if branch is None:
                raise ValueError(f"unrecorded branch at position {position}")
            return inst.target if branch.direction else inst.fall_through
        if inst.op.is_direct_control:  # JMP / CALL
            return inst.target
        if inst.op.is_indirect_control:
            return None  # not statically known; segment must end here
        return inst.fall_through

    def compute_next_addr(self) -> Optional[int]:
        """Successor of the whole segment along its embedded path."""
        return self._successor(len(self.instructions) - 1)
