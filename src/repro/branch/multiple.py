"""Multiple branch predictors: up to three predictions per cycle.

Two organizations, both from the paper:

* :class:`MultipleBranchPredictor` — the baseline structure (their
  Figure 3): a gshare-indexed PHT of 16K rows, each row holding seven 2-bit
  counters arranged as a binary tree.  Counter 0 predicts the first branch
  (B0); counters 1-2 predict B1 conditioned on B0's direction; counters 3-6
  predict B2 conditioned on (B0, B1).  32KB of storage.

* :class:`SplitMultiplePredictor` — the restructured variant the paper
  proposes once branch promotion has made second and third predictions
  rare: three separate gshare tables of 64K, 16K and 8K 2-bit counters for
  B0, B1 and B2 respectively (24KB), spending most of the storage on the
  prediction that nearly every fetch needs.

Both expose two query shapes over the same storage: :meth:`predict`
returns a :class:`MultiPrediction` (the inspectable API), and
:meth:`predict_pattern` returns the three direction bits packed into one
int plus the raw table indices — the form the compiled-fetch-plan engine
consumes, where the packed pattern directly keys a segment's precompiled
fetch variant.
"""

from __future__ import annotations

from typing import NamedTuple, Sequence, Tuple

from repro.branch.counters import SaturatingCounters
from repro.branch.gshare import GsharePredictor

#: Tree offsets: counter index of B_i given the actual/predicted outcomes of
#: earlier branches in the same fetch.
def _tree_counter_index(position: int, path: Tuple[bool, ...]) -> int:
    if position == 0:
        return 0
    if position == 1:
        return 1 + int(path[0])
    if position == 2:
        return 3 + (int(path[0]) << 1 | int(path[1]))
    raise ValueError(f"position {position} out of range (max 3 predictions/cycle)")


class MultiPrediction(NamedTuple):
    """Up to three predictions plus the state needed to update later.

    ``indices[i]`` is the table/row index that produced prediction ``i``;
    pass it back to :meth:`update` with the branch's position and the
    *actual* outcomes of earlier same-fetch branches.  A NamedTuple — one
    is built per trace-cache fetch, so allocation cost matters.
    """

    taken: Tuple[bool, bool, bool]
    indices: Tuple[int, int, int]


class MultipleBranchPredictor:
    """The 7-counter-per-row gshare multiple branch predictor."""

    MAX_PREDICTIONS = 3

    def __init__(self, rows_bits: int = 14, history_bits: int | None = None):
        if history_bits is None:
            history_bits = rows_bits
        self.rows_bits = rows_bits
        self.history_bits = history_bits
        self.rows = 1 << rows_bits
        self._history_mask = (1 << history_bits) - 1
        self._row_mask = self.rows - 1
        # Flat bytearray of rows x 7 counters: predict() runs once per
        # fetch, and byte reads sidestep numpy's per-element scalar boxing.
        self._table = bytearray(b"\x01" * (self.rows * 7))

    def row_index(self, pc: int, history: int) -> int:
        return (pc ^ (history & self._history_mask)) & self._row_mask

    def predict(self, pc: int, history: int) -> MultiPrediction:
        """Walk the counter tree using the predictions themselves."""
        row = (pc ^ (history & self._history_mask)) & self._row_mask
        table = self._table
        base = row * 7
        b0 = table[base] >= 2
        b1 = table[base + 1 + b0] >= 2
        b2 = table[base + 3 + (b0 << 1 | b1)] >= 2
        return MultiPrediction(taken=(b0, b1, b2), indices=(row, row, row))

    def predict_pattern(self, pc: int, history: int):
        """The three tree predictions as ``(pattern, i0, i1, i2)``.

        ``pattern`` packs B0 into bit 0, B1 into bit 1, B2 into bit 2 —
        the key under which the fetch engine caches a segment's compiled
        fetch variant.  Identical table walk to :meth:`predict`.
        """
        row = (pc ^ (history & self._history_mask)) & self._row_mask
        table = self._table
        base = row * 7
        b0 = table[base] >= 2
        b1 = table[base + 1 + b0] >= 2
        b2 = table[base + 3 + (b0 << 1 | b1)] >= 2
        return b0 | (b1 << 1) | (b2 << 2), row, row, row

    def update(self, index: int, position: int, path: Tuple[bool, ...], taken: bool) -> None:
        """Train the counter B_position selected by the actual earlier outcomes."""
        slot = index * 7 + _tree_counter_index(position, path)
        value = self._table[slot]
        if taken:
            if value < 3:
                self._table[slot] = value + 1
        elif value > 0:
            self._table[slot] = value - 1

    def update_batch(self, tokens, metas) -> None:
        """Train one fetch's branches in a single call.

        ``tokens[k]`` is the row index captured at prediction time and
        ``metas[k]`` the compiled plan's ``(path, taken)`` training
        record for position ``k``.  Identical counter movements to
        calling :meth:`update` per branch — the batch exists so the
        fetch-plan retire path pays one Python call per fetch instead of
        one per branch (the tree index and saturation are inlined; a
        numpy scatter would not help at <= 3 counters per fetch, and
        same-row updates within a fetch are order-dependent anyway).
        """
        table = self._table
        for k, (path, taken) in enumerate(metas):
            if k == 0:
                offset = 0
            elif k == 1:
                offset = 1 + int(path[0])
            else:
                offset = 3 + (int(path[0]) << 1 | int(path[1]))
            slot = tokens[k] * 7 + offset
            value = table[slot]
            if taken:
                if value < 3:
                    table[slot] = value + 1
            elif value > 0:
                table[slot] = value - 1

    def storage_bits(self) -> int:
        return self.rows * 7 * 2


class SplitMultiplePredictor:
    """Three separate gshare tables sized 64K/16K/8K counters."""

    MAX_PREDICTIONS = 3

    def __init__(self, table_bits: Sequence[int] = (16, 14, 13), history_bits: int = 14):
        self.tables = [GsharePredictor(history_bits=min(history_bits, bits), table_bits=bits)
                       for bits in table_bits]
        self.history_bits = history_bits
        # Hot-path aliases: (history mask, index mask, raw counters) per
        # table — every index is masked to its table, so the counter read
        # needs no modulo.
        self._fast = [
            ((1 << t.history_bits) - 1, t.index_mask, t.counters._table)
            for t in self.tables
        ]

    def predict(self, pc: int, history: int) -> MultiPrediction:
        (m0, x0, t0), (m1, x1, t1), (m2, x2, t2) = self._fast
        i0 = (pc ^ (history & m0)) & x0
        i1 = (pc ^ (history & m1)) & x1
        i2 = (pc ^ (history & m2)) & x2
        return MultiPrediction(
            taken=(t0[i0] >= 2, t1[i1] >= 2, t2[i2] >= 2),
            indices=(i0, i1, i2),
        )

    def predict_pattern(self, pc: int, history: int):
        """Packed ``(pattern, i0, i1, i2)`` — see
        :meth:`MultipleBranchPredictor.predict_pattern`."""
        (m0, x0, t0), (m1, x1, t1), (m2, x2, t2) = self._fast
        i0 = (pc ^ (history & m0)) & x0
        i1 = (pc ^ (history & m1)) & x1
        i2 = (pc ^ (history & m2)) & x2
        return (
            (t0[i0] >= 2) | ((t1[i1] >= 2) << 1) | ((t2[i2] >= 2) << 2),
            i0, i1, i2,
        )

    def update(self, index: int, position: int, path: Tuple[bool, ...], taken: bool) -> None:
        """``path`` is accepted for interface parity; the split tables
        condition on position only."""
        self.tables[position].update(index, taken)

    def update_batch(self, tokens, metas) -> None:
        """Train one fetch's branches in a single call.

        Position ``k`` trains table ``k`` at the prediction-time index
        ``tokens[k]`` (already masked to the table).  Same counter
        movements as per-branch :meth:`update`; see
        :meth:`MultipleBranchPredictor.update_batch` for why this is a
        batched scalar loop rather than a numpy scatter.
        """
        fast = self._fast
        for k, (_path, taken) in enumerate(metas):
            table = fast[k][2]
            index = tokens[k]
            value = table[index]
            if taken:
                if value < 3:
                    table[index] = value + 1
            elif value > 0:
                table[index] = value - 1

    def storage_bits(self) -> int:
        return sum(table.storage_bits() for table in self.tables)
