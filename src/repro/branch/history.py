"""Global branch history register with checkpoint/repair support."""

from __future__ import annotations


class GlobalHistory:
    """A shift register of branch outcomes, newest in the low bit.

    The fetch engine pushes *predicted* outcomes speculatively so that
    back-to-back fetches index the predictor with up-to-date history; the
    core snapshots the value at each checkpoint and restores it on a
    misprediction, exactly as checkpoint-repair hardware would.

    Promoted-branch outcomes are pushed too: the paper keeps them in the
    global history "to maintain the integrity of the predictor's
    information" even though they no longer update the pattern tables.
    """

    def __init__(self, bits: int):
        if bits <= 0:
            raise ValueError("bits must be positive")
        self.bits = bits
        self.mask = (1 << bits) - 1
        self.value = 0

    def push(self, taken: bool) -> None:
        self.value = ((self.value << 1) | int(taken)) & self.mask

    def push_bits(self, bits: int, count: int) -> None:
        """Shift in ``count`` outcomes at once, oldest in the high bit.

        Equivalent to ``count`` :meth:`push` calls; the compiled-fetch-plan
        engine folds a whole segment's branch outcomes into one shift-OR.
        """
        self.value = ((self.value << count) | bits) & self.mask

    def snapshot(self) -> int:
        return self.value

    def restore(self, snapshot: int) -> None:
        self.value = snapshot & self.mask

    def __index__(self) -> int:
        return self.value
