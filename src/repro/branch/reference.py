"""Frozen reference copy of the seed predictor stack (PR 4 freeze).

This module is a **verbatim concatenation** of the branch-prediction
structures exactly as they stood before the fast front-end rewrite:
:mod:`repro.branch.counters`, :mod:`repro.branch.history`,
:mod:`repro.branch.gshare`, :mod:`repro.branch.pas`,
:mod:`repro.branch.hybrid`, :mod:`repro.branch.multiple`,
:mod:`repro.branch.ras` and :mod:`repro.branch.indirect`.  It exists so
the optimized predictors in those modules can be pinned byte-identical
against known-good behaviour: ``REPRO_FAST_FRONTEND=0`` rebuilds every
front end from these classes (see :mod:`repro.frontend.build`), and
``tests/test_frontend_parity.py`` asserts the two paths train and
predict identically.

Do not optimize or otherwise edit this module; it is the contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

try:  # the frozen stack predates the bytearray layouts and keeps its
    # numpy BHT; the import error is deferred to the one class using it.
    import numpy as np
except ImportError:  # pragma: no cover - no-numpy environments
    np = None




# ----- frozen copy of repro.branch.counters ----------------------


class SaturatingCounters:
    """A table of n-bit saturating counters.

    The canonical 2-bit counter predicts taken when the counter is in its
    upper half (2 or 3), increments on taken and decrements on not-taken,
    saturating at the ends.
    """

    def __init__(self, size: int, bits: int = 2, init: int | None = None):
        if size <= 0:
            raise ValueError("size must be positive")
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self.size = size
        self.bits = bits
        self.max_value = (1 << bits) - 1
        self.threshold = 1 << (bits - 1)
        if init is None:
            init = self.threshold - 1  # weakly not-taken
        if not 0 <= init <= self.max_value:
            raise ValueError(f"init {init} out of range for {bits}-bit counter")
        # A bytearray rather than a numpy array: single-element reads are
        # the predictors' hot path, and bytearray indexing yields a plain
        # int with none of the numpy scalar-boxing overhead.  Counter
        # values are always in [0, max_value] so a byte per entry suffices.
        self._table = bytearray([init]) * size

    def predict(self, index: int) -> bool:
        """Taken when the counter is in its upper half."""
        return self._table[index % self.size] >= self.threshold

    def value(self, index: int) -> int:
        return self._table[index % self.size]

    def update(self, index: int, taken: bool) -> None:
        index %= self.size
        value = self._table[index]
        if taken:
            if value < self.max_value:
                self._table[index] = value + 1
        elif value > 0:
            self._table[index] = value - 1

    def storage_bits(self) -> int:
        """Hardware cost of this table in bits."""
        return self.size * self.bits

    def __len__(self) -> int:
        return self.size


# ----- frozen copy of repro.branch.history -----------------------


class GlobalHistory:
    """A shift register of branch outcomes, newest in the low bit.

    The fetch engine pushes *predicted* outcomes speculatively so that
    back-to-back fetches index the predictor with up-to-date history; the
    core snapshots the value at each checkpoint and restores it on a
    misprediction, exactly as checkpoint-repair hardware would.

    Promoted-branch outcomes are pushed too: the paper keeps them in the
    global history "to maintain the integrity of the predictor's
    information" even though they no longer update the pattern tables.
    """

    def __init__(self, bits: int):
        if bits <= 0:
            raise ValueError("bits must be positive")
        self.bits = bits
        self.mask = (1 << bits) - 1
        self.value = 0

    def push(self, taken: bool) -> None:
        self.value = ((self.value << 1) | int(taken)) & self.mask

    def snapshot(self) -> int:
        return self.value

    def restore(self, snapshot: int) -> None:
        self.value = snapshot & self.mask

    def __index__(self) -> int:
        return self.value


# ----- frozen copy of repro.branch.gshare ------------------------


class GsharePredictor:
    """XOR of PC and global history indexes one 2-bit counter table.

    The predictor does not own the history register — the fetch engine
    maintains one :class:`~repro.branch.history.GlobalHistory` shared by
    every component so checkpoint repair stays consistent.
    """

    def __init__(self, history_bits: int, table_bits: int | None = None):
        if table_bits is None:
            table_bits = history_bits
        if history_bits > table_bits:
            raise ValueError("history must not be wider than the table index")
        self.history_bits = history_bits
        self.table_bits = table_bits
        self.index_mask = (1 << table_bits) - 1
        self.counters = SaturatingCounters(1 << table_bits, bits=2)

    def index(self, pc: int, history: int) -> int:
        return (pc ^ (history & ((1 << self.history_bits) - 1))) & self.index_mask

    def predict(self, pc: int, history: int) -> bool:
        return self.counters.predict(self.index(pc, history))

    def update(self, index: int, taken: bool) -> None:
        """Update using the index captured at prediction time."""
        self.counters.update(index, taken)

    def storage_bits(self) -> int:
        return self.counters.storage_bits()


# ----- frozen copy of repro.branch.pas ---------------------------


class PAsPredictor:
    """Per-address branch history indexing a shared pattern history table.

    The paper's icache configuration uses a PAs component with 15 bits of
    local history and a 4K-entry branch history table.  Local history is
    updated at retire (non-speculatively); this slightly lags fetch, which
    is the standard modeling choice for per-address history and matches a
    retire-updated BHT.
    """

    def __init__(self, history_bits: int = 15, bht_entries: int = 4096):
        if np is None:
            raise RuntimeError(
                "the frozen reference predictor stack requires numpy")
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1
        self.bht_entries = bht_entries
        self._bht = np.zeros(bht_entries, dtype=np.int64)
        self.counters = SaturatingCounters(1 << history_bits, bits=2)

    def _bht_index(self, pc: int) -> int:
        return pc % self.bht_entries

    def index(self, pc: int) -> int:
        """PHT index for this branch (its current local history)."""
        return int(self._bht[self._bht_index(pc)])

    def predict(self, pc: int) -> bool:
        return self.counters.predict(self.index(pc))

    def update(self, pc: int, index: int, taken: bool) -> None:
        """Update PHT at the prediction-time index, then shift local history."""
        self.counters.update(index, taken)
        slot = self._bht_index(pc)
        self._bht[slot] = ((int(self._bht[slot]) << 1) | int(taken)) & self.history_mask

    def storage_bits(self) -> int:
        return self.counters.storage_bits() + self.bht_entries * self.history_bits


# ----- frozen copy of repro.branch.hybrid ------------------------


@dataclass(frozen=True)
class HybridPrediction:
    """A prediction plus everything needed to update at resolve time."""

    taken: bool
    gshare_taken: bool
    pas_taken: bool
    gshare_index: int
    pas_index: int
    selector_index: int


class HybridPredictor:
    """gshare + PAs with a 2-bit chooser per gshare index."""

    def __init__(self, history_bits: int = 15, bht_entries: int = 4096):
        self.gshare = GsharePredictor(history_bits=history_bits)
        self.pas = PAsPredictor(history_bits=history_bits, bht_entries=bht_entries)
        # Selector counter high => trust gshare.
        self.selector = SaturatingCounters(1 << history_bits, bits=2)

    def predict(self, pc: int, history: int) -> HybridPrediction:
        gshare_index = self.gshare.index(pc, history)
        pas_index = self.pas.index(pc)
        gshare_taken = self.gshare.counters.predict(gshare_index)
        pas_taken = self.pas.counters.predict(pas_index)
        use_gshare = self.selector.predict(gshare_index)
        return HybridPrediction(
            taken=gshare_taken if use_gshare else pas_taken,
            gshare_taken=gshare_taken,
            pas_taken=pas_taken,
            gshare_index=gshare_index,
            pas_index=pas_index,
            selector_index=gshare_index,
        )

    def update(self, pc: int, prediction: HybridPrediction, taken: bool) -> None:
        """Update both components and steer the selector toward the one
        that was right (no movement when they agree)."""
        self.gshare.update(prediction.gshare_index, taken)
        self.pas.update(pc, prediction.pas_index, taken)
        gshare_right = prediction.gshare_taken == taken
        pas_right = prediction.pas_taken == taken
        if gshare_right != pas_right:
            self.selector.update(prediction.selector_index, gshare_right)

    def storage_bits(self) -> int:
        return (
            self.gshare.storage_bits()
            + self.pas.storage_bits()
            + self.selector.storage_bits()
        )


# ----- frozen copy of repro.branch.multiple ----------------------


#: Tree offsets: counter index of B_i given the actual/predicted outcomes of
#: earlier branches in the same fetch.
def _tree_counter_index(position: int, path: Tuple[bool, ...]) -> int:
    if position == 0:
        return 0
    if position == 1:
        return 1 + int(path[0])
    if position == 2:
        return 3 + (int(path[0]) << 1 | int(path[1]))
    raise ValueError(f"position {position} out of range (max 3 predictions/cycle)")


@dataclass(frozen=True)
class MultiPrediction:
    """Up to three predictions plus the state needed to update later.

    ``indices[i]`` is the table/row index that produced prediction ``i``;
    pass it back to :meth:`update` with the branch's position and the
    *actual* outcomes of earlier same-fetch branches.
    """

    taken: Tuple[bool, bool, bool]
    indices: Tuple[int, int, int]


class MultipleBranchPredictor:
    """The 7-counter-per-row gshare multiple branch predictor."""

    MAX_PREDICTIONS = 3

    def __init__(self, rows_bits: int = 14, history_bits: int | None = None):
        if history_bits is None:
            history_bits = rows_bits
        self.rows_bits = rows_bits
        self.history_bits = history_bits
        self.rows = 1 << rows_bits
        self._history_mask = (1 << history_bits) - 1
        self._row_mask = self.rows - 1
        # Flat bytearray of rows x 7 counters: predict() runs once per
        # fetch, and byte reads sidestep numpy's per-element scalar boxing.
        self._table = bytearray(b"\x01" * (self.rows * 7))

    def row_index(self, pc: int, history: int) -> int:
        return (pc ^ (history & self._history_mask)) & self._row_mask

    def predict(self, pc: int, history: int) -> MultiPrediction:
        """Walk the counter tree using the predictions themselves."""
        row = (pc ^ (history & self._history_mask)) & self._row_mask
        table = self._table
        base = row * 7
        b0 = table[base] >= 2
        b1 = table[base + 1 + b0] >= 2
        b2 = table[base + 3 + (b0 << 1 | b1)] >= 2
        return MultiPrediction(taken=(b0, b1, b2), indices=(row, row, row))

    def update(self, index: int, position: int, path: Tuple[bool, ...], taken: bool) -> None:
        """Train the counter B_position selected by the actual earlier outcomes."""
        slot = index * 7 + _tree_counter_index(position, path)
        value = self._table[slot]
        if taken:
            if value < 3:
                self._table[slot] = value + 1
        elif value > 0:
            self._table[slot] = value - 1

    def storage_bits(self) -> int:
        return self.rows * 7 * 2


class SplitMultiplePredictor:
    """Three separate gshare tables sized 64K/16K/8K counters."""

    MAX_PREDICTIONS = 3

    def __init__(self, table_bits: Sequence[int] = (16, 14, 13), history_bits: int = 14):
        self.tables = [GsharePredictor(history_bits=min(history_bits, bits), table_bits=bits)
                       for bits in table_bits]
        self.history_bits = history_bits

    def predict(self, pc: int, history: int) -> MultiPrediction:
        taken = []
        indices = []
        for table in self.tables:
            index = table.index(pc, history)
            taken.append(table.counters.predict(index))
            indices.append(index)
        return MultiPrediction(taken=tuple(taken), indices=tuple(indices))

    def update(self, index: int, position: int, path: Tuple[bool, ...], taken: bool) -> None:
        """``path`` is accepted for interface parity; the split tables
        condition on position only."""
        self.tables[position].update(index, taken)

    def storage_bits(self) -> int:
        return sum(table.storage_bits() for table in self.tables)


# ----- frozen copy of repro.branch.ras ---------------------------


class IdealReturnAddressStack:
    """An unbounded, never-corrupted RAS — the paper's model.

    Because it tracks calls/returns of the *fetched* (possibly wrong) path
    with unlimited depth, the only way it could mispredict is wrong-path
    corruption; the paper idealizes that away, and so do we by letting the
    core checkpoint and restore the stack pointer (here: full stack state).
    """

    def __init__(self):
        self._stack: List[int] = []

    def push(self, return_address: int) -> None:
        self._stack.append(return_address)

    def pop(self) -> Optional[int]:
        if self._stack:
            return self._stack.pop()
        return None

    def snapshot(self) -> tuple:
        return tuple(self._stack)

    def restore(self, snapshot: tuple) -> None:
        self._stack = list(snapshot)

    def __len__(self) -> int:
        return len(self._stack)


class ReturnAddressStack(IdealReturnAddressStack):
    """A finite circular RAS that loses the oldest entries on overflow."""

    def __init__(self, depth: int = 32):
        super().__init__()
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth

    def push(self, return_address: int) -> None:
        if len(self._stack) == self.depth:
            del self._stack[0]
        self._stack.append(return_address)


# ----- frozen copy of repro.branch.indirect ----------------------


class LastTargetPredictor:
    """A tagged table mapping an indirect jump's PC to its last target.

    A miss (no entry) means the front end has no target to fetch from —
    accounted as a misfetch; a wrong target is discovered at execute like a
    branch misprediction.
    """

    def __init__(self, entries: int = 1024):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self._tags = [None] * entries
        self._targets = [0] * entries

    def _slot(self, pc: int) -> int:
        return pc % self.entries

    def predict(self, pc: int) -> Optional[int]:
        slot = self._slot(pc)
        if self._tags[slot] == pc:
            return self._targets[slot]
        return None

    def update(self, pc: int, target: int) -> None:
        slot = self._slot(pc)
        self._tags[slot] = pc
        self._targets[slot] = target
