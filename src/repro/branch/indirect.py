"""Last-target prediction for indirect jumps (switch dispatch)."""

from __future__ import annotations

from typing import Optional


class LastTargetPredictor:
    """A tagged table mapping an indirect jump's PC to its last target.

    A miss (no entry) means the front end has no target to fetch from —
    accounted as a misfetch; a wrong target is discovered at execute like a
    branch misprediction.
    """

    def __init__(self, entries: int = 1024):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self._tags = [None] * entries
        self._targets = [0] * entries

    def _slot(self, pc: int) -> int:
        return pc % self.entries

    def predict(self, pc: int) -> Optional[int]:
        slot = self._slot(pc)
        if self._tags[slot] == pc:
            return self._targets[slot]
        return None

    def update(self, pc: int, target: int) -> None:
        slot = self._slot(pc)
        self._tags[slot] = pc
        self._targets[slot] = target
