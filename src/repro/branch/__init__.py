"""Branch prediction structures.

Implements every predictor the paper's machine models use:

* the multiple branch predictor of Patel et al. (their Figure 3): a
  gshare-indexed pattern history table of 16K rows, each row holding seven
  2-bit counters arranged as a tree that yields up to three predictions per
  cycle;
* the restructured split-table variant (64K/16K/8K counters) the paper
  proposes for use with branch promotion;
* the icache reference configuration's hybrid predictor: gshare (15 bits of
  global history) + PAs (15 bits of local history) with a selector;
* return address stacks (ideal, as modeled in the paper, and a real one);
* a last-target predictor for indirect jumps.
"""

from repro.branch.counters import SaturatingCounters
from repro.branch.history import GlobalHistory
from repro.branch.gshare import GsharePredictor
from repro.branch.pas import PAsPredictor
from repro.branch.hybrid import HybridPredictor
from repro.branch.multiple import (
    MultipleBranchPredictor,
    SplitMultiplePredictor,
    MultiPrediction,
)
from repro.branch.ras import IdealReturnAddressStack, ReturnAddressStack
from repro.branch.indirect import LastTargetPredictor

__all__ = [
    "SaturatingCounters",
    "GlobalHistory",
    "GsharePredictor",
    "PAsPredictor",
    "HybridPredictor",
    "MultipleBranchPredictor",
    "SplitMultiplePredictor",
    "MultiPrediction",
    "IdealReturnAddressStack",
    "ReturnAddressStack",
    "LastTargetPredictor",
]
