"""Hybrid (tournament) predictor for the icache reference configuration.

Per the paper's Section 3: a gshare component with 15 bits of global
history, a PAs component with 15 bits of local history and a 4K-entry
branch history table, and a selector accessed with the same 15-bit index as
the gshare component (~32KB total).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.counters import SaturatingCounters
from repro.branch.gshare import GsharePredictor
from repro.branch.pas import PAsPredictor


@dataclass(frozen=True)
class HybridPrediction:
    """A prediction plus everything needed to update at resolve time."""

    taken: bool
    gshare_taken: bool
    pas_taken: bool
    gshare_index: int
    pas_index: int
    selector_index: int


class HybridPredictor:
    """gshare + PAs with a 2-bit chooser per gshare index."""

    def __init__(self, history_bits: int = 15, bht_entries: int = 4096):
        self.gshare = GsharePredictor(history_bits=history_bits)
        self.pas = PAsPredictor(history_bits=history_bits, bht_entries=bht_entries)
        # Selector counter high => trust gshare.
        self.selector = SaturatingCounters(1 << history_bits, bits=2)

    def predict(self, pc: int, history: int) -> HybridPrediction:
        gshare_index = self.gshare.index(pc, history)
        pas_index = self.pas.index(pc)
        gshare_taken = self.gshare.counters.predict(gshare_index)
        pas_taken = self.pas.counters.predict(pas_index)
        use_gshare = self.selector.predict(gshare_index)
        return HybridPrediction(
            taken=gshare_taken if use_gshare else pas_taken,
            gshare_taken=gshare_taken,
            pas_taken=pas_taken,
            gshare_index=gshare_index,
            pas_index=pas_index,
            selector_index=gshare_index,
        )

    def update(self, pc: int, prediction: HybridPrediction, taken: bool) -> None:
        """Update both components and steer the selector toward the one
        that was right (no movement when they agree)."""
        self.gshare.update(prediction.gshare_index, taken)
        self.pas.update(pc, prediction.pas_index, taken)
        gshare_right = prediction.gshare_taken == taken
        pas_right = prediction.pas_taken == taken
        if gshare_right != pas_right:
            self.selector.update(prediction.selector_index, gshare_right)

    def storage_bits(self) -> int:
        return (
            self.gshare.storage_bits()
            + self.pas.storage_bits()
            + self.selector.storage_bits()
        )
