"""Hybrid (tournament) predictor for the icache reference configuration.

Per the paper's Section 3: a gshare component with 15 bits of global
history, a PAs component with 15 bits of local history and a 4K-entry
branch history table, and a selector accessed with the same 15-bit index as
the gshare component (~32KB total).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.branch.counters import SaturatingCounters
from repro.branch.gshare import GsharePredictor
from repro.branch.pas import PAsPredictor


class HybridPrediction(NamedTuple):
    """A prediction plus everything needed to update at resolve time.

    A NamedTuple, not a dataclass: one is allocated per predicted branch on
    the icache front end's hot path, and tuple construction is several
    times cheaper than dataclass ``__init__``.
    """

    taken: bool
    gshare_taken: bool
    pas_taken: bool
    gshare_index: int
    pas_index: int
    selector_index: int


class HybridPredictor:
    """gshare + PAs with a 2-bit chooser per gshare index.

    ``predict`` reads the three counter bytearrays directly: every index it
    computes is already masked to its table size, so the generic
    ``SaturatingCounters.predict`` modulo-and-compare wrapper is redundant
    on this path (the tables stay shared with the component predictors, so
    training through either view hits the same storage).
    """

    def __init__(self, history_bits: int = 15, bht_entries: int = 4096):
        self.gshare = GsharePredictor(history_bits=history_bits)
        self.pas = PAsPredictor(history_bits=history_bits, bht_entries=bht_entries)
        # Selector counter high => trust gshare.
        self.selector = SaturatingCounters(1 << history_bits, bits=2)
        # Hot-path aliases: raw counter tables plus the index masks.
        self._gshare_table = self.gshare.counters._table
        self._pas_table = self.pas.counters._table
        self._selector_table = self.selector._table
        self._history_mask = (1 << history_bits) - 1
        self._index_mask = self.gshare.index_mask
        self._bht = self.pas._bht
        self._bht_entries = bht_entries

    def predict(self, pc: int, history: int) -> HybridPrediction:
        gshare_index = (pc ^ (history & self._history_mask)) & self._index_mask
        pas_index = self._bht[pc % self._bht_entries]
        gshare_taken = self._gshare_table[gshare_index] >= 2
        pas_taken = self._pas_table[pas_index] >= 2
        return HybridPrediction(
            taken=gshare_taken if self._selector_table[gshare_index] >= 2 else pas_taken,
            gshare_taken=gshare_taken,
            pas_taken=pas_taken,
            gshare_index=gshare_index,
            pas_index=pas_index,
            selector_index=gshare_index,
        )

    def update(self, pc: int, prediction: HybridPrediction, taken: bool) -> None:
        """Update both components and steer the selector toward the one
        that was right (no movement when they agree)."""
        self.gshare.update(prediction.gshare_index, taken)
        self.pas.update(pc, prediction.pas_index, taken)
        gshare_right = prediction.gshare_taken == taken
        pas_right = prediction.pas_taken == taken
        if gshare_right != pas_right:
            self.selector.update(prediction.selector_index, gshare_right)

    def storage_bits(self) -> int:
        return (
            self.gshare.storage_bits()
            + self.pas.storage_bits()
            + self.selector.storage_bits()
        )
