"""Saturating up/down counter tables, the substrate of every predictor."""

from __future__ import annotations


class SaturatingCounters:
    """A table of n-bit saturating counters.

    The canonical 2-bit counter predicts taken when the counter is in its
    upper half (2 or 3), increments on taken and decrements on not-taken,
    saturating at the ends.
    """

    def __init__(self, size: int, bits: int = 2, init: int | None = None):
        if size <= 0:
            raise ValueError("size must be positive")
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self.size = size
        self.bits = bits
        self.max_value = (1 << bits) - 1
        self.threshold = 1 << (bits - 1)
        if init is None:
            init = self.threshold - 1  # weakly not-taken
        if not 0 <= init <= self.max_value:
            raise ValueError(f"init {init} out of range for {bits}-bit counter")
        # A bytearray rather than a numpy array: single-element reads are
        # the predictors' hot path, and bytearray indexing yields a plain
        # int with none of the numpy scalar-boxing overhead.  Counter
        # values are always in [0, max_value] so a byte per entry suffices.
        self._table = bytearray([init]) * size

    def predict(self, index: int) -> bool:
        """Taken when the counter is in its upper half."""
        return self._table[index % self.size] >= self.threshold

    def value(self, index: int) -> int:
        return self._table[index % self.size]

    def update(self, index: int, taken: bool) -> None:
        index %= self.size
        value = self._table[index]
        if taken:
            if value < self.max_value:
                self._table[index] = value + 1
        elif value > 0:
            self._table[index] = value - 1

    def update_bulk(self, indices, takens) -> None:
        """Apply a whole column of ``(index, taken)`` updates at once.

        Exact-equivalent to calling :meth:`update` element by element:
        different counters never interact, and one counter's updates are
        order-dependent only through saturation — so a stable sort by
        index followed by run-length collapse applies each maximal
        same-direction run as a single clamped move.  (A bincount of
        net direction would *not* be exact: ``+1,-1`` at the floor is
        not ``0``.)  Falls back to the scalar loop without numpy or
        under ``REPRO_VECTOR=0``.
        """
        from repro.experiments import columns

        n = len(indices)
        if n < 16 or not columns.enabled():
            update = self.update
            for index, taken in zip(indices, takens):
                update(int(index), bool(taken))
            return
        np = columns.np
        idx = np.asarray(indices, dtype=np.int64) % self.size
        t = np.asarray(takens, dtype=np.uint8)
        order = np.argsort(idx, kind="stable")
        s_idx = idx[order]
        s_t = t[order]
        change = np.empty(n, dtype=bool)
        change[0] = True
        np.not_equal(s_idx[1:], s_idx[:-1], out=change[1:])
        change[1:] |= s_t[1:] != s_t[:-1]
        starts = np.flatnonzero(change)
        lengths = np.diff(np.append(starts, n))
        table = self._table
        cap = self.max_value
        for start, length in zip(starts.tolist(), lengths.tolist()):
            index = int(s_idx[start])
            if s_t[start]:
                value = table[index] + length
                table[index] = value if value < cap else cap
            else:
                value = table[index] - length
                table[index] = value if value > 0 else 0

    def storage_bits(self) -> int:
        """Hardware cost of this table in bits."""
        return self.size * self.bits

    def __len__(self) -> int:
        return self.size
