"""Return address stacks.

The paper models an *ideal* return address stack; a finite hardware stack
is provided too for ablations.
"""

from __future__ import annotations

from typing import List, Optional


class IdealReturnAddressStack:
    """An unbounded, never-corrupted RAS — the paper's model.

    Because it tracks calls/returns of the *fetched* (possibly wrong) path
    with unlimited depth, the only way it could mispredict is wrong-path
    corruption; the paper idealizes that away, and so do we by letting the
    core checkpoint and restore the stack pointer (here: full stack state).
    """

    def __init__(self):
        self._stack: List[int] = []

    def push(self, return_address: int) -> None:
        self._stack.append(return_address)

    def pop(self) -> Optional[int]:
        if self._stack:
            return self._stack.pop()
        return None

    def snapshot(self) -> tuple:
        return tuple(self._stack)

    def restore(self, snapshot: tuple) -> None:
        self._stack = list(snapshot)

    def __len__(self) -> int:
        return len(self._stack)


class ReturnAddressStack(IdealReturnAddressStack):
    """A finite circular RAS that loses the oldest entries on overflow."""

    def __init__(self, depth: int = 32):
        super().__init__()
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth

    def push(self, return_address: int) -> None:
        if len(self._stack) == self.depth:
            del self._stack[0]
        self._stack.append(return_address)
