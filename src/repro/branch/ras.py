"""Return address stacks.

The paper models an *ideal* return address stack; a finite hardware stack
is provided too for ablations.
"""

from __future__ import annotations

from typing import List, Optional


class IdealReturnAddressStack:
    """An unbounded, never-corrupted RAS — the paper's model.

    Because it tracks calls/returns of the *fetched* (possibly wrong) path
    with unlimited depth, the only way it could mispredict is wrong-path
    corruption; the paper idealizes that away, and so do we by letting the
    core checkpoint and restore the stack pointer (here: full stack state).

    ``snapshot()`` is copy-on-write: the materialized tuple is cached and
    handed out again until the next push/pop dirties the stack, so a run
    of checkpoints between call/return instructions — the common case,
    since the core checkpoints every fetched branch — costs one tuple
    build instead of one per checkpoint.  The cache slot doubles as the
    version tag: ``None`` means "stack changed since last materialize".
    """

    def __init__(self):
        self._stack: List[int] = []
        self._snap: Optional[tuple] = ()  # cached snapshot; None when stale
        # When validation is armed, every snapshot() additionally checks
        # the copy-on-write cache against the live stack — a stale cache
        # would silently corrupt checkpoint/restore.  Bound per instance
        # so the off path keeps the bare method.
        from repro import validate
        if validate.invariants_armed():
            self.snapshot = self._snapshot_checked

    def push(self, return_address: int) -> None:
        self._stack.append(return_address)
        self._snap = None

    def pop(self) -> Optional[int]:
        stack = self._stack
        if stack:
            self._snap = None
            return stack.pop()
        return None

    def snapshot(self) -> tuple:
        snap = self._snap
        if snap is None:
            self._snap = snap = tuple(self._stack)
        return snap

    def _snapshot_checked(self) -> tuple:
        """:meth:`snapshot` plus the cache-coherence invariant."""
        snap = self._snap
        if snap is not None and snap != tuple(self._stack):
            from repro.validate.errors import InvariantError
            raise InvariantError(
                f"RAS snapshot cache is stale: cached {snap!r} vs live "
                f"{tuple(self._stack)!r}")
        return IdealReturnAddressStack.snapshot(self)

    def restore(self, snapshot: tuple) -> None:
        self._stack = list(snapshot)
        self._snap = snapshot if type(snapshot) is tuple else tuple(snapshot)

    def __len__(self) -> int:
        return len(self._stack)


class ReturnAddressStack(IdealReturnAddressStack):
    """A finite circular RAS that loses the oldest entries on overflow."""

    def __init__(self, depth: int = 32):
        super().__init__()
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth

    def push(self, return_address: int) -> None:
        stack = self._stack
        if len(stack) == self.depth:
            del stack[0]
        stack.append(return_address)
        self._snap = None
