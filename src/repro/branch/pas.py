"""PAs two-level predictor: per-address history, shared pattern tables."""

from __future__ import annotations

from repro.branch.counters import SaturatingCounters


class PAsPredictor:
    """Per-address branch history indexing a shared pattern history table.

    The paper's icache configuration uses a PAs component with 15 bits of
    local history and a 4K-entry branch history table.  Local history is
    updated at retire (non-speculatively); this slightly lags fetch, which
    is the standard modeling choice for per-address history and matches a
    retire-updated BHT.

    The BHT is a plain list of masked ints: each entry is a local-history
    shift register, read once per prediction and updated with one shift-OR
    per retire.  (A numpy vector here boxed every single-element read into
    a numpy scalar — the opposite of what this access pattern wants.)
    """

    def __init__(self, history_bits: int = 15, bht_entries: int = 4096):
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1
        self.bht_entries = bht_entries
        self._bht = [0] * bht_entries
        self.counters = SaturatingCounters(1 << history_bits, bits=2)

    def _bht_index(self, pc: int) -> int:
        return pc % self.bht_entries

    def index(self, pc: int) -> int:
        """PHT index for this branch (its current local history)."""
        return self._bht[pc % self.bht_entries]

    def predict(self, pc: int) -> bool:
        return self.counters.predict(self._bht[pc % self.bht_entries])

    def update(self, pc: int, index: int, taken: bool) -> None:
        """Update PHT at the prediction-time index, then shift local history."""
        self.counters.update(index, taken)
        slot = pc % self.bht_entries
        self._bht[slot] = ((self._bht[slot] << 1) | int(taken)) & self.history_mask

    def update_bulk(self, pcs, indices, takens) -> None:
        """Apply a whole column of retire updates at once.

        The PHT side run-collapses like any counter table; the local
        history registers collapse per BHT slot — only the last
        ``history_bits`` outcomes of a slot survive ``L`` shift-ORs, so
        each slot folds its outcome tail once instead of shifting per
        retire.  Exact-equivalent to the scalar loop (which remains the
        fallback without numpy / under ``REPRO_VECTOR=0``).
        """
        from repro.experiments import columns

        n = len(pcs)
        if n < 16 or not columns.enabled():
            update = self.update
            for pc, index, taken in zip(pcs, indices, takens):
                update(int(pc), int(index), bool(taken))
            return
        self.counters.update_bulk(indices, takens)
        np = columns.np
        slots = np.asarray(pcs, dtype=np.int64) % self.bht_entries
        t = np.asarray(takens, dtype=np.uint8)
        order = np.argsort(slots, kind="stable")
        s_slots = slots[order]
        s_t = t[order]
        starts = np.flatnonzero(
            np.concatenate(([True], s_slots[1:] != s_slots[:-1])))
        ends = np.append(starts[1:], n)
        bht = self._bht
        bits = self.history_bits
        mask = self.history_mask
        for start, end in zip(starts.tolist(), ends.tolist()):
            slot = int(s_slots[start])
            length = end - start
            value = bht[slot] if length < bits else 0
            for bit in s_t[max(start, end - bits):end].tolist():
                value = (value << 1) | bit
            bht[slot] = value & mask

    def storage_bits(self) -> int:
        return self.counters.storage_bits() + self.bht_entries * self.history_bits
