"""The gshare single-branch predictor (McFarling)."""

from __future__ import annotations

from repro.branch.counters import SaturatingCounters


class GsharePredictor:
    """XOR of PC and global history indexes one 2-bit counter table.

    The predictor does not own the history register — the fetch engine
    maintains one :class:`~repro.branch.history.GlobalHistory` shared by
    every component so checkpoint repair stays consistent.
    """

    def __init__(self, history_bits: int, table_bits: int | None = None):
        if table_bits is None:
            table_bits = history_bits
        if history_bits > table_bits:
            raise ValueError("history must not be wider than the table index")
        self.history_bits = history_bits
        self.table_bits = table_bits
        self.index_mask = (1 << table_bits) - 1
        self.counters = SaturatingCounters(1 << table_bits, bits=2)

    def index(self, pc: int, history: int) -> int:
        return (pc ^ (history & ((1 << self.history_bits) - 1))) & self.index_mask

    def predict(self, pc: int, history: int) -> bool:
        return self.counters.predict(self.index(pc, history))

    def update(self, index: int, taken: bool) -> None:
        """Update using the index captured at prediction time."""
        self.counters.update(index, taken)

    def update_bulk(self, indices, takens) -> None:
        """Train a whole column of prediction-time indices at once
        (run-collapsed; see :meth:`SaturatingCounters.update_bulk`)."""
        self.counters.update_bulk(indices, takens)

    def storage_bits(self) -> int:
        return self.counters.storage_bits()
