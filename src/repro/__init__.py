"""repro — a reproduction of Patel, Evers & Patt (ISCA 1998):
*Improving Trace Cache Effectiveness with Branch Promotion and Trace
Packing*.

The package implements the paper's complete system stack in Python:

* a small RISC ISA with an assembler and functional executor
  (:mod:`repro.isa`);
* synthetic workloads standing in for SPECint95 + UNIX applications
  (:mod:`repro.workloads`);
* branch predictors — the multiple branch predictor, its split-table
  variant, and the icache configuration's hybrid (:mod:`repro.branch`);
* the memory hierarchy (:mod:`repro.mem`);
* the trace cache, fill unit, branch bias table, branch promotion, and
  every trace-packing policy (:mod:`repro.trace`) — the paper's primary
  contribution;
* trace-cache and icache fetch engines with partial matching and inactive
  issue, plus a fast oracle-driven front-end simulator
  (:mod:`repro.frontend`);
* a cycle-level out-of-order machine with checkpoint repair, wrong-path
  execution, and conservative/perfect memory disambiguation
  (:mod:`repro.core`);
* experiment definitions regenerating every table and figure in the
  paper's evaluation (:mod:`repro.experiments`).

Quickstart::

    from repro import simulate_frontend, BASELINE, PROMOTION_PACKING
    from repro.workloads import generate_program

    program = generate_program("gcc")
    base = simulate_frontend(program, BASELINE, max_instructions=100_000)
    both = simulate_frontend(program, PROMOTION_PACKING, max_instructions=100_000)
    print(base.effective_fetch_rate, both.effective_fetch_rate)
"""

from repro.config import (
    BASELINE,
    ICACHE,
    PACKING,
    PROMOTION,
    PROMOTION_COST_REG,
    PROMOTION_PACKING,
    CoreConfig,
    FrontEndConfig,
    MachineConfig,
    promotion_with_packing,
    promotion_with_threshold,
)
from repro.core.machine import Machine, MachineResult, simulate as _simulate_machine
from repro.frontend.simulator import FrontEndResult, FrontEndSimulator, compute_oracle
from repro.isa import assemble, FunctionalExecutor, Program
from repro.workloads import generate_program

__version__ = "1.0.0"


def simulate_frontend(program, config: FrontEndConfig = BASELINE,
                      max_instructions: int = 100_000) -> FrontEndResult:
    """Run the oracle-driven front-end simulator on ``program``."""
    return FrontEndSimulator(program, config, max_instructions=max_instructions).run()


def simulate_machine(program, config: MachineConfig = None,
                     max_instructions: int = 50_000) -> MachineResult:
    """Run the full cycle-level machine on ``program``."""
    return _simulate_machine(program, config or MachineConfig(),
                             max_instructions=max_instructions)


__all__ = [
    "__version__",
    # configs
    "FrontEndConfig", "MachineConfig", "CoreConfig",
    "ICACHE", "BASELINE", "PACKING", "PROMOTION",
    "PROMOTION_PACKING", "PROMOTION_COST_REG",
    "promotion_with_threshold", "promotion_with_packing",
    # simulation entry points
    "simulate_frontend", "simulate_machine",
    "FrontEndSimulator", "FrontEndResult",
    "Machine", "MachineResult",
    "compute_oracle",
    # program construction
    "assemble", "Program", "FunctionalExecutor", "generate_program",
]
