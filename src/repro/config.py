"""Configuration presets for every machine the paper evaluates."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.mem.hierarchy import MemoryConfig
from repro.trace.fill_unit import PackingPolicy


@dataclass(frozen=True)
class FrontEndConfig:
    """Front-end structure and policy selection.

    ``kind`` selects the datapath: ``"tc"`` (trace cache + supporting 4KB
    icache) or ``"icache"`` (the reference single-block front end with a
    128KB dual-ported icache and hybrid predictor).
    """

    kind: str = "tc"
    # Trace cache geometry (paper: 2K lines, 4-way, 16 insts/line ~ 128KB).
    tc_lines: int = 2048
    tc_assoc: int = 4
    # Fill-unit policy.
    packing: PackingPolicy = PackingPolicy.ATOMIC
    promote: bool = False
    promote_threshold: int = 64
    bias_entries: int = 8192
    # Multiple branch predictor: "tree" = 16K x 7 2-bit counters (Fig. 3);
    # "split" = separate 64K/16K/8K tables (the restructured variant).
    predictor: str = "tree"
    # Partial matching always truncates at a divergence; inactive issue
    # (issuing the rest of the line dormant) is on in every paper
    # configuration — the flag exists for ablation.
    inactive_issue: bool = True
    # Path associativity: allow multiple segments starting at the same
    # address, selected by best prediction match (off in the paper).
    path_associativity: bool = False
    # Static promotion: profile the program once and promote strongly
    # biased branches ahead of time instead of (not in addition to) using
    # the dynamic bias table (the paper's section 4 closing discussion).
    promote_static: bool = False
    static_bias_threshold: float = 0.95
    static_min_executions: int = 32
    # Penalties used by the front-end-only simulator (cycles).
    mispredict_penalty: int = 8
    misfetch_penalty: int = 3
    trap_penalty: int = 8

    def describe(self) -> str:
        if self.kind == "icache":
            return "icache"
        parts = ["tc"]
        if self.promote:
            parts.append(f"promo{self.promote_threshold}")
        if self.packing is not PackingPolicy.ATOMIC:
            parts.append(self.packing.value)
        if self.predictor != "tree":
            parts.append(self.predictor)
        return "+".join(parts)


#: The paper's named configurations.
ICACHE = FrontEndConfig(kind="icache")
BASELINE = FrontEndConfig(kind="tc")
PACKING = FrontEndConfig(kind="tc", packing=PackingPolicy.UNREGULATED)
PROMOTION = FrontEndConfig(kind="tc", promote=True, promote_threshold=64)
PROMOTION_PACKING = FrontEndConfig(
    kind="tc", promote=True, promote_threshold=64, packing=PackingPolicy.UNREGULATED
)
PROMOTION_COST_REG = FrontEndConfig(
    kind="tc", promote=True, promote_threshold=64, packing=PackingPolicy.COST_REGULATED
)


def promotion_with_threshold(threshold: int) -> FrontEndConfig:
    """Promotion-only configuration at a given bias threshold (Table 2)."""
    return replace(PROMOTION, promote_threshold=threshold)


def promotion_with_packing(policy: PackingPolicy) -> FrontEndConfig:
    """Promotion at threshold 64 plus the given packing policy (Table 4)."""
    return replace(PROMOTION, packing=policy)


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order execution core parameters (paper section 3)."""

    n_fus: int = 16
    rs_per_fu: int = 64
    fetch_width: int = 16
    issue_width: int = 16
    retire_width: int = 16
    #: Conservative scheduling: no load may bypass a store with an unknown
    #: address.  Perfect: loads wait only for same-address earlier stores.
    perfect_disambiguation: bool = False
    alu_latency: int = 1
    mul_latency: int = 3
    branch_latency: int = 1
    checkpoints_per_cycle: int = 3
    max_checkpoints: int = 64


@dataclass(frozen=True)
class MachineConfig:
    """A complete machine: front end + memory + core."""

    frontend: FrontEndConfig = BASELINE
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    core: CoreConfig = field(default_factory=CoreConfig)

    def describe(self) -> str:
        suffix = "+perfmem" if self.core.perfect_disambiguation else ""
        return self.frontend.describe() + suffix
