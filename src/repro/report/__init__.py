"""Plain-text rendering of experiment results."""

from repro.report.tables import format_table, format_bar_chart, format_histogram

__all__ = ["format_table", "format_bar_chart", "format_histogram"]
