"""ASCII tables and bar charts for benchmark output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render rows as a fixed-width ASCII table."""
    cells = [[_format_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_bar_chart(values: Dict[str, float], width: int = 40, title: str = "",
                     fmt: str = "{:8.2f}") -> str:
    """Horizontal ASCII bar chart (one bar per key)."""
    lines = [title] if title else []
    if not values:
        return title
    label_width = max(len(str(k)) for k in values)
    peak = max((abs(v) for v in values.values()), default=1.0) or 1.0
    for key, value in values.items():
        bar = "#" * max(0, int(round(width * abs(value) / peak)))
        sign = "-" if value < 0 else ""
        lines.append(f"{str(key).ljust(label_width)} {fmt.format(value)} {sign}{bar}")
    return "\n".join(lines)


def format_histogram(histogram: Dict[int, float], width: int = 40, title: str = "") -> str:
    """Vertical-ish histogram of fetch sizes (one row per size)."""
    return format_bar_chart(
        {f"size {size:2d}": value for size, value in sorted(histogram.items())},
        width=width, title=title, fmt="{:6.3f}",
    )
