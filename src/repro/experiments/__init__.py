"""Paper experiment definitions: one function per table and figure.

Every function returns plain data structures (lists of rows / dicts keyed
by benchmark) that the benchmark harness prints and asserts on, and that
EXPERIMENTS.md records.  Results are memoized per (benchmark, config,
length) so the many figures that share runs do not recompute them.
"""

from repro.experiments.runner import (
    get_program,
    get_oracle,
    frontend_result,
    machine_result,
    quick_scale,
    clear_caches,
)
from repro.experiments.scheduler import (
    GridPoint,
    prefetch_frontend,
    prefetch_machine,
    resolve_jobs,
    run_grid,
)
from repro.experiments.paper import (
    table1_rows,
    fetch_breakdown,
    table2_rows,
    figure7_rows,
    table3_rows,
    figure9_rows,
    figure10_rows,
    table4_rows,
    figure11_rows,
    figure12_rows,
    figure13_rows,
    figure14_rows,
    figure15_rows,
    figure16_rows,
)

__all__ = [
    "get_program",
    "get_oracle",
    "frontend_result",
    "machine_result",
    "quick_scale",
    "clear_caches",
    "GridPoint",
    "prefetch_frontend",
    "prefetch_machine",
    "resolve_jobs",
    "run_grid",
    "table1_rows",
    "fetch_breakdown",
    "table2_rows",
    "figure7_rows",
    "table3_rows",
    "figure9_rows",
    "figure10_rows",
    "table4_rows",
    "figure11_rows",
    "figure12_rows",
    "figure13_rows",
    "figure14_rows",
    "figure15_rows",
    "figure16_rows",
]
