"""Failure taxonomy, retry policy, and a deterministic fault-injection harness.

The experiment scheduler fans simulation grids out over worker processes;
at that scale, *something* eventually fails — a worker segfaults under
memory pressure, a point hangs, the disk fills mid-write, a cache file is
corrupted by a killed process.  This module gives the supervision layer
in :mod:`repro.experiments.scheduler` three things:

1. **A failure taxonomy.**  :func:`classify` sorts an exception raised by
   a grid point into *transient* (broken process pool, worker killed,
   OS-level cache/trace IO errors — worth retrying with backoff),
   *timeout* (the point exceeded its wall-clock deadline — also retried),
   or *deterministic* (a simulation exception or invariant violation —
   retrying in a pool reproduces the same failure, so the point is re-run
   once inline in the parent for a clean traceback instead).

2. **Policy knobs**, all environment-driven so one setting covers every
   grid a script touches: ``REPRO_RETRIES`` (transient retry budget,
   default 2), ``REPRO_POINT_TIMEOUT`` (base wall-clock seconds per
   point at the reference cost of 100k simulated instructions, scaled by
   each point's estimated cost; unset disables deadlines),
   ``REPRO_BACKOFF`` (base of the exponential retry backoff, default
   0.1s) and ``REPRO_KEEP_GOING`` (finish the grid and report all
   failures at the end instead of failing fast).

3. **A deterministic fault-injection harness** for chaos testing, driven
   by ``REPRO_FAULTS`` — a comma-separated spec like
   ``crash:0.1,hang:p3,corrupt-cache:p7``.  Each entry is
   ``action:when[:arg]`` where *action* is one of ``crash`` (the worker
   calls ``os._exit``), ``hang`` (the worker sleeps *arg* seconds,
   default 30), ``corrupt-cache`` (the point's freshly written result
   cache entry is overwritten with garbage) or ``corrupt-trace`` (the
   point's oracle trace files are corrupted and the worker's oracle memo
   dropped, forcing the checksum-recovery path).  *when* is either
   ``pN`` — fire on the point scheduled at ordinal ``N``, first attempt
   only, so retries succeed — or a probability in ``[0, 1]`` hashed from
   (action, point key, attempt), so a given run is exactly reproducible.
   The ``diverge`` action arms the :mod:`repro.validate` forced-latch so
   the next validated fetch/run reports an (injected) divergence —
   chaos coverage for the lockstep guard's detect/report/requeue path.
   Faults only ever fire inside pool workers (the pool initializer calls
   :func:`mark_worker`); serial runs and parent-side inline re-runs are
   never faulted, which is what makes "degrade to serial" a safe floor.
"""

from __future__ import annotations

import hashlib
import os
import time
import traceback as traceback_module
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.experiments import env, warnonce
from repro.validate.errors import DivergenceError

# ------------------------------------------------------------- taxonomy

#: Point outcome kinds.
OK = "ok"
TRANSIENT = "transient"
TIMEOUT = "timeout"
DETERMINISTIC = "deterministic"
DIVERGENCE = "divergence"


class PointTimeout(Exception):
    """A grid point exceeded its wall-clock deadline and was cancelled."""


def classify(exc: BaseException) -> str:
    """Sort a grid-point exception into the retry taxonomy.

    * :class:`~repro.validate.errors.DivergenceError` ->
      :data:`DIVERGENCE` (the lockstep guard caught the fast stack
      disagreeing with the reference: retrying the same code reproduces
      it, so the scheduler requeues the point pinned to the reference
      engine instead);
    * :class:`PointTimeout` -> :data:`TIMEOUT` (retried; the hung worker
      was killed, a fresh attempt may succeed);
    * broken pools / killed workers / OS-level IO errors on the cache or
      trace files -> :data:`TRANSIENT` (retried with backoff);
    * everything else -> :data:`DETERMINISTIC` (a simulation exception or
      invariant violation: re-running it in a pool reproduces the same
      failure, so it is re-run once inline for a clean traceback).
    """
    if isinstance(exc, DivergenceError):
        return DIVERGENCE
    if isinstance(exc, PointTimeout):
        return TIMEOUT
    if isinstance(exc, (BrokenExecutor, OSError, EOFError)):
        return TRANSIENT
    return DETERMINISTIC


@dataclass(frozen=True)
class PointFailure:
    """One grid point's terminal failure, for the end-of-run report."""

    point: Any          #: the GridPoint that failed
    kind: str           #: TRANSIENT, TIMEOUT, DETERMINISTIC or DIVERGENCE
    attempts: int       #: how many attempts were consumed
    error: str          #: compact ``repr`` of the final exception
    traceback: str = ""  #: full traceback for deterministic failures


class GridFailures(RuntimeError):
    """Raised when a grid finishes (or fails fast) with failed points.

    Carries the per-point :class:`PointFailure` list and every result
    that *did* complete, so a ``--keep-going`` caller can report both.
    """

    def __init__(self, failures: Sequence[PointFailure], results: dict):
        super().__init__(f"{len(failures)} grid point(s) failed "
                         f"({len(results)} completed)")
        self.failures = list(failures)
        self.results = dict(results)


#: Column headers matching :func:`failure_rows`.
FAILURE_HEADERS = ("sim", "benchmark", "config", "failure", "attempts", "error")


def failure_rows(failures: Sequence[PointFailure]) -> List[List[str]]:
    """Tabular form of a failure list (rows match :data:`FAILURE_HEADERS`)."""
    rows = []
    for f in failures:
        describe = getattr(f.point.config, "describe", None)
        label = describe() if callable(describe) else str(f.point.config)
        rows.append([f.point.kind, f.point.benchmark, label,
                     f.kind, str(f.attempts), f.error])
    return rows


def format_error(exc: BaseException) -> str:
    """Compact one-line rendering of an exception for failure tables."""
    text = f"{type(exc).__name__}: {exc}".strip().rstrip(":")
    return text if len(text) <= 120 else text[:117] + "..."


def capture_traceback(exc: BaseException) -> str:
    """The exception's full traceback as a string (empty if unraised)."""
    return "".join(traceback_module.format_exception(
        type(exc), exc, exc.__traceback__))


# --------------------------------------------------------------- policy

#: Estimated-cost denominator for timeout scaling: a point costing this
#: many simulated instructions gets exactly the base timeout.
COST_REFERENCE = 100_000


def resolve_retries(override: Optional[int] = None) -> int:
    """Transient retry budget: argument > ``REPRO_RETRIES`` > 2."""
    if override is not None:
        return max(0, override)
    return max(0, env.get_int("REPRO_RETRIES", 2))


def resolve_timeout(override: Optional[float] = None) -> Optional[float]:
    """Base per-point deadline in seconds, or None when disabled.

    Argument > ``REPRO_POINT_TIMEOUT`` > disabled.  Non-positive values
    disable deadlines.  The scheduler scales the base by each point's
    estimated cost relative to :data:`COST_REFERENCE`.
    """
    timeout = override
    if timeout is None:
        timeout = env.get_float("REPRO_POINT_TIMEOUT", 0.0)
    return timeout if timeout and timeout > 0 else None


def resolve_keep_going(override: Optional[bool] = None) -> bool:
    """Keep-going mode: argument > ``REPRO_KEEP_GOING`` > fail-fast."""
    if override is not None:
        return override
    return env.get_flag("REPRO_KEEP_GOING", False)


def resolve_backoff(override: Optional[float] = None) -> float:
    """Exponential-backoff base in seconds: argument > ``REPRO_BACKOFF`` > 0.1."""
    if override is not None:
        return max(0.0, override)
    return max(0.0, env.get_float("REPRO_BACKOFF", 0.1))


def backoff_delay(base: float, attempt: int) -> float:
    """Delay before retry number ``attempt`` (1-based): base * 2^(n-1)."""
    if base <= 0 or attempt <= 0:
        return 0.0
    return base * (2 ** (min(attempt, 7) - 1))


# ---------------------------------------------------- injection harness

#: Legal ``REPRO_FAULTS`` actions.
ACTIONS = ("crash", "hang", "corrupt-cache", "corrupt-trace", "diverge")

#: Worker exit status used by the ``crash`` action (visible in pool logs).
CRASH_EXIT_STATUS = 37

#: Default ``hang`` stall in seconds when the spec gives no argument.
DEFAULT_HANG_SECONDS = 30.0

_in_worker = False


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``REPRO_FAULTS`` entry (``action:when[:arg]``)."""

    action: str
    ordinal: Optional[int] = None      #: ``pN`` form: fire on ordinal N, attempt 0
    probability: Optional[float] = None  #: float form: hash-based, any attempt
    arg: Optional[float] = None        #: action argument (hang seconds)


def mark_worker() -> None:
    """Arm the harness for this process (called by the pool initializer).

    Faults never fire in the parent, so serial execution — including the
    scheduler's degraded-mode fallback and inline deterministic re-runs —
    is always a safe floor.
    """
    global _in_worker
    _in_worker = True


def in_worker() -> bool:
    """Whether this process is an armed pool worker."""
    return _in_worker


def parse_spec(raw: str) -> Tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULTS`` value; malformed entries warn once and drop.

    The harness must never turn a typo into a crashed experiment — an
    entry that does not parse is skipped, loudly.
    """
    specs = []
    for chunk in raw.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        spec = None
        if 2 <= len(parts) <= 3 and parts[0] in ACTIONS:
            action, when = parts[0], parts[1]
            try:
                arg = float(parts[2]) if len(parts) == 3 else None
                if when.startswith("p") and when[1:].isdigit():
                    spec = FaultSpec(action, ordinal=int(when[1:]), arg=arg)
                else:
                    probability = float(when)
                    if 0.0 <= probability <= 1.0:
                        spec = FaultSpec(action, probability=probability, arg=arg)
            except ValueError:
                spec = None
        if spec is None:
            warnonce.warn_once(
                f"repro-faults:{chunk}",
                f"ignoring malformed REPRO_FAULTS entry {chunk!r} "
                "(expected action:pN[:arg] or action:probability[:arg])")
            continue
        specs.append(spec)
    return tuple(specs)


def active_spec() -> Tuple[FaultSpec, ...]:
    """The parsed ``REPRO_FAULTS`` spec, or () outside armed workers."""
    raw = env.get_str("REPRO_FAULTS")
    if not raw or not _in_worker:
        return ()
    return parse_spec(raw)


def _fires(spec: FaultSpec, key: str, ordinal: int, attempt: int) -> bool:
    """Deterministic fire decision for one spec on one point attempt."""
    if spec.ordinal is not None:
        # Ordinal faults fire on the first attempt only, so a retried
        # point succeeds — the harness proves recovery, not permafailure.
        return attempt == 0 and ordinal == spec.ordinal
    digest = hashlib.sha256(
        f"{spec.action}|{key}|{attempt}".encode()).digest()
    unit = int.from_bytes(digest[:8], "big") / 2 ** 64
    return unit < (spec.probability or 0.0)


def _corrupt_file(path) -> None:
    """Stamp garbage over the head of ``path`` (missing files are fine)."""
    try:
        with open(path, "r+b") as handle:
            handle.write(b"\xde\xad\xbe\xef{corrupt")
    except OSError:
        pass


def inject_before(key: str, ordinal: int, attempt: int,
                  trace_paths: Sequence[Any] = ()) -> None:
    """Worker-side hook before a point runs: crash, hang, corrupt-trace."""
    for spec in active_spec():
        if not _fires(spec, key, ordinal, attempt):
            continue
        if spec.action == "crash":
            os._exit(CRASH_EXIT_STATUS)
        elif spec.action == "hang":
            time.sleep(spec.arg if spec.arg is not None
                       else DEFAULT_HANG_SECONDS)
        elif spec.action == "corrupt-trace":
            for path in trace_paths:
                _corrupt_file(path)
            # Drop the inherited oracle memo so this worker actually
            # re-reads the (now corrupt) trace file and must take the
            # checksum-recovery path instead of serving fork-time state.
            from repro.experiments import runner
            runner._oracles.clear()
        elif spec.action == "diverge":
            from repro.validate import errors
            errors.arm_forced_divergence()


def inject_after(key: str, ordinal: int, attempt: int,
                 cache_path: Any = None) -> None:
    """Worker-side hook after a point stored its result: corrupt-cache."""
    for spec in active_spec():
        if spec.action != "corrupt-cache":
            continue
        if not _fires(spec, key, ordinal, attempt):
            continue
        if cache_path is not None:
            _corrupt_file(cache_path)
