"""Multi-seed runs: are the reproduction's effects seed-robust?

The paper's workloads are fixed binaries; ours are seeded samples from
per-benchmark distributions, so any claimed effect should hold across
seeds, not just on the default one.  This module reruns a configuration
pair over several generator seeds and reports the distribution of the
effect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.config import FrontEndConfig
from repro.frontend.simulator import FrontEndResult, FrontEndSimulator, compute_oracle
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.profiles import get_profile


@dataclass
class SeedStudy:
    """Per-seed values of one metric plus summary statistics."""

    benchmark: str
    metric: str
    values: List[float]

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def std(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((v - mu) ** 2 for v in self.values) / (len(self.values) - 1))

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def fraction_positive(self) -> float:
        """Share of seeds where the metric is positive (for deltas)."""
        if not self.values:
            return 0.0
        return sum(1 for v in self.values if v > 0) / len(self.values)

    def summary(self) -> str:
        return (f"{self.benchmark}/{self.metric}: mean {self.mean:.3f} "
                f"± {self.std:.3f} (range {self.min:.3f}..{self.max:.3f}, "
                f"n={len(self.values)})")


def run_seeds(
    benchmark: str,
    config: FrontEndConfig,
    seeds: Sequence[int],
    metric: Callable[[FrontEndResult], float] = lambda r: r.effective_fetch_rate,
    metric_name: str = "efr",
    max_instructions: Optional[int] = None,
) -> SeedStudy:
    """Run one configuration over several generator seeds."""
    profile = get_profile(benchmark)
    n = max_instructions or profile.default_dynamic
    values = []
    for seed in seeds:
        program = WorkloadGenerator(profile, seed=seed).generate()
        result = FrontEndSimulator(program, config, max_instructions=n).run()
        values.append(metric(result))
    return SeedStudy(benchmark=benchmark, metric=metric_name, values=values)


def seed_effect(
    benchmark: str,
    baseline: FrontEndConfig,
    treatment: FrontEndConfig,
    seeds: Sequence[int],
    max_instructions: Optional[int] = None,
) -> SeedStudy:
    """Per-seed percentage change of the treatment's EFR over the baseline's.

    Both configurations replay the *same* per-seed program and oracle, so
    the comparison is paired.
    """
    profile = get_profile(benchmark)
    n = max_instructions or profile.default_dynamic
    deltas = []
    for seed in seeds:
        program = WorkloadGenerator(profile, seed=seed).generate()
        oracle = compute_oracle(program, n)
        base = FrontEndSimulator(program, baseline, oracle=oracle).run()
        treat = FrontEndSimulator(program, treatment, oracle=oracle).run()
        deltas.append(
            100.0 * (treat.effective_fetch_rate / base.effective_fetch_rate - 1.0)
        )
    return SeedStudy(benchmark=benchmark, metric="efr_pct_change", values=deltas)
