"""Every table and figure from the paper's evaluation, as data.

Naming follows the paper: Table 1 (benchmarks), Figures 4/6 (fetch-size
breakdowns), Table 2 (promotion threshold sweep), Figure 7 (misprediction
change under promotion), Table 3 (predictions per fetch), Figure 9
(packing), Figure 10 (all techniques), Table 4 (packing regulation),
Figures 11-16 (full-machine results).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro import config as cfg
from repro.config import CoreConfig, FrontEndConfig, MachineConfig
from repro.experiments.runner import frontend_result, get_program, machine_result
from repro.experiments.scheduler import prefetch_frontend, prefetch_machine
from repro.frontend.stats import CycleCategory, FetchReason
from repro.trace.fill_unit import PackingPolicy
from repro.workloads.profiles import BENCHMARK_NAMES, TABLE4_BENCHMARKS, get_profile

#: The five front-end configurations of Figure 10, in paper order.
FIG10_CONFIGS = [
    ("icache", cfg.ICACHE),
    ("baseline", cfg.BASELINE),
    ("packing", cfg.PACKING),
    ("promotion", cfg.PROMOTION),
    ("promotion,packing", cfg.PROMOTION_PACKING),
]

#: Machine configurations for Figures 11-16, in paper order.
def _machine_configs(perfect: bool) -> List:
    core = CoreConfig(perfect_disambiguation=perfect)
    return [
        ("icache", MachineConfig(frontend=cfg.ICACHE, core=core)),
        ("baseline", MachineConfig(frontend=cfg.BASELINE, core=core)),
        ("promotion,packing", MachineConfig(frontend=cfg.PROMOTION_COST_REG, core=core)),
    ]


def _benchmarks(benchmarks: Optional[Sequence[str]]) -> List[str]:
    return list(benchmarks) if benchmarks is not None else list(BENCHMARK_NAMES)


def _pct_change(new: float, old: float) -> float:
    if old == 0:
        return 0.0
    return 100.0 * (new - old) / old


# --------------------------------------------------------------- Table 1

def table1_rows() -> List[dict]:
    """The benchmark suite: paper's instruction counts and our scaled runs."""
    rows = []
    for name in BENCHMARK_NAMES:
        profile = get_profile(name)
        program = get_program(name)
        rows.append({
            "benchmark": name,
            "paper_inst_count": f"{profile.paper_inst_count_m}M",
            "input_set": profile.input_set,
            "static_instructions": len(program),
            "scaled_dynamic": profile.default_dynamic,
            "description": profile.description,
        })
    return rows


# -------------------------------------------------------- Figures 4 & 6

def fetch_breakdown(benchmark: str = "gcc",
                    config: FrontEndConfig = cfg.BASELINE) -> dict:
    """Fetch-size histogram annotated with termination reasons.

    Figure 4 is this with the baseline config; Figure 6 with promotion.
    Returns {"histogram": {(size, reason): fraction}, "avg": float,
    "reasons": {reason: fraction}}.
    """
    result = frontend_result(benchmark, config)
    stats = result.stats
    total = max(1, stats.fetches)
    histogram = {
        (size, reason): count / total
        for (size, reason), count in sorted(
            stats.size_reason_histogram.items(), key=lambda kv: kv[0][0]
        )
    }
    reasons = {reason: count / total for reason, count in stats.reason_breakdown().items()}
    return {
        "benchmark": benchmark,
        "histogram": histogram,
        "avg": stats.effective_fetch_rate,
        "reasons": reasons,
    }


# ---------------------------------------------------------------- Table 2

def table2_rows(benchmarks: Optional[Sequence[str]] = None,
                thresholds: Sequence[int] = (8, 16, 32, 64, 128, 256)) -> List[dict]:
    """Average effective fetch rate: icache, baseline, promotion sweep."""
    names = _benchmarks(benchmarks)
    configs = [cfg.ICACHE, cfg.BASELINE]
    configs += [cfg.promotion_with_threshold(t) for t in thresholds]
    prefetch_frontend(names, configs)

    def avg_efr(config: FrontEndConfig) -> float:
        rates = [frontend_result(b, config).effective_fetch_rate for b in names]
        return sum(rates) / len(rates)

    rows = [
        {"configuration": "icache", "efr": avg_efr(cfg.ICACHE)},
        {"configuration": "baseline", "efr": avg_efr(cfg.BASELINE)},
    ]
    for threshold in thresholds:
        rows.append({
            "configuration": f"threshold = {threshold}",
            "efr": avg_efr(cfg.promotion_with_threshold(threshold)),
        })
    return rows


# ---------------------------------------------------------------- Figure 7

def figure7_rows(benchmarks: Optional[Sequence[str]] = None,
                 thresholds: Sequence[int] = (64, 128, 256)) -> List[dict]:
    """Percent change in mispredicted conditional branches vs baseline.

    Promoted-branch faults count as mispredictions, as in the paper.
    """
    names = _benchmarks(benchmarks)
    prefetch_frontend(names, [cfg.BASELINE] + [
        cfg.promotion_with_threshold(t) for t in thresholds])
    rows = []
    for name in names:
        base = frontend_result(name, cfg.BASELINE).stats.total_cond_mispredicts
        row = {"benchmark": name}
        for threshold in thresholds:
            promo = frontend_result(
                name, cfg.promotion_with_threshold(threshold)
            ).stats.total_cond_mispredicts
            row[f"threshold={threshold}"] = _pct_change(promo, base)
        rows.append(row)
    return rows


# ---------------------------------------------------------------- Table 3

def table3_rows(benchmarks: Optional[Sequence[str]] = None) -> List[dict]:
    """Predictions required per fetch: baseline vs promotion@64."""
    names = _benchmarks(benchmarks)
    prefetch_frontend(names, [cfg.BASELINE, cfg.PROMOTION])
    rows = []
    for label, config in (("baseline", cfg.BASELINE), ("threshold = 64", cfg.PROMOTION)):
        buckets = {"0 or 1": 0.0, "2": 0.0, "3": 0.0}
        for name in names:
            result = frontend_result(name, config)
            for key, value in result.stats.predictions_buckets().items():
                buckets[key] += value / len(names)
        rows.append({"configuration": label, **buckets})
    return rows


# ------------------------------------------------------------ Figures 9/10

def figure9_rows(benchmarks: Optional[Sequence[str]] = None) -> List[dict]:
    """Effective fetch rate, baseline vs unregulated packing."""
    names = _benchmarks(benchmarks)
    prefetch_frontend(names, [cfg.BASELINE, cfg.PACKING])
    rows = []
    for name in names:
        base = frontend_result(name, cfg.BASELINE).effective_fetch_rate
        pack = frontend_result(name, cfg.PACKING).effective_fetch_rate
        rows.append({
            "benchmark": name,
            "baseline": base,
            "packing": pack,
            "pct_increase": _pct_change(pack, base),
        })
    return rows


def figure10_rows(benchmarks: Optional[Sequence[str]] = None) -> List[dict]:
    """Effective fetch rates for all five configurations."""
    names = _benchmarks(benchmarks)
    prefetch_frontend(names, [config for _label, config in FIG10_CONFIGS])
    rows = []
    for name in names:
        row = {"benchmark": name}
        for label, config in FIG10_CONFIGS:
            row[label] = frontend_result(name, config).effective_fetch_rate
        row["pct_both_over_baseline"] = _pct_change(
            row["promotion,packing"], row["baseline"]
        )
        rows.append(row)
    return rows


# ---------------------------------------------------------------- Table 4

TABLE4_POLICIES = [
    ("unreg", PackingPolicy.UNREGULATED),
    ("cost-reg", PackingPolicy.COST_REGULATED),
    ("n=2", PackingPolicy.CHUNK2),
    ("n=4", PackingPolicy.CHUNK4),
]


def table4_rows(benchmarks: Optional[Sequence[str]] = None) -> dict:
    """Packing regulation: % increase in cache miss cycles over promotion.

    Also reports the trace-cache miss-count inflation (where the redundancy
    signal is strongest at our scaled run lengths) and the average
    effective fetch rate per policy, mirroring the paper's final row.
    """
    names = list(benchmarks) if benchmarks is not None else list(TABLE4_BENCHMARKS)
    prefetch_frontend(names, [cfg.PROMOTION] + [
        cfg.promotion_with_packing(policy) for _label, policy in TABLE4_POLICIES])
    rows = []
    efr_sums = {label: 0.0 for label, _ in TABLE4_POLICIES}
    for name in names:
        promo = frontend_result(name, cfg.PROMOTION)
        row = {"benchmark": name}
        for label, policy in TABLE4_POLICIES:
            result = frontend_result(name, cfg.promotion_with_packing(policy))
            row[label] = _pct_change(result.stats.cache_miss_cycles,
                                     max(1, promo.stats.cache_miss_cycles))
            row[label + "_tc_miss"] = _pct_change(result.tc_misses, max(1, promo.tc_misses))
        rows.append(row)
    for label, policy in TABLE4_POLICIES:
        rates = [
            frontend_result(name, cfg.promotion_with_packing(policy)).effective_fetch_rate
            for name in names
        ]
        efr_sums[label] = sum(rates) / len(rates)
    return {"rows": rows, "avg_efr": efr_sums}


# ----------------------------------------------------------- Figures 11-16

def figure11_rows(benchmarks: Optional[Sequence[str]] = None,
                  perfect: bool = False) -> List[dict]:
    """IPC of icache / baseline / promotion+cost-regulated-packing machines.

    ``perfect=True`` gives Figure 16 (ideal memory disambiguation).
    """
    rows = []
    configs = _machine_configs(perfect)
    names = _benchmarks(benchmarks)
    prefetch_machine(names, [config for _label, config in configs])
    for name in names:
        row = {"benchmark": name}
        for label, machine_config in configs:
            row[label] = machine_result(name, machine_config).ipc
        row["pct_new_over_baseline"] = _pct_change(
            row["promotion,packing"], row["baseline"]
        )
        row["pct_new_over_icache"] = _pct_change(row["promotion,packing"], row["icache"])
        rows.append(row)
    return rows


def figure16_rows(benchmarks: Optional[Sequence[str]] = None) -> List[dict]:
    """Figure 11 with the ideal aggressive execution engine."""
    return figure11_rows(benchmarks, perfect=True)


def figure12_rows(benchmarks: Optional[Sequence[str]] = None) -> List[dict]:
    """Fetch-cycle accounting for the promotion+packing machine."""
    rows = []
    config = _machine_configs(False)[2][1]
    names = _benchmarks(benchmarks)
    prefetch_machine(names, [config])
    for name in names:
        result = machine_result(name, config)
        total = max(1, sum(result.cycle_accounting.values()))
        row = {"benchmark": name}
        for category in CycleCategory:
            row[category.value] = 100.0 * result.cycle_accounting[category] / total
        rows.append(row)
    return rows


def figure13_rows(benchmarks: Optional[Sequence[str]] = None) -> List[dict]:
    """% change in fetch cycles lost to mispredictions, vs baseline."""
    configs = _machine_configs(False)
    names = _benchmarks(benchmarks)
    prefetch_machine(names, [configs[1][1], configs[2][1]])
    rows = []
    for name in names:
        base = machine_result(name, configs[1][1]).mispredict_lost_cycles
        new = machine_result(name, configs[2][1]).mispredict_lost_cycles
        rows.append({"benchmark": name, "pct_change": _pct_change(new, max(1, base))})
    return rows


def figure14_rows(benchmarks: Optional[Sequence[str]] = None) -> List[dict]:
    """% change in mispredicted branches (conditional + indirect)."""
    configs = _machine_configs(False)
    names = _benchmarks(benchmarks)
    prefetch_machine(names, [configs[1][1], configs[2][1]])
    rows = []
    for name in names:
        base = machine_result(name, configs[1][1]).total_mispredicted_branches
        new = machine_result(name, configs[2][1]).total_mispredicted_branches
        rows.append({"benchmark": name, "pct_change": _pct_change(new, max(1, base))})
    return rows


def figure15_rows(benchmarks: Optional[Sequence[str]] = None) -> List[dict]:
    """% change in mispredicted-branch resolution time."""
    configs = _machine_configs(False)
    names = _benchmarks(benchmarks)
    prefetch_machine(names, [configs[1][1], configs[2][1]])
    rows = []
    for name in names:
        base = machine_result(name, configs[1][1]).avg_resolution_time
        new = machine_result(name, configs[2][1]).avg_resolution_time
        rows.append({
            "benchmark": name,
            "baseline_cycles": base,
            "new_cycles": new,
            "pct_change": _pct_change(new, max(0.001, base)),
        })
    return rows
