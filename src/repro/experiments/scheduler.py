"""Process-pool experiment scheduler.

The paper's tables and figures are grids of independent simulations:
(benchmark, configuration, run length) points.  This module fans a grid
out over worker processes and merges the results back into the runner's
caches, so experiment builders keep their simple serial loops — by the
time a builder iterates, every point it asks for is a memo hit.

Scheduling decisions:

* **Grouping.**  Points are grouped per benchmark and each group is one
  pool task: the oracle (correct-path) instruction stream is shared by
  every configuration of a benchmark, so computing it once per worker
  amortizes it exactly as the in-process runner does.
* **Cache-first.**  The parent serves every point it can from the memo
  and disk caches before spawning anything; a fully warm grid never
  creates a pool.
* **Degradation.**  ``jobs <= 1`` (the default on single-core boxes) or
  a single-benchmark grid runs inline in the parent — same results,
  no pickling, no process startup.

Worker count resolution: explicit ``jobs`` argument, else ``REPRO_JOBS``
from the environment, else ``os.cpu_count()``.

Workers inherit ``REPRO_CACHE_DIR`` and write the disk cache themselves,
so a parallel run leaves the same warm cache behind as a serial one.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments import runner

#: GridPoint.kind values.
FRONTEND = "frontend"
MACHINE = "machine"


@dataclass(frozen=True)
class GridPoint:
    """One simulation in an experiment grid.

    ``n=None`` means "the runner's default length for this benchmark",
    resolved in the parent process at schedule time (so monkeypatched or
    env-scaled lengths apply exactly once, consistently).
    ``warmup`` only applies to machine points.
    """

    kind: str
    benchmark: str
    config: Any
    n: Optional[int] = None
    warmup: bool = True

    def resolved(self) -> "GridPoint":
        if self.n is not None:
            return self
        if self.kind == FRONTEND:
            n = runner.default_length(self.benchmark)
        elif self.kind == MACHINE:
            n = runner.machine_length(self.benchmark)
        else:
            raise ValueError(f"unknown grid point kind: {self.kind!r}")
        return replace(self, n=n)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: argument > ``REPRO_JOBS`` > ``os.cpu_count()``."""
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS")
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                warnings.warn(
                    f"ignoring invalid REPRO_JOBS={raw!r} (not an integer)",
                    RuntimeWarning,
                    stacklevel=2,
                )
    if jobs is None:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def _run_point(point: GridPoint):
    """Execute one resolved point through the runner (memo+disk aware)."""
    if point.kind == FRONTEND:
        return runner.frontend_result(point.benchmark, point.config, point.n)
    return runner.machine_result(point.benchmark, point.config, point.n,
                                 warmup=point.warmup)


def _run_batch(points: List[GridPoint]) -> list:
    """Pool task: run one benchmark's points in a worker process.

    Goes through the runner so the worker computes the benchmark's
    program and oracle once, reuses them for every configuration in the
    batch, and persists each result to the shared disk cache.
    """
    return [_run_point(point) for point in points]


def _admit(point: GridPoint, result) -> None:
    if point.kind == FRONTEND:
        runner.admit_frontend_result(result, point.n)
    else:
        runner.admit_machine_result(result, point.n)


def run_grid(points: Sequence[GridPoint],
             jobs: Optional[int] = None) -> Dict[GridPoint, Any]:
    """Run every grid point; returns ``{resolved point: result}``.

    Duplicate points collapse to one simulation.  Results are also left
    in the runner's in-process memo, so subsequent direct
    ``frontend_result`` / ``machine_result`` calls are hits.
    """
    resolved: List[GridPoint] = []
    seen = set()
    for point in points:
        point = point.resolved()
        if point not in seen:
            seen.add(point)
            resolved.append(point)

    results: Dict[GridPoint, Any] = {}
    misses: List[GridPoint] = []
    for point in resolved:
        if point.kind == FRONTEND:
            cached = runner.cached_frontend_result(
                point.benchmark, point.config, point.n)
        else:
            cached = runner.cached_machine_result(
                point.benchmark, point.config, point.n, warmup=point.warmup)
        if cached is not None:
            results[point] = cached
        else:
            misses.append(point)
    if not misses:
        return results

    groups: Dict[str, List[GridPoint]] = {}
    for point in misses:
        groups.setdefault(point.benchmark, []).append(point)

    n_jobs = resolve_jobs(jobs)
    if n_jobs <= 1 or len(groups) <= 1:
        for point in misses:
            results[point] = _run_point(point)
        return results

    with ProcessPoolExecutor(max_workers=min(n_jobs, len(groups))) as pool:
        futures = {pool.submit(_run_batch, batch): batch
                   for batch in groups.values()}
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                batch = futures[future]
                for point, result in zip(batch, future.result()):
                    _admit(point, result)
                    results[point] = result
    return results


def prefetch_frontend(benchmarks: Sequence[str], configs: Sequence[Any],
                      n: Optional[int] = None,
                      jobs: Optional[int] = None) -> None:
    """Warm the caches for a benchmarks x front-end-configs grid."""
    run_grid([GridPoint(FRONTEND, b, c, n) for b in benchmarks for c in configs],
             jobs=jobs)


def prefetch_machine(benchmarks: Sequence[str], configs: Sequence[Any],
                     n: Optional[int] = None, warmup: bool = True,
                     jobs: Optional[int] = None) -> None:
    """Warm the caches for a benchmarks x machine-configs grid."""
    run_grid([GridPoint(MACHINE, b, c, n, warmup)
              for b in benchmarks for c in configs], jobs=jobs)
