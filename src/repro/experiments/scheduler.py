"""Supervised process-pool experiment scheduler.

The paper's tables and figures are grids of independent simulations:
(benchmark, configuration, run length) points.  This module fans a grid
out over worker processes and merges the results back into the runner's
caches, so experiment builders keep their simple serial loops — by the
time a builder iterates, every point it asks for is a memo hit.

Scheduling decisions:

* **Per-point fan-out.**  Each simulation is its own pool task, handed
  out **largest estimated cost first** (machine points cost roughly
  four front-end points of the same length, plus their warmup), with at
  most ``jobs`` tasks in flight so per-point deadlines measure runtime,
  not queueing.
* **Shared oracle traces.**  The parent pre-writes every oracle a
  missing point needs (:mod:`repro.experiments.tracefile`) and workers
  memory-map them instead of re-executing.
* **Cache-first.**  The parent serves every point it can from the memo
  and disk caches — and from the grid's checkpoint journal
  (:mod:`repro.experiments.checkpoint`) — before spawning anything; a
  fully warm grid never creates a pool.
* **Degradation.**  ``jobs <= 1`` (the default on single-core boxes) or
  a single-point grid runs inline in the parent — same results, no
  pickling, no process startup.

Supervision (see :mod:`repro.experiments.faults` for the taxonomy and
knobs): a worker that crashes or hits an OS-level IO error is a
*transient* failure — the point is retried up to ``REPRO_RETRIES`` times
with exponential backoff and the pool is respawned; a point that blows
its cost-scaled ``REPRO_POINT_TIMEOUT`` deadline gets its hung worker
killed and is requeued; a pool that breaks repeatedly degrades the rest
of the grid to serial in-parent execution, which is always a safe floor
because injected faults never fire outside workers.  A *deterministic*
failure (simulation exception) is re-run once inline in the parent: if
it fails again the clean parent traceback propagates (fail-fast) or is
collected into the end-of-run :class:`~repro.experiments.faults.GridFailures`
report (``REPRO_KEEP_GOING`` / ``--keep-going``).  Completed points are
journaled as they finish, so an interrupted grid resumes from the
journal instead of recomputing.

When ``REPRO_VALIDATE`` arms the lockstep guard and a point's fast
stack diverges from the reference, the point is requeued **pinned to
the reference engine** (:func:`_Supervisor._divert_to_reference`) so
the grid still completes with trustworthy numbers; the divergence —
with its on-disk report path — is surfaced through
:func:`take_divergences` instead of killing the run.

Worker count resolution: explicit ``jobs`` argument, else ``REPRO_JOBS``
from the environment, else ``os.cpu_count()``.  An unparseable
``REPRO_JOBS`` warns once per process tree: workers inherit the parent's
already-warned state through the pool initializer.

Workers inherit ``REPRO_CACHE_DIR`` and write the disk cache themselves,
so a parallel run leaves the same warm cache behind as a serial one.
"""

from __future__ import annotations

import os
import signal
import time
from collections import deque
from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor,
                                ProcessPoolExecutor, wait)
from dataclasses import dataclass, replace
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.experiments import (checkpoint, diskcache, env, faults, runner,
                               tracefile, warnonce)
from repro.experiments.serialize import (
    frontend_result_from_dict,
    frontend_result_to_dict,
    machine_result_from_dict,
    machine_result_to_dict,
)

#: GridPoint.kind values.
FRONTEND = "frontend"
MACHINE = "machine"

#: Relative cost of one simulated machine instruction versus one
#: front-end instruction (the cycle-level core is roughly 4x slower).
_MACHINE_COST_FACTOR = 4

#: After this many pool breaks (crashed workers, killed hangs) the rest
#: of the grid runs serially in the parent instead of respawning again.
_MAX_POOL_BREAKS = 3


@dataclass(frozen=True)
class GridPoint:
    """One simulation in an experiment grid.

    ``n=None`` means "the runner's default length for this benchmark",
    resolved in the parent process at schedule time (so monkeypatched or
    env-scaled lengths apply exactly once, consistently).
    ``warmup`` only applies to machine points.
    """

    kind: str
    benchmark: str
    config: Any
    n: Optional[int] = None
    warmup: bool = True

    def resolved(self) -> "GridPoint":
        if self.n is not None:
            return self
        if self.kind == FRONTEND:
            n = runner.default_length(self.benchmark)
        elif self.kind == MACHINE:
            n = runner.machine_length(self.benchmark)
        else:
            raise ValueError(f"unknown grid point kind: {self.kind!r}")
        return replace(self, n=n)


@dataclass(frozen=True)
class _MachineBatch:
    """Several machine points of one benchmark run as one pool task.

    The members share (benchmark, length, warmup), so the worker drives
    them through :func:`repro.experiments.runner.run_machine_multi` and
    pays the oracle resolution and program build once for the whole
    batch.  Results, cache keys and journal entries stay strictly
    per-point — the batch is an execution grouping, not a cache unit.

    Batches are an optimistic fast path: any failure (exception,
    timeout, divergence) splits the batch back into its member points,
    which then go through the ordinary per-point supervision policy.
    """

    benchmark: str
    n: int
    warmup: bool
    points: Tuple[GridPoint, ...]


def _batch_machine_points(points: Sequence[GridPoint],
                          jobs: int) -> List[Any]:
    """Group compatible machine points into multi-config batches.

    Machine points sharing (benchmark, length, warmup) collapse into one
    :class:`_MachineBatch`; front-end points and singletons pass through
    unchanged.  With a parallel pool, batching only happens when enough
    units remain to keep every worker busy — otherwise per-point fan-out
    wins the makespan and the grouping is skipped.
    """
    groups: Dict[Tuple[str, int, bool], List[GridPoint]] = {}
    order: List[Any] = []
    for point in points:
        if point.kind == MACHINE:
            key = (point.benchmark, point.n, point.warmup)
            group = groups.get(key)
            if group is None:
                group = groups[key] = []
                order.append(("group", key))
            group.append(point)
        else:
            order.append(("point", point))
    units: List[Any] = []
    for tag, item in order:
        if tag == "point":
            units.append(item)
        else:
            members = groups[item]
            if len(members) >= 2:
                benchmark, n, warmup = item
                units.append(_MachineBatch(benchmark, n, warmup,
                                           tuple(members)))
            else:
                units.extend(members)
    if jobs > 1 and len(units) < min(jobs, len(points)):
        return list(points)  # batching would leave workers idle
    return units


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: argument > ``REPRO_JOBS`` > ``os.cpu_count()``."""
    if jobs is None:
        raw = env.get_raw("REPRO_JOBS")
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                warnonce.warn_once(
                    "repro-jobs",
                    f"ignoring invalid REPRO_JOBS={raw!r} (not an integer)",
                )
    if jobs is None:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def _estimated_cost(point: GridPoint) -> int:
    """Simulated-instruction cost estimate used for longest-first order.

    Machine points pay the cycle-level core's slowdown on their measured
    window plus an oracle-driven front-end warmup at the benchmark's
    full default length; front-end points pay their length directly.
    """
    if isinstance(point, _MachineBatch):
        return sum(_estimated_cost(member) for member in point.points)
    if point.kind == MACHINE:
        cost = _MACHINE_COST_FACTOR * point.n
        if point.warmup:
            cost += runner.default_length(point.benchmark)
        return cost
    return point.n


def _point_key(point: GridPoint) -> str:
    """The resolved point's content-hash cache key (runner-compatible)."""
    if point.kind == FRONTEND:
        return runner.frontend_cache_key(point.benchmark, point.config,
                                         point.n)
    return runner.machine_cache_key(point.benchmark, point.config, point.n,
                                    warmup=point.warmup)


#: Public aliases for the experiment service, which reuses the
#: scheduler's cost model and key scheme for admission control and
#: machine-wide request coalescing.
estimated_cost = _estimated_cost
point_key = _point_key


def cost_scale(point: GridPoint) -> float:
    """Per-point timeout/lease multiplier relative to the reference cost.

    A point estimated at :data:`faults.COST_REFERENCE` simulated
    instructions gets scale 1.0; heavier points get proportionally more
    budget and lighter ones never get less than the base.  The
    supervisor, the service's pooled dispatch, and fleet lease TTLs all
    share this factor so one knob setting means the same thing on every
    execution path.
    """
    return max(1.0, _estimated_cost(point) / faults.COST_REFERENCE)


def deadline_point_timeout(points: Sequence[GridPoint],
                           deadline: Optional[float]) -> Optional[float]:
    """Base per-point timeout so a grid's budgets sum to ``deadline``.

    The supervisor scales its base timeout by each point's estimated
    cost relative to :data:`faults.COST_REFERENCE`; normalizing the base
    by the grid's total scale factor hands every point a proportional
    share of the caller's wall-clock budget (exact when points run
    serially, conservative when they run in parallel — a parallel grid
    finishes *earlier* than the budget assumes, never later because of
    this bound).  Returns None for no/non-positive deadline or an empty
    grid.
    """
    if deadline is None or deadline <= 0 or not points:
        return None
    total_scale = sum(cost_scale(point) for point in points)
    if total_scale <= 0:
        return None
    return deadline / total_scale


def _result_to_payload(point: GridPoint, result) -> Dict[str, Any]:
    """Serialize one result for the checkpoint journal."""
    if point.kind == FRONTEND:
        return frontend_result_to_dict(result)
    return machine_result_to_dict(result)


def _result_from_payload(point: GridPoint, payload: Dict[str, Any]):
    """Rebuild a journaled result; raises on a malformed payload."""
    if point.kind == FRONTEND:
        return frontend_result_from_dict(payload)
    return machine_result_from_dict(payload)


def _oracle_needs(point) -> List[Tuple[str, int]]:
    """The (benchmark, length) oracle streams this point will consume."""
    if isinstance(point, _MachineBatch):
        needs: List[Tuple[str, int]] = []
        for member in point.points:
            needs.extend(_oracle_needs(member))
        return needs
    if point.kind == FRONTEND:
        return [(point.benchmark, point.n)]
    if point.warmup:
        return [(point.benchmark, runner.default_length(point.benchmark))]
    return []  # the core itself runs the program, not the oracle


def _prewrite_traces(points: Sequence[GridPoint]) -> None:
    """Compute each needed oracle once and persist its trace file, so
    every worker memory-maps instead of functionally re-executing."""
    needed = set()
    for point in points:
        needed.update(_oracle_needs(point))
    for benchmark, n in sorted(needed):
        runner.get_oracle(benchmark, n)  # computes + stores on miss


def _worker_init(emitted_keys: Tuple[str, ...]) -> None:
    """Pool initializer: inherit the parent's already-warned state so a
    grid emits each environment diagnostic once, not once per worker,
    and arm the fault-injection harness (faults fire in workers only).

    Forked workers also inherit the parent's signal dispositions; when
    the parent is the experiment service, SIGTERM is wired to its drain
    handler — useless in a worker, and it would shrug off the
    terminate() that :func:`_kill_pool` relies on.  Restore the default
    so workers stay killable."""
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (OSError, ValueError):
        pass  # not the worker main thread / platform without SIGTERM
    warnonce.seed(emitted_keys)
    faults.mark_worker()
    # Timing-memo tables are keyed by variant object identity; forked
    # workers must not trust entries recorded against the parent's
    # engines (identical ids after fork, but independent mutation
    # histories once workers diverge).  Start each worker cold.
    from repro.core import memo as machine_memo
    machine_memo.reset_tables()


def _run_point(point, engine: Optional[str] = None):
    """Execute one resolved point (or machine batch) through the runner.

    ``engine="reference"`` pins the run to the frozen reference stack —
    the supervisor's degradation path after a detected divergence.
    Batches return the member results in member order.
    """
    if isinstance(point, _MachineBatch):
        return runner.run_machine_multi(
            point.benchmark, [member.config for member in point.points],
            point.n, warmup=point.warmup, engine=engine)
    if point.kind == FRONTEND:
        return runner.frontend_result(point.benchmark, point.config, point.n,
                                      engine=engine)
    return runner.machine_result(point.benchmark, point.config, point.n,
                                 warmup=point.warmup, engine=engine)


def _run_point_task(point: GridPoint, ordinal: int, attempt: int, key: str,
                    engine: Optional[str] = None):
    """Pool-task wrapper: fault-injection hooks around one point.

    The hooks are no-ops unless this process is an armed worker *and*
    ``REPRO_FAULTS`` is set, so the production path pays two tuple
    checks per point.
    """
    faults.inject_before(
        key, ordinal, attempt,
        trace_paths=[tracefile.trace_path(b, n)
                     for b, n in _oracle_needs(point)])
    result = _run_point(point, engine=engine)
    faults.inject_after(key, ordinal, attempt,
                        cache_path=diskcache.entry_path(key))
    return result


#: Public aliases for the experiment service and fleet workers, which
#: execute individual points (with the same fault-injection hooks the
#: local pool gets) outside a grid supervisor.
run_point = _run_point
run_point_task = _run_point_task


def _admit(point: GridPoint, result) -> None:
    if point.kind == FRONTEND:
        runner.admit_frontend_result(result, point.n)
    else:
        runner.admit_machine_result(result, point.n)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcibly stop a pool with a hung worker.

    ``shutdown`` alone would block behind the hang: terminate the worker
    processes first (best-effort — ``_processes`` is executor-private,
    so any failure just falls back to an abandoned pool), then release
    the executor without waiting.
    """
    try:
        processes = dict(getattr(pool, "_processes", None) or {})
        for process in processes.values():
            process.kill()  # SIGKILL: a hung worker may shrug off SIGTERM
    except Exception:
        pass
    pool.shutdown(wait=False, cancel_futures=True)


@dataclass(frozen=True)
class _Policy:
    """Resolved supervision knobs for one grid run."""

    jobs: int
    max_retries: int
    timeout: Optional[float]   #: base seconds at faults.COST_REFERENCE cost
    backoff: float             #: exponential backoff base seconds
    keep_going: bool


class _Supervisor:
    """Drives a grid's miss list to completion under the retry policy."""

    def __init__(self, misses: Sequence[GridPoint],
                 keys: Dict[GridPoint, str], policy: _Policy,
                 journal: checkpoint.Journal):
        # Longest first: with independent points, scheduling the most
        # expensive work early minimizes the makespan straggler.
        self.order = sorted(misses, key=_estimated_cost, reverse=True)
        self.ordinals = {point: i for i, point in enumerate(self.order)}
        self.keys = keys
        self.policy = policy
        self.journal = journal
        self.attempts = {point: 0 for point in self.order}
        self.failures: List[faults.PointFailure] = []
        self.results: Dict[GridPoint, Any] = {}
        self.pool_breaks = 0
        #: Per-point engine pin after a detected divergence.
        self.engine_overrides: Dict[GridPoint, str] = {}
        #: Divergences handled gracefully (the grid still completed);
        #: surfaced in the end-of-run table, not raised.
        self.divergences: List[faults.PointFailure] = []

    # ------------------------------------------------------------ outcomes

    def _task_key(self, unit) -> str:
        """The cache key identifying a task (first member for batches)."""
        if isinstance(unit, _MachineBatch):
            return self.keys[unit.points[0]]
        return self.keys[unit]

    def _record(self, point, result) -> None:
        """A point completed: admit, remember, journal.

        A batch records each member under its own per-point key.
        """
        if isinstance(point, _MachineBatch):
            for member, member_result in zip(point.points, result):
                self._record(member, member_result)
            return
        _admit(point, result)
        self.results[point] = result
        self.journal.record(self.keys[point], point.kind,
                            _result_to_payload(point, result))

    def _split_batch(self, batch: _MachineBatch,
                     pending: Deque) -> None:
        """A batch hit trouble: degrade to per-point supervision.

        Members are requeued as ordinary points (no retry consumed — the
        batch was an optimistic grouping, not an attempt of any single
        point) and inherit the batch's engine pin, if any.
        """
        override = self.engine_overrides.get(batch)
        ordinal = self.ordinals.get(batch, 0)
        for member in batch.points:
            self.attempts.setdefault(member, 0)
            self.ordinals.setdefault(member, ordinal)
            if override is not None:
                self.engine_overrides.setdefault(member, override)
            pending.append(member)

    def _fail(self, point: GridPoint, kind: str, exc: BaseException,
              traceback: str = "", attempts: Optional[int] = None) -> None:
        """A point is out of options: report it, or raise right now.

        ``attempts`` is the number of executions actually consumed; the
        default covers the deterministic case (prior transient attempts
        plus the failing run itself).
        """
        if attempts is None:
            attempts = self.attempts[point] + 1
        self.failures.append(faults.PointFailure(
            point=point, kind=kind, attempts=attempts,
            error=faults.format_error(exc), traceback=traceback))
        if self.policy.keep_going:
            return
        if kind == faults.DETERMINISTIC and isinstance(exc, Exception):
            raise exc  # the clean inline traceback, not a pool wrapper
        raise faults.GridFailures(self.failures, self.results)

    def _retry_inline(self, point: GridPoint, pool_exc: BaseException) -> None:
        """Deterministic pool failure: re-run once in the parent.

        A real simulation bug reproduces here with a clean traceback; a
        failure that only existed in the worker (an injected fault, a
        poisoned inherited state) simply succeeds and the result counts.
        """
        del pool_exc  # superseded by the inline outcome either way
        try:
            result = _run_point(point, engine=self.engine_overrides.get(point))
        except Exception as exc:
            # Consumed: prior transient attempts, the pool run, this one.
            self._fail(point, faults.DETERMINISTIC, exc,
                       traceback=faults.capture_traceback(exc),
                       attempts=self.attempts[point] + 2)
        else:
            self._record(point, result)

    def _divert_to_reference(self, point: GridPoint, exc: BaseException,
                             pending: Deque[GridPoint]) -> None:
        """Divergence: record it, pin the point to the reference engine,
        and requeue so the grid still completes with trustworthy numbers.

        The divergence is *not* a retryable failure — the same code
        reproduces it — and it is not fatal either: the frozen reference
        stack is the known-good contract, so the point reruns pinned to
        it (no retry consumed; this is degradation, not flakiness).  The
        report path, if one was written, rides along in the warning and
        the end-of-run table.
        """
        if self.engine_overrides.get(point) == "reference":
            # Already pinned and still failing — nothing left to degrade
            # to; treat it as an ordinary deterministic failure.
            self._fail(point, faults.DETERMINISTIC, exc,
                       traceback=faults.capture_traceback(exc))
            return
        report = getattr(exc, "report_path", None)
        warnonce.warn_once(
            f"divergence:{self.keys[point]}",
            f"{point.benchmark} {point.kind} point diverged from the "
            "reference engine"
            + (f" (report: {report})" if report else "")
            + "; re-running pinned to the reference stack")
        self.divergences.append(faults.PointFailure(
            point=point, kind=faults.DIVERGENCE,
            attempts=self.attempts[point] + 1,
            error=faults.format_error(exc)))
        self.engine_overrides[point] = "reference"
        pending.append(point)

    def _requeue_or_fail(self, point: GridPoint, kind: str,
                         exc: BaseException,
                         pending: Deque[GridPoint]) -> bool:
        """Transient/timeout failure: consume one retry or give up.

        Returns whether the point was requeued.
        """
        self.attempts[point] += 1
        if self.attempts[point] > self.policy.max_retries:
            self._fail(point, kind, exc, attempts=self.attempts[point])
            return False
        pending.append(point)
        return True

    # ----------------------------------------------------------- execution

    def run(self) -> Dict[GridPoint, Any]:
        """Run every miss; returns results or raises on failed points."""
        pending: Deque[GridPoint] = deque(self.order)
        if self.policy.jobs <= 1 or len(pending) <= 1:
            self._run_serial(pending)
        else:
            self._run_pooled(pending)
        if self.failures:
            raise faults.GridFailures(self.failures, self.results)
        return self.results

    def _run_serial(self, pending: Deque[GridPoint]) -> None:
        """Inline execution with the same retry policy (and no faults)."""
        while pending:
            point = pending.popleft()
            while True:
                try:
                    result = _run_point(
                        point, engine=self.engine_overrides.get(point))
                except Exception as exc:
                    if isinstance(point, _MachineBatch):
                        self._split_batch(point, pending)
                        break
                    kind = faults.classify(exc)
                    if kind == faults.DIVERGENCE:
                        self._divert_to_reference(point, exc, pending)
                        break
                    if kind == faults.DETERMINISTIC:
                        self._fail(point, kind, exc,
                                   traceback=faults.capture_traceback(exc))
                        break
                    self.attempts[point] += 1
                    if self.attempts[point] > self.policy.max_retries:
                        self._fail(point, kind, exc,
                                   attempts=self.attempts[point])
                        break
                    time.sleep(faults.backoff_delay(self.policy.backoff,
                                                    self.attempts[point]))
                else:
                    self._record(point, result)
                    break

    def _timeout_for(self, point: GridPoint) -> Optional[float]:
        """This point's wall-clock budget: base scaled by estimated cost."""
        base = self.policy.timeout
        if base is None:
            return None
        scale = max(1.0, _estimated_cost(point) / faults.COST_REFERENCE)
        return base * scale

    def _spawn_pool(self, remaining: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=max(1, min(self.policy.jobs, remaining)),
            initializer=_worker_init,
            initargs=(warnonce.snapshot(),))

    def _run_pooled(self, pending: Deque[GridPoint]) -> None:
        """The supervision loop: window, wait, classify, retry, respawn.

        ``KeyboardInterrupt`` (and any other control-flow exception)
        forcibly terminates the worker processes before propagating:
        workers may be mid-simulation — or deliberately hung by the
        chaos harness — and a graceful shutdown would block interpreter
        exit behind them, turning Ctrl-C into a hang.  The checkpoint
        journal has already flushed every completed point line by line,
        so the interrupted grid resumes from the journal.
        """
        pool: Optional[ProcessPoolExecutor] = None
        inflight: Dict[Any, GridPoint] = {}
        deadlines: Dict[Any, float] = {}
        try:
            while pending or inflight:
                if self.pool_breaks >= _MAX_POOL_BREAKS:
                    warnonce.warn_once(
                        "scheduler-serial-degrade",
                        f"worker pool broke {self.pool_breaks} times; "
                        "running the rest of the grid serially")
                    for point in inflight.values():
                        pending.append(point)  # abandoned with the pool
                    inflight.clear()
                    deadlines.clear()
                    self._run_serial(pending)
                    return
                if pool is None:
                    pool = self._spawn_pool(len(pending))
                # Keep at most ``jobs`` tasks in flight so a submit
                # timestamp approximates a start timestamp and deadlines
                # measure simulation time, not queue time.
                while pending and len(inflight) < self.policy.jobs:
                    point = pending.popleft()
                    try:
                        future = pool.submit(
                            _run_point_task, point, self.ordinals[point],
                            self.attempts[point], self._task_key(point),
                            self.engine_overrides.get(point))
                    except (BrokenExecutor, RuntimeError):
                        # The pool died between iterations; respawn next
                        # time around without charging the point a retry.
                        pending.appendleft(point)
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = None
                        self.pool_breaks += 1
                        break
                    inflight[future] = point
                    budget = self._timeout_for(point)
                    if budget is not None:
                        deadlines[future] = time.monotonic() + budget
                if pool is None:
                    continue
                wait_timeout = None
                if deadlines:
                    wait_timeout = max(
                        0.0, min(deadlines.values()) - time.monotonic())
                done, _ = wait(set(inflight), timeout=wait_timeout,
                               return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    point = inflight.pop(future)
                    deadlines.pop(future, None)
                    try:
                        result = future.result()
                    except Exception as exc:
                        if isinstance(exc, BrokenExecutor):
                            broken = True
                        if isinstance(point, _MachineBatch):
                            self._split_batch(point, pending)
                            continue
                        kind = faults.classify(exc)
                        if kind == faults.DIVERGENCE:
                            self._divert_to_reference(point, exc, pending)
                        elif kind == faults.DETERMINISTIC:
                            self._retry_inline(point, exc)
                        else:
                            self._requeue_or_fail(point, kind, exc, pending)
                    else:
                        self._record(point, result)
                # Hung points: deadline passed and the future still runs.
                now = time.monotonic()
                overdue = [future for future, deadline in deadlines.items()
                           if now >= deadline and future in inflight]
                if overdue:
                    for future in overdue:
                        point = inflight.pop(future)
                        deadlines.pop(future, None)
                        if isinstance(point, _MachineBatch):
                            self._split_batch(point, pending)
                            continue
                        self._requeue_or_fail(
                            point, faults.TIMEOUT,
                            faults.PointTimeout(
                                f"{point.benchmark} point exceeded its "
                                f"{self._timeout_for(point):.1f}s deadline"),
                            pending)
                    _kill_pool(pool)
                    pool = None
                    broken = True
                if broken:
                    if pool is not None:
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = None
                    # Collateral in-flight points died with the pool
                    # through no fault of their own: requeue them without
                    # consuming a retry (the culprit's own future already
                    # did, when it raised above).
                    for point in inflight.values():
                        pending.append(point)
                    inflight.clear()
                    deadlines.clear()
                    self.pool_breaks += 1
                    time.sleep(faults.backoff_delay(self.policy.backoff,
                                                    self.pool_breaks))
        except BaseException:
            if pool is not None:
                _kill_pool(pool)  # terminate workers; do not wait on them
                pool = None
            raise
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)


#: Divergences handled gracefully by grids in this process, in order.
_divergence_log: List[faults.PointFailure] = []


def take_divergences() -> List[faults.PointFailure]:
    """Drain the divergences recorded by grids run so far.

    A divergence is downgraded, not dropped: the grid completes on the
    reference engine and the event lands here for the end-of-run report
    (the CLI prints it beside the failure table).  Draining resets the
    log so each experiment reports only its own divergences.
    """
    global _divergence_log
    drained, _divergence_log = _divergence_log, []
    return drained


def run_grid(points: Sequence[GridPoint], jobs: Optional[int] = None, *,
             resume: Optional[bool] = None,
             max_retries: Optional[int] = None,
             timeout: Optional[float] = None,
             deadline: Optional[float] = None,
             keep_going: Optional[bool] = None) -> Dict[GridPoint, Any]:
    """Run every grid point; returns ``{resolved point: result}``.

    Duplicate points collapse to one simulation.  Results are also left
    in the runner's in-process memo, so subsequent direct
    ``frontend_result`` / ``machine_result`` calls are hits.

    Keyword arguments override their environment knobs (see
    :mod:`repro.experiments.faults`): ``resume`` replays this grid's
    checkpoint journal (default ``REPRO_RESUME``, on), ``max_retries``
    bounds transient retries (``REPRO_RETRIES``), ``timeout`` is the
    base per-point deadline in seconds (``REPRO_POINT_TIMEOUT``), and
    ``keep_going`` finishes the grid before raising
    :class:`~repro.experiments.faults.GridFailures` with the full
    failure table (``REPRO_KEEP_GOING``).

    ``deadline`` is a wall-clock budget in seconds for the whole request
    (the experiment service forwards its clients' deadlines here): when
    no explicit/environment ``timeout`` is set, it is divided into
    cost-proportional per-point budgets through
    :func:`deadline_point_timeout`, so a bounded request can never be
    wedged by one hung point.
    """
    resolved: List[GridPoint] = []
    seen = set()
    for point in points:
        point = point.resolved()
        if point not in seen:
            seen.add(point)
            resolved.append(point)

    keys = {point: _point_key(point) for point in resolved}
    results: Dict[GridPoint, Any] = {}
    misses: List[GridPoint] = []
    for point in resolved:
        if point.kind == FRONTEND:
            cached = runner.cached_frontend_result(
                point.benchmark, point.config, point.n)
        else:
            cached = runner.cached_machine_result(
                point.benchmark, point.config, point.n, warmup=point.warmup)
        if cached is not None:
            results[point] = cached
        else:
            misses.append(point)

    journal = checkpoint.Journal(keys.values())
    if resume is None:
        resume = checkpoint.resume_default()
    if misses and resume:
        restored = journal.load()
        if restored:
            still_missing = []
            for point in misses:
                entry = restored.get(keys[point])
                if entry is None:
                    still_missing.append(point)
                    continue
                try:
                    result = _result_from_payload(point, entry[1])
                except Exception:
                    still_missing.append(point)  # malformed: recompute
                    continue
                _admit(point, result)
                results[point] = result
            misses = still_missing
    if not misses:
        journal.complete()
        return results

    resolved_timeout = faults.resolve_timeout(timeout)
    if resolved_timeout is None and deadline is not None:
        resolved_timeout = deadline_point_timeout(misses, deadline)
    policy = _Policy(jobs=resolve_jobs(jobs),
                     max_retries=faults.resolve_retries(max_retries),
                     timeout=resolved_timeout,
                     backoff=faults.resolve_backoff(),
                     keep_going=faults.resolve_keep_going(keep_going))
    units: List[Any] = list(misses)
    if runner.machine_multi_enabled():
        units = _batch_machine_points(misses, policy.jobs)
    if tracefile.enabled() and policy.jobs > 1 and len(units) > 1:
        _prewrite_traces(units)
    supervisor = _Supervisor(units, keys, policy, journal)
    try:
        computed = supervisor.run()
    except BaseException:
        journal.close()  # keep the journal so the next run resumes
        raise
    finally:
        _divergence_log.extend(supervisor.divergences)
    results.update(computed)
    journal.complete()
    return results


def prefetch_frontend(benchmarks: Sequence[str], configs: Sequence[Any],
                      n: Optional[int] = None,
                      jobs: Optional[int] = None) -> None:
    """Warm the caches for a benchmarks x front-end-configs grid."""
    run_grid([GridPoint(FRONTEND, b, c, n) for b in benchmarks for c in configs],
             jobs=jobs)


def prefetch_machine(benchmarks: Sequence[str], configs: Sequence[Any],
                     n: Optional[int] = None, warmup: bool = True,
                     jobs: Optional[int] = None) -> None:
    """Warm the caches for a benchmarks x machine-configs grid."""
    run_grid([GridPoint(MACHINE, b, c, n, warmup)
              for b in benchmarks for c in configs], jobs=jobs)
