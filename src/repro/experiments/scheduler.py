"""Process-pool experiment scheduler.

The paper's tables and figures are grids of independent simulations:
(benchmark, configuration, run length) points.  This module fans a grid
out over worker processes and merges the results back into the runner's
caches, so experiment builders keep their simple serial loops — by the
time a builder iterates, every point it asks for is a memo hit.

Scheduling decisions:

* **Per-point fan-out.**  Each simulation is its own pool task, handed
  out **largest estimated cost first** (machine points cost roughly
  four front-end points of the same length, plus their warmup).  The
  old per-benchmark batching serialized every configuration of the
  slowest benchmark on one worker, so total wall clock was bounded by
  the largest *batch*; longest-first per-point scheduling bounds it by
  the largest *point*.
* **Shared oracle traces.**  What made batching attractive — computing
  each benchmark's oracle stream once — is now handled by the binary
  trace files (:mod:`repro.experiments.tracefile`): the parent
  pre-writes every oracle a missing point needs, and workers
  memory-map them instead of re-executing.
* **Cache-first.**  The parent serves every point it can from the memo
  and disk caches before spawning anything; a fully warm grid never
  creates a pool.
* **Degradation.**  ``jobs <= 1`` (the default on single-core boxes) or
  a single-point grid runs inline in the parent — same results, no
  pickling, no process startup.

Worker count resolution: explicit ``jobs`` argument, else ``REPRO_JOBS``
from the environment, else ``os.cpu_count()``.  An unparseable
``REPRO_JOBS`` warns once per process tree: workers inherit the parent's
already-warned state through the pool initializer.

Workers inherit ``REPRO_CACHE_DIR`` and write the disk cache themselves,
so a parallel run leaves the same warm cache behind as a serial one.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments import runner, tracefile, warnonce

#: GridPoint.kind values.
FRONTEND = "frontend"
MACHINE = "machine"

#: Relative cost of one simulated machine instruction versus one
#: front-end instruction (the cycle-level core is roughly 4x slower).
_MACHINE_COST_FACTOR = 4


@dataclass(frozen=True)
class GridPoint:
    """One simulation in an experiment grid.

    ``n=None`` means "the runner's default length for this benchmark",
    resolved in the parent process at schedule time (so monkeypatched or
    env-scaled lengths apply exactly once, consistently).
    ``warmup`` only applies to machine points.
    """

    kind: str
    benchmark: str
    config: Any
    n: Optional[int] = None
    warmup: bool = True

    def resolved(self) -> "GridPoint":
        if self.n is not None:
            return self
        if self.kind == FRONTEND:
            n = runner.default_length(self.benchmark)
        elif self.kind == MACHINE:
            n = runner.machine_length(self.benchmark)
        else:
            raise ValueError(f"unknown grid point kind: {self.kind!r}")
        return replace(self, n=n)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: argument > ``REPRO_JOBS`` > ``os.cpu_count()``."""
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS")
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                warnonce.warn_once(
                    "repro-jobs",
                    f"ignoring invalid REPRO_JOBS={raw!r} (not an integer)",
                )
    if jobs is None:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def _estimated_cost(point: GridPoint) -> int:
    """Simulated-instruction cost estimate used for longest-first order.

    Machine points pay the cycle-level core's slowdown on their measured
    window plus an oracle-driven front-end warmup at the benchmark's
    full default length; front-end points pay their length directly.
    """
    if point.kind == MACHINE:
        cost = _MACHINE_COST_FACTOR * point.n
        if point.warmup:
            cost += runner.default_length(point.benchmark)
        return cost
    return point.n


def _oracle_needs(point: GridPoint) -> List[Tuple[str, int]]:
    """The (benchmark, length) oracle streams this point will consume."""
    if point.kind == FRONTEND:
        return [(point.benchmark, point.n)]
    if point.warmup:
        return [(point.benchmark, runner.default_length(point.benchmark))]
    return []  # the core itself runs the program, not the oracle


def _prewrite_traces(points: Sequence[GridPoint]) -> None:
    """Compute each needed oracle once and persist its trace file, so
    every worker memory-maps instead of functionally re-executing."""
    needed = set()
    for point in points:
        needed.update(_oracle_needs(point))
    for benchmark, n in sorted(needed):
        runner.get_oracle(benchmark, n)  # computes + stores on miss


def _worker_init(emitted_keys: Tuple[str, ...]) -> None:
    """Pool initializer: inherit the parent's already-warned state so a
    grid emits each environment diagnostic once, not once per worker."""
    warnonce.seed(emitted_keys)


def _run_point(point: GridPoint):
    """Execute one resolved point through the runner (memo+disk aware)."""
    if point.kind == FRONTEND:
        return runner.frontend_result(point.benchmark, point.config, point.n)
    return runner.machine_result(point.benchmark, point.config, point.n,
                                 warmup=point.warmup)


def _admit(point: GridPoint, result) -> None:
    if point.kind == FRONTEND:
        runner.admit_frontend_result(result, point.n)
    else:
        runner.admit_machine_result(result, point.n)


def run_grid(points: Sequence[GridPoint],
             jobs: Optional[int] = None) -> Dict[GridPoint, Any]:
    """Run every grid point; returns ``{resolved point: result}``.

    Duplicate points collapse to one simulation.  Results are also left
    in the runner's in-process memo, so subsequent direct
    ``frontend_result`` / ``machine_result`` calls are hits.
    """
    resolved: List[GridPoint] = []
    seen = set()
    for point in points:
        point = point.resolved()
        if point not in seen:
            seen.add(point)
            resolved.append(point)

    results: Dict[GridPoint, Any] = {}
    misses: List[GridPoint] = []
    for point in resolved:
        if point.kind == FRONTEND:
            cached = runner.cached_frontend_result(
                point.benchmark, point.config, point.n)
        else:
            cached = runner.cached_machine_result(
                point.benchmark, point.config, point.n, warmup=point.warmup)
        if cached is not None:
            results[point] = cached
        else:
            misses.append(point)
    if not misses:
        return results

    n_jobs = resolve_jobs(jobs)
    if n_jobs <= 1 or len(misses) <= 1:
        for point in misses:
            results[point] = _run_point(point)
        return results

    if tracefile.enabled():
        _prewrite_traces(misses)
    # Longest first: with independent points, scheduling the most
    # expensive work early minimizes the makespan straggler.
    order = sorted(misses, key=_estimated_cost, reverse=True)
    with ProcessPoolExecutor(max_workers=min(n_jobs, len(order)),
                             initializer=_worker_init,
                             initargs=(warnonce.snapshot(),)) as pool:
        futures = {pool.submit(_run_point, point): point for point in order}
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                point = futures[future]
                result = future.result()
                _admit(point, result)
                results[point] = result
    return results


def prefetch_frontend(benchmarks: Sequence[str], configs: Sequence[Any],
                      n: Optional[int] = None,
                      jobs: Optional[int] = None) -> None:
    """Warm the caches for a benchmarks x front-end-configs grid."""
    run_grid([GridPoint(FRONTEND, b, c, n) for b in benchmarks for c in configs],
             jobs=jobs)


def prefetch_machine(benchmarks: Sequence[str], configs: Sequence[Any],
                     n: Optional[int] = None, warmup: bool = True,
                     jobs: Optional[int] = None) -> None:
    """Warm the caches for a benchmarks x machine-configs grid."""
    run_grid([GridPoint(MACHINE, b, c, n, warmup)
              for b in benchmarks for c in configs], jobs=jobs)
