"""JSON (de)serialization of simulation results for the disk cache.

Results cross two boundaries: worker processes return them by pickle
(handled natively by dataclasses), and the disk cache stores them as
versioned JSON.  JSON needs care because the result types hold
``Counter`` objects keyed by enums or tuples:

* ``size_reason_histogram``: ``(size, FetchReason) -> count`` becomes a
  sorted ``[[size, reason_name, count], ...]`` list;
* ``cycle_accounting``: ``CycleCategory -> count`` becomes a name-keyed
  dict;
* ``fill_reasons``: ``FinalizeReason -> count`` likewise.

Serialization is canonical (sorted keys, sorted histogram rows), so two
runs that produced equal results dump to byte-identical JSON — the
scheduler's serial-vs-parallel equivalence test relies on this.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict

from repro.core.machine import MachineResult
from repro.experiments.cachekey import (
    config_from_dict,
    config_to_dict,
)
from repro.frontend.simulator import FrontEndResult
from repro.frontend.stats import CycleCategory, FetchReason, FetchStats
from repro.trace.segment import FinalizeReason


def _stats_to_dict(stats: FetchStats) -> Dict[str, Any]:
    return {
        "fetches": stats.fetches,
        "useful_instructions": stats.useful_instructions,
        "size_reason_histogram": sorted(
            [size, reason.name, count]
            for (size, reason), count in stats.size_reason_histogram.items()
        ),
        "predictions_histogram": sorted(
            [n, count] for n, count in stats.predictions_histogram.items()
        ),
        "cycle_accounting": {
            cat.name: count for cat, count in sorted(
                stats.cycle_accounting.items(), key=lambda kv: kv[0].name)
        },
        "tc_fetches": stats.tc_fetches,
        "icache_fetches": stats.icache_fetches,
        "cond_branches": stats.cond_branches,
        "cond_mispredicts": stats.cond_mispredicts,
        "promoted_branches": stats.promoted_branches,
        "promoted_faults": stats.promoted_faults,
        "indirect_jumps": stats.indirect_jumps,
        "indirect_mispredicts": stats.indirect_mispredicts,
        "cache_miss_cycles": stats.cache_miss_cycles,
    }


def _stats_from_dict(data: Dict[str, Any]) -> FetchStats:
    stats = FetchStats(
        fetches=data["fetches"],
        useful_instructions=data["useful_instructions"],
        tc_fetches=data["tc_fetches"],
        icache_fetches=data["icache_fetches"],
        cond_branches=data["cond_branches"],
        cond_mispredicts=data["cond_mispredicts"],
        promoted_branches=data["promoted_branches"],
        promoted_faults=data["promoted_faults"],
        indirect_jumps=data["indirect_jumps"],
        indirect_mispredicts=data["indirect_mispredicts"],
        cache_miss_cycles=data["cache_miss_cycles"],
    )
    stats.size_reason_histogram = Counter({
        (size, FetchReason[name]): count
        for size, name, count in data["size_reason_histogram"]
    })
    stats.predictions_histogram = Counter({
        n: count for n, count in data["predictions_histogram"]
    })
    stats.cycle_accounting = Counter({
        CycleCategory[name]: count
        for name, count in data["cycle_accounting"].items()
    })
    return stats


def _fill_reasons_to_dict(fill_reasons: dict) -> Dict[str, int]:
    return {reason.name: count
            for reason, count in sorted(fill_reasons.items(),
                                        key=lambda kv: kv[0].name)}


def _fill_reasons_from_dict(data: Dict[str, int]) -> dict:
    return {FinalizeReason[name]: count for name, count in data.items()}


# ------------------------------------------------------------- front end

def frontend_result_to_dict(result: FrontEndResult) -> Dict[str, Any]:
    """JSON-able envelope payload for one front-end result."""
    return {
        "benchmark": result.benchmark,
        "config": config_to_dict(result.config),
        "stats": _stats_to_dict(result.stats),
        "cycles": result.cycles,
        "instructions_retired": result.instructions_retired,
        "recoveries": result.recoveries,
        "tc_hits": result.tc_hits,
        "tc_misses": result.tc_misses,
        "tc_writes": result.tc_writes,
        "fill_reasons": _fill_reasons_to_dict(result.fill_reasons),
        "l1i_misses": result.l1i_misses,
        "promotions": result.promotions,
        "demotions": result.demotions,
    }


def frontend_result_from_dict(data: Dict[str, Any]) -> FrontEndResult:
    """Rebuild a front-end result from its stored payload."""
    return FrontEndResult(
        benchmark=data["benchmark"],
        config=config_from_dict(data["config"]),
        stats=_stats_from_dict(data["stats"]),
        cycles=data["cycles"],
        instructions_retired=data["instructions_retired"],
        recoveries=data["recoveries"],
        tc_hits=data["tc_hits"],
        tc_misses=data["tc_misses"],
        tc_writes=data["tc_writes"],
        fill_reasons=_fill_reasons_from_dict(data["fill_reasons"]),
        l1i_misses=data["l1i_misses"],
        promotions=data["promotions"],
        demotions=data["demotions"],
    )


# --------------------------------------------------------------- machine

_MACHINE_INT_FIELDS = (
    "cycles", "retired", "fetches",
    "cond_branches", "promoted_branches", "cond_mispredicts",
    "promoted_faults", "indirect_jumps", "indirect_mispredicts",
    "resolution_time_sum", "resolution_count",
    "load_forwards", "dcache_accesses",
    "inactive_issued", "dormant_activations",
    "tc_hits", "tc_misses", "l1i_misses", "promotions", "demotions",
)


def machine_result_to_dict(result: MachineResult) -> Dict[str, Any]:
    """JSON-able envelope payload for one machine result."""
    out: Dict[str, Any] = {
        "benchmark": result.benchmark,
        "config": config_to_dict(result.config),
        "cycle_accounting": {
            cat.name: count for cat, count in sorted(
                result.cycle_accounting.items(), key=lambda kv: kv[0].name)
        },
        "fill_reasons": _fill_reasons_to_dict(result.fill_reasons),
    }
    for name in _MACHINE_INT_FIELDS:
        out[name] = getattr(result, name)
    return out


def machine_result_from_dict(data: Dict[str, Any]) -> MachineResult:
    """Rebuild a machine result from its stored payload."""
    result = MachineResult(
        benchmark=data["benchmark"],
        config=config_from_dict(data["config"]),
    )
    for name in _MACHINE_INT_FIELDS:
        setattr(result, name, data[name])
    result.cycle_accounting = Counter({
        CycleCategory[name]: count
        for name, count in data["cycle_accounting"].items()
    })
    result.fill_reasons = _fill_reasons_from_dict(data["fill_reasons"])
    return result
