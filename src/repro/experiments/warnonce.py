"""One-shot warnings with centrally resettable state.

Several experiment-layer knobs warn when their environment variable is
unparseable (``REPRO_SCALE``, ``REPRO_JOBS``).  Each used to carry its
own module-global "already warned" flag, which meant every new knob
re-invented the guard, tests had to know about every flag to reset them,
and pool workers re-emitted the same warning once per process.  This
module centralizes the state:

* :func:`warn_once` emits a warning the first time a key is seen;
* :func:`reset` clears everything (the test suite calls it between
  tests so ``pytest.warns`` assertions see a fresh state);
* :func:`snapshot` / :func:`seed` serialize the emitted-key set across
  process boundaries, so the experiment scheduler can tell its workers
  "the parent already warned about these" and a parallel grid prints
  each diagnostic once, not once per worker.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Tuple

_emitted: set = set()


def warn_once(key: str, message: str, category=RuntimeWarning,
              stacklevel: int = 2) -> bool:
    """Emit ``message`` unless ``key`` has already warned; returns whether
    the warning fired."""
    if key in _emitted:
        return False
    _emitted.add(key)
    warnings.warn(message, category, stacklevel=stacklevel + 1)
    return True


def reset() -> None:
    """Forget every emitted key (each warning may fire again)."""
    _emitted.clear()


def snapshot() -> Tuple[str, ...]:
    """The emitted keys, picklable for a pool-worker initializer."""
    return tuple(sorted(_emitted))


def seed(keys: Iterable[str]) -> None:
    """Mark ``keys`` as already emitted (worker-side of :func:`snapshot`)."""
    _emitted.update(keys)
