"""One-shot warnings with centrally resettable, optionally shared state.

Several experiment-layer knobs warn when their environment variable is
unparseable (``REPRO_SCALE``, ``REPRO_JOBS``).  Each used to carry its
own module-global "already warned" flag, which meant every new knob
re-invented the guard, tests had to know about every flag to reset them,
and pool workers re-emitted the same warning once per process.  This
module centralizes the state:

* :func:`warn_once` emits a warning the first time a key is seen;
* :func:`reset` clears everything (the test suite calls it between
  tests so ``pytest.warns`` assertions see a fresh state);
* :func:`snapshot` / :func:`seed` serialize the emitted-key set across
  process boundaries, so the experiment scheduler can tell its workers
  "the parent already warned about these" and a parallel grid prints
  each diagnostic once, not once per worker.

The snapshot/seed handoff only covers warnings the parent had already
emitted when the pool started.  For conditions that *arise* mid-run in
workers — a corrupt trace file that several workers discover at once —
``warn_once(..., shared=True)`` additionally takes a cross-process
latch: a marker file under ``$REPRO_CACHE_DIR/warned/`` claimed with an
exclusive create, so exactly one process in the whole tree emits the
warning.  The latch is best-effort: if the cache directory is not
writable the warning degrades to once-per-process, never to silence.
"""

from __future__ import annotations

import hashlib
import os
import warnings
from typing import Iterable, Tuple

_emitted: set = set()

_MARKER_SUFFIX = ".warned"


def _marker_dir():
    """Cross-process latch directory (beside the result cache)."""
    from repro.experiments import diskcache

    return diskcache.cache_dir() / "warned"


def _claim_shared(key: str) -> bool:
    """Try to claim the cross-process latch for ``key``.

    Returns True when this process won the claim (or the latch is
    unusable — better to warn per-process than not at all); False when
    another process already holds it.
    """
    directory = _marker_dir()
    name = hashlib.sha256(key.encode()).hexdigest() + _MARKER_SUFFIX
    try:
        directory.mkdir(parents=True, exist_ok=True)
        fd = os.open(directory / name, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        return True
    os.close(fd)
    return True


def warn_once(key: str, message: str, category=RuntimeWarning,
              stacklevel: int = 2, shared: bool = False) -> bool:
    """Emit ``message`` unless ``key`` has already warned; returns whether
    the warning fired.

    With ``shared=True`` the "already warned" state also spans
    processes (via a marker file beside the result cache), so a pool of
    workers that all trip over the same condition produce one warning
    machine-wide instead of one per worker.
    """
    if key in _emitted:
        return False
    _emitted.add(key)
    if shared and not _claim_shared(key):
        return False
    warnings.warn(message, category, stacklevel=stacklevel + 1)
    return True


def reset() -> None:
    """Forget every emitted key (each warning may fire again).

    Also clears the cross-process marker files, so tests that point
    ``REPRO_CACHE_DIR`` somewhere persistent still see shared warnings
    re-fire after a reset.
    """
    _emitted.clear()
    try:
        directory = _marker_dir()
        if directory.is_dir():
            for path in directory.glob(f"*{_MARKER_SUFFIX}"):
                try:
                    path.unlink()
                except OSError:
                    pass
    except OSError:
        pass


def snapshot() -> Tuple[str, ...]:
    """The emitted keys, picklable for a pool-worker initializer."""
    return tuple(sorted(_emitted))


def seed(keys: Iterable[str]) -> None:
    """Mark ``keys`` as already emitted (worker-side of :func:`snapshot`)."""
    _emitted.update(keys)
