"""Grid checkpoint journals: resume interrupted experiment runs cheaply.

A long experiment grid that dies at point 97 of 100 — SIGKILLed by an
OOM killer, a lost SSH session, a pre-empted batch node — should not
recompute the 96 finished points.  The scheduler journals every
completed point to ``$REPRO_CACHE_DIR/checkpoints/<grid-key>.jsonl`` as
it finishes; a re-run of the *same* grid replays the journal first and
schedules only the unjournaled remainder.

Design notes:

* **Grid identity is content-hashed.**  The journal file name is a
  SHA-256 over the sorted cache keys of every point in the grid, and
  those keys already fold in the benchmark profile, configuration, run
  length and simulator source fingerprint — so a journal can never be
  replayed against a different grid, a different code version, or
  different run-length scaling.  Stale journals are simply never found.
* **Append-only JSONL, tolerant reader.**  Each completed point is one
  flushed JSON line.  A SIGKILL mid-write leaves at most one partial
  trailing line, which the reader skips; every other line is still a
  valid checkpoint (this is why the format is line-oriented rather than
  a rewritten JSON document).
* **Journals are an accelerator.**  Like the result cache, a journal
  that cannot be written (full disk, read-only cache dir) disables
  itself with a single warning and the run proceeds; a journal that
  cannot be read is ignored.  ``REPRO_CHECKPOINTS=0`` turns the layer
  off; ``REPRO_RESUME=0`` keeps writing journals but never replays one.
* A grid that completes cleanly deletes its journal (the results are in
  the result cache; the journal's job is done).  A failed or killed run
  leaves it behind for the next attempt.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Iterable, Tuple

from repro.experiments import diskcache, env, warnonce
from repro.experiments.cachekey import CACHE_SCHEMA_VERSION, canonical_json

_SUFFIX = ".jsonl"


def enabled() -> bool:
    """Is journaling on?  (``REPRO_CHECKPOINTS=0`` turns it off.)"""
    return env.get_flag("REPRO_CHECKPOINTS", True)


def resume_default() -> bool:
    """Replay existing journals by default?  (``REPRO_RESUME=0`` opts out.)

    Defaulting to on is safe because journal entries are keyed by the
    same content hashes as the result cache: an entry that matches is,
    by construction, the result of simulating exactly this point with
    exactly this source tree.
    """
    return env.get_flag("REPRO_RESUME", True)


def checkpoint_dir() -> Path:
    """Journals live beside the result cache, under ``checkpoints/``."""
    return diskcache.cache_dir() / "checkpoints"


def grid_key(point_keys: Iterable[str]) -> str:
    """Stable identity of a grid: SHA-256 over its sorted point keys."""
    return hashlib.sha256(
        canonical_json(sorted(point_keys)).encode()).hexdigest()


class Journal:
    """Append-only completion journal for one grid run.

    ``point_keys`` is the full set of cache keys in the grid (hits and
    misses alike), so the journal's identity is stable regardless of how
    much of the grid the cache already covers.
    """

    def __init__(self, point_keys: Iterable[str]):
        keys = frozenset(point_keys)
        self._keys = keys
        self.path = checkpoint_dir() / f"{grid_key(keys)}{_SUFFIX}"
        self._handle = None
        self._broken = not enabled()
        #: lines appended by this process (service status surfaces the
        #: aggregate so operators can see journaling is actually live).
        self.recorded = 0

    def load(self) -> Dict[str, Tuple[str, Dict[str, Any]]]:
        """Replay the journal: ``{point key: (kind, payload dict)}``.

        Wrong-version lines, keys outside this grid and unparseable
        interior lines are skipped silently — a damaged journal degrades
        to a shorter one, never to an error or a wrong result.  A torn
        *final* line (the partial write a SIGKILL can leave, possibly
        with non-UTF-8 garbage — hence the byte read and lossy decode)
        is also skipped, but with one warning, since it means exactly
        one completed point will be recomputed.
        """
        if self._broken:
            return {}
        try:
            raw = self.path.read_bytes()
        except OSError:
            return {}
        text = raw.decode("utf-8", errors="replace")
        entries: Dict[str, Tuple[str, Dict[str, Any]]] = {}
        lines = text.split("\n")
        # A complete journal ends with a newline; anything after the
        # last newline is a torn trailing fragment.
        tail = lines.pop()
        for line in lines:
            obj = self._parse_line(line)
            if obj is not None:
                key, kind, payload = obj
                entries[key] = (kind, payload)
        if tail.strip():
            obj = self._parse_line(tail)
            if obj is not None:
                key, kind, payload = obj
                entries[key] = (kind, payload)
            else:
                try:
                    json.loads(tail)  # parseable-but-filtered: silent
                except ValueError:
                    warnonce.warn_once(
                        "checkpoint-torn-line",
                        f"grid checkpoint journal {self.path} ends in a "
                        "torn partial line (interrupted write); dropping "
                        "it and recomputing that point")
        return entries

    def _parse_line(self, line: str):
        """One journal line -> ``(key, kind, payload)`` or None."""
        try:
            obj = json.loads(line)
        except ValueError:
            return None
        if not isinstance(obj, dict) or obj.get("v") != CACHE_SCHEMA_VERSION:
            return None
        key = obj.get("key")
        kind = obj.get("kind")
        payload = obj.get("payload")
        if key in self._keys and isinstance(kind, str) \
                and isinstance(payload, dict):
            return key, kind, payload
        return None

    def record(self, key: str, kind: str, payload: Dict[str, Any]) -> None:
        """Append one completed point and flush it to the OS.

        A flush is enough for SIGKILL durability (the kernel keeps the
        written bytes); fsync-per-point would only add power-loss
        durability at a real cost on large grids.  Any write failure
        disables the journal for the rest of the run, with one warning.
        Keys outside this grid are refused — the replay side would filter
        them anyway, so recording one is always a caller bug and would
        only bloat the journal.
        """
        if self._broken or key not in self._keys:
            return
        try:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a")
            self._handle.write(json.dumps(
                {"v": CACHE_SCHEMA_VERSION, "key": key,
                 "kind": kind, "payload": payload},
                sort_keys=True, separators=(",", ":")) + "\n")
            self._handle.flush()
            self.recorded += 1
        except (OSError, ValueError, TypeError):
            self._broken = True
            self.close()
            warnonce.warn_once(
                "checkpoint-write",
                f"cannot write grid checkpoint journal {self.path}; "
                "journaling disabled for this run")

    def close(self) -> None:
        """Release the file handle, keeping the journal for a future resume."""
        handle, self._handle = self._handle, None
        if handle is not None:
            try:
                handle.close()
            except OSError:
                pass

    def complete(self) -> None:
        """The grid finished cleanly: the journal has done its job, drop it."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass


def purge() -> int:
    """Delete every checkpoint journal; returns the number removed.

    Used by ``runner.clear_caches(disk=True)`` so a full cache wipe does
    not leave behind journals that reference now-purged results.
    """
    directory = checkpoint_dir()
    removed = 0
    if not directory.is_dir():
        return removed
    for path in directory.glob(f"*{_SUFFIX}"):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed


def stats() -> Dict[str, int]:
    """Journal count and total bytes currently on disk (for reporting)."""
    directory = checkpoint_dir()
    entries = 0
    size = 0
    if directory.is_dir():
        for path in directory.glob(f"*{_SUFFIX}"):
            try:
                size += path.stat().st_size
                entries += 1
            except OSError:
                pass
    return {"entries": entries, "bytes": size}
