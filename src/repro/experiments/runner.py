"""Memoized simulation runners shared by every experiment.

The oracle (correct-path) instruction stream is configuration-independent,
so it is computed once per benchmark and replayed against every front-end
configuration.  Machine runs are cached per (benchmark, config, length).

Set the environment variable ``REPRO_QUICK=1`` to divide all run lengths
by four (used for fast CI passes); ``REPRO_SCALE=<float>`` applies an
arbitrary multiplier.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.config import FrontEndConfig, MachineConfig
from repro.core.machine import Machine, MachineResult
from repro.frontend.simulator import FrontEndResult, FrontEndSimulator, compute_oracle
from repro.isa.program import Program
from repro.workloads import generate_program
from repro.workloads.profiles import get_profile

_programs: Dict[str, Program] = {}
_oracles: Dict[Tuple[str, int], list] = {}
_frontend: Dict[Tuple[str, FrontEndConfig, int], FrontEndResult] = {}
_machine: Dict[Tuple[str, MachineConfig, int], MachineResult] = {}


def quick_scale() -> float:
    """Run-length multiplier from the environment."""
    if os.environ.get("REPRO_QUICK"):
        return 0.25
    try:
        return float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError:
        return 1.0


def clear_caches() -> None:
    """Drop every memoized program, oracle and result."""
    _programs.clear()
    _oracles.clear()
    _frontend.clear()
    _machine.clear()


def get_program(benchmark: str) -> Program:
    """Memoized synthetic program for a paper benchmark."""
    program = _programs.get(benchmark)
    if program is None:
        program = generate_program(benchmark)
        _programs[benchmark] = program
    return program


def default_length(benchmark: str) -> int:
    """Front-end run length for this benchmark, after env scaling."""
    return max(5_000, int(get_profile(benchmark).default_dynamic * quick_scale()))


def machine_length(benchmark: str) -> int:
    """Machine runs are slower; use a third of the front-end budget."""
    return max(5_000, default_length(benchmark) // 3)


def get_oracle(benchmark: str, n: Optional[int] = None) -> list:
    """Memoized correct-path instruction stream."""
    if n is None:
        n = default_length(benchmark)
    key = (benchmark, n)
    oracle = _oracles.get(key)
    if oracle is None:
        oracle = compute_oracle(get_program(benchmark), n)
        _oracles[key] = oracle
    return oracle


def frontend_result(benchmark: str, config: FrontEndConfig,
                    n: Optional[int] = None) -> FrontEndResult:
    """Memoized oracle-driven front-end run."""
    if n is None:
        n = default_length(benchmark)
    key = (benchmark, config, n)
    result = _frontend.get(key)
    if result is None:
        simulator = FrontEndSimulator(
            get_program(benchmark), config, oracle=get_oracle(benchmark, n)
        )
        result = simulator.run()
        _frontend[key] = result
    return result


def machine_result(benchmark: str, config: MachineConfig,
                   n: Optional[int] = None, warmup: bool = True) -> MachineResult:
    """Cycle-level machine run with functional front-end warmup.

    The pure-Python machine is ~4x slower than the oracle-driven front-end
    simulator, so measured machine windows are short; without warmup they
    would be dominated by predictor and trace-cache cold-start.  Standard
    practice (SimpleScalar's fast-forwarding): train the front-end
    structures functionally, then measure.
    """
    if n is None:
        n = machine_length(benchmark)
    key = (benchmark, config, n)
    result = _machine.get(key)
    if result is None:
        program = get_program(benchmark)
        engine = None
        if warmup:
            from repro.frontend.build import build_engine
            engine = build_engine(program, config.frontend,
                                  memory_config=config.memory)
            FrontEndSimulator(program, config.frontend,
                              oracle=get_oracle(benchmark), engine=engine).run()
        result = Machine(program, config, max_instructions=n,
                         engine=engine).run()
        _machine[key] = result
    return result
