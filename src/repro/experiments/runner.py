"""Memoized simulation runners shared by every experiment.

Results are served from a two-level cache:

1. in-process memo dicts (same objects returned on repeat calls — the
   oracle stream in particular is computed once per benchmark and
   replayed against every front-end configuration), and
2. the persistent on-disk cache (:mod:`repro.experiments.diskcache`),
   keyed by content hash of (benchmark profile, config, run length,
   simulator source fingerprint), so re-running an experiment script is
   warm across processes and across parallel workers.

The oracle stream additionally persists as a compact binary trace file
(:mod:`repro.experiments.tracefile`): it is computed at most once per
(benchmark, length) machine-wide, and every other process memory-maps
the stored trace instead of re-executing the program functionally.

Run-length environment knobs (they compose):

* ``REPRO_QUICK=1`` divides all run lengths by four (fast CI passes);
* ``REPRO_SCALE=<float>`` applies an arbitrary multiplier on top.

An unparseable ``REPRO_SCALE`` warns once (via the resettable
:mod:`repro.experiments.warnonce` registry) and falls back to 1.0 — it
used to be silently ignored, which made typos look like real runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import FrontEndConfig, MachineConfig
from repro.core.machine import Machine, MachineResult
from repro.experiments import diskcache, env, tracefile, warnonce
from repro.experiments.cachekey import cache_key
from repro.experiments.serialize import (
    frontend_result_from_dict,
    frontend_result_to_dict,
    machine_result_from_dict,
    machine_result_to_dict,
)
from repro.frontend.simulator import FrontEndResult, FrontEndSimulator, compute_oracle
from repro.isa.program import Program
from repro.workloads import generate_program
from repro.workloads.profiles import get_profile

_programs: Dict[str, Program] = {}
_oracles: Dict[Tuple[str, int], list] = {}
_frontend: Dict[Tuple[str, FrontEndConfig, int], FrontEndResult] = {}
_machine: Dict[Tuple[str, MachineConfig, int], MachineResult] = {}

def fast_machine_enabled() -> bool:
    """``REPRO_FAST_MACHINE``: the array-backed machine core (default on).

    ``REPRO_FAST_MACHINE=0`` pins every machine run to the frozen seed
    reference core (:mod:`repro.core.machine_reference`) — the escape
    hatch mirroring ``REPRO_FAST_FRONTEND`` for the front end.
    """
    return env.get_flag("REPRO_FAST_MACHINE", True)


def machine_multi_enabled() -> bool:
    """``REPRO_MACHINE_MULTI``: one-pass multi-config machine batching.

    When on (the default), the scheduler groups machine grid points that
    share (benchmark, length, warmup) into one :func:`run_machine_multi`
    batch so the oracle stream and program build are paid once per
    benchmark instead of once per config.  ``REPRO_MACHINE_MULTI=0``
    restores strictly per-point execution.
    """
    return env.get_flag("REPRO_MACHINE_MULTI", True)


def quick_scale() -> float:
    """Run-length multiplier from the environment.

    ``REPRO_QUICK`` contributes x0.25 and ``REPRO_SCALE`` multiplies on
    top of it, so ``REPRO_QUICK=1 REPRO_SCALE=0.5`` runs at x0.125 —
    they used to be exclusive, with QUICK silently masking SCALE.
    """
    scale = env.get_float("REPRO_SCALE", 1.0)
    if env.get_raw("REPRO_QUICK"):
        scale *= 0.25
    return scale


def clear_caches(disk: bool = False) -> None:
    """Drop every memoized program, oracle and result.

    With ``disk=True`` also purge the persistent on-disk state — the
    result cache (entries, size index, pins, quarantine, lock files),
    the stored oracle trace files, the checkpoint journals, and the
    cross-process warn-once marker files — then prune the now-empty
    bookkeeping subdirectories (``warned/``, ``checkpoints/``,
    ``divergences/``, ``traces/`` and friends).  It used to leave the
    markers and empty directories behind, so a "cleared" cache dir was
    never actually empty.  Used by benchmarks that need genuinely cold
    runs and by service operators resetting a shared cache.

    Also drops the compiled state living *inside* engines built so far
    (compiled fetch variants, fill-unit state machines, segment memos —
    see :func:`repro.frontend.build.reset_compiled_state`), so a
    long-lived process that switches configurations or regenerates
    programs (the differential fuzzer, notebook sessions) can never be
    served plans compiled against dropped programs.
    """
    import os

    from repro.experiments import checkpoint

    _programs.clear()
    _oracles.clear()
    _frontend.clear()
    _machine.clear()
    tracefile.clear_column_memo()
    warnonce.reset()
    from repro.frontend.build import reset_compiled_state
    reset_compiled_state()
    from repro.core import memo as machine_memo
    machine_memo.reset_tables()
    if disk:
        diskcache.purge()
        tracefile.purge()
        checkpoint.purge()
        root = diskcache.cache_dir()
        # warnonce.reset() above already removed the marker files; what
        # remains is pruning empty bookkeeping directories (missing or
        # non-empty ones are left alone — rmdir refuses non-empty dirs).
        for name in ("warned", "checkpoints", "divergences", "traces",
                     "locks", "pins", "quarantine"):
            try:
                os.rmdir(root / name)
            except OSError:
                pass


def get_program(benchmark: str) -> Program:
    """Memoized synthetic program for a paper benchmark."""
    program = _programs.get(benchmark)
    if program is None:
        program = generate_program(benchmark)
        _programs[benchmark] = program
    return program


def default_length(benchmark: str) -> int:
    """Front-end run length for this benchmark, after env scaling."""
    return max(5_000, int(get_profile(benchmark).default_dynamic * quick_scale()))


def machine_length(benchmark: str) -> int:
    """Machine runs are slower; use a third of the front-end budget."""
    return max(5_000, default_length(benchmark) // 3)


def get_oracle(benchmark: str, n: Optional[int] = None) -> list:
    """Memoized correct-path instruction stream.

    Cold path: try the shared binary trace file first (mmap read — no
    functional re-execution), and on a genuine miss compute the stream
    once and persist it for every other process on the machine.
    """
    if n is None:
        n = default_length(benchmark)
    key = (benchmark, n)
    oracle = _oracles.get(key)
    if oracle is None:
        program = get_program(benchmark)
        oracle = tracefile.load_oracle(benchmark, n, program)
        if oracle is None:
            # Memoize the column-carrying view: every bulk consumer of
            # this stream (stores, vector scans, the machine batcher's
            # shared resolution) then reuses one column build.
            oracle = tracefile.as_columns(compute_oracle(program, n))
            tracefile.store_oracle(benchmark, n, oracle)
        _oracles[key] = oracle
    return oracle


def frontend_cache_key(benchmark: str, config: FrontEndConfig, n: int) -> str:
    """The disk-cache key a front-end result is stored under."""
    return cache_key("frontend", benchmark, config, n)


def machine_cache_key(benchmark: str, config: MachineConfig, n: int,
                      warmup: bool = True) -> str:
    """The disk-cache key a machine result is stored under.

    The warmup window scales with the environment knobs, so it is part
    of the key — shared here so the scheduler's checkpoint journal and
    fault harness address exactly the entries the runner writes.
    """
    warmup_n = default_length(benchmark) if warmup else 0
    return cache_key("machine", benchmark, config, n,
                     extra={"warmup": warmup_n})


def cached_frontend_result(benchmark: str, config: FrontEndConfig,
                           n: Optional[int] = None) -> Optional[FrontEndResult]:
    """Memo- or disk-cached front-end result, or None (never computes)."""
    if n is None:
        n = default_length(benchmark)
    key = (benchmark, config, n)
    result = _frontend.get(key)
    if result is not None:
        return result
    payload = diskcache.load(frontend_cache_key(benchmark, config, n))
    if payload is not None:
        result = frontend_result_from_dict(payload)
        _frontend[key] = result
        return result
    return None


def admit_frontend_result(result: FrontEndResult, n: int) -> None:
    """Insert a result computed elsewhere (a pool worker) into the memo."""
    _frontend[(result.benchmark, result.config, n)] = result


def _discard_forced_divergence() -> None:
    """Drop any armed ``diverge`` fault latch before a pinned run.

    When a point is requeued with ``engine="reference"`` the lockstep
    guard is skipped, so a latch armed by the chaos harness for *this*
    point must not leak into a later validated point in the same
    worker.
    """
    from repro.validate import errors
    errors.arm_forced_divergence(0)


def _sample_params(key: str) -> Tuple[int, int]:
    """(stride, offset) for sample-mode validation of one grid point.

    The offset is seeded from the point's content-hash cache key, so
    the checked 1-in-N fetch slice is deterministic per point but
    varies across points — repeated CI runs cover the same slices,
    different points cover different ones.
    """
    from repro import validate
    stride = validate.sample_stride()
    return stride, int(key[:16], 16) % stride


def frontend_result(benchmark: str, config: FrontEndConfig,
                    n: Optional[int] = None,
                    engine: Optional[str] = None) -> FrontEndResult:
    """Oracle-driven front-end run, memoized in process and on disk.

    ``engine`` pins the run to one stack: ``"fast"`` or ``"reference"``
    (no validation — this is the scheduler's graceful-degradation path
    after a detected divergence).  With ``engine=None`` and
    ``REPRO_VALIDATE`` armed, the run goes through the lockstep
    differential guard; the two stacks are byte-identical on success,
    so validated, pinned and plain results all share one cache key.
    """
    if n is None:
        n = default_length(benchmark)
    result = cached_frontend_result(benchmark, config, n)
    if result is not None:
        return result
    from repro import validate
    if engine is not None:
        _discard_forced_divergence()
        from repro.frontend.build import build_engine
        built = build_engine(get_program(benchmark), config,
                             fast=(engine != "reference"))
        result = FrontEndSimulator(
            get_program(benchmark), config,
            oracle=get_oracle(benchmark, n), engine=built).run()
    elif validate.armed():
        from repro.frontend.build import fast_frontend_enabled
        from repro.validate.lockstep import lockstep_frontend
        if fast_frontend_enabled():
            stride, offset = _sample_params(
                frontend_cache_key(benchmark, config, n))
            result = lockstep_frontend(benchmark, config, n,
                                       stride=stride, offset=offset)
        else:
            # REPRO_FAST_FRONTEND=0: the "fast" stack is the reference
            # stack; a differential run would compare it to itself.
            result = FrontEndSimulator(
                get_program(benchmark), config,
                oracle=get_oracle(benchmark, n)).run()
    else:
        result = FrontEndSimulator(
            get_program(benchmark), config,
            oracle=get_oracle(benchmark, n)).run()
    diskcache.store(frontend_cache_key(benchmark, config, n),
                    "frontend", frontend_result_to_dict(result))
    _frontend[(benchmark, config, n)] = result
    return result


def machine_result(benchmark: str, config: MachineConfig,
                   n: Optional[int] = None, warmup: bool = True,
                   engine: Optional[str] = None) -> MachineResult:
    """Cycle-level machine run with functional front-end warmup.

    The pure-Python machine is ~4x slower than the oracle-driven front-end
    simulator, so measured machine windows are short; without warmup they
    would be dominated by predictor and trace-cache cold-start.  Standard
    practice (SimpleScalar's fast-forwarding): train the front-end
    structures functionally, then measure.

    The warmup window scales with the environment knobs, so it is part
    of the disk cache key.

    ``engine`` pins the run to one complete stack (machine core + front
    end): ``"fast"`` or ``"reference"``, with no validation.  With
    ``engine=None`` and ``REPRO_VALIDATE`` armed the run goes through
    the lockstep machine driver; in ``sample`` mode only a deterministic
    1-in-N slice of grid points (seeded from the cache key) is
    cross-checked, the rest run plain.
    """
    if n is None:
        n = machine_length(benchmark)
    result = cached_machine_result(benchmark, config, n, warmup=warmup)
    if result is not None:
        return result
    from repro import validate
    if engine is not None:
        _discard_forced_divergence()
        result = _machine_one_stack(benchmark, config, n, warmup,
                                    fast=(engine != "reference"))
    elif validate.armed():
        from repro.frontend.build import fast_frontend_enabled
        if not fast_frontend_enabled():
            # The "fast" stack already is the reference stack.
            result = _machine_one_stack(benchmark, config, n, warmup,
                                        fast=False)
        else:
            stride, offset = _sample_params(
                machine_cache_key(benchmark, config, n, warmup=warmup))
            if offset == 0:
                from repro.validate.lockstep import lockstep_machine
                result = lockstep_machine(benchmark, config, n,
                                          warmup=warmup)
            else:
                _discard_forced_divergence()
                result = _machine_one_stack(benchmark, config, n, warmup,
                                            fast=True)
    else:
        result = _machine_one_stack(benchmark, config, n, warmup, fast=None)
    diskcache.store(machine_cache_key(benchmark, config, n, warmup=warmup),
                    "machine", machine_result_to_dict(result))
    _machine[(benchmark, config, n)] = result
    return result


def _machine_one_stack(benchmark: str, config: MachineConfig, n: int,
                       warmup: bool, fast: Optional[bool]) -> MachineResult:
    """One plain machine run on the named stack (no cross-checking).

    ``fast=None`` keeps the historical default: the event-driven machine
    core with the front end following ``REPRO_FAST_FRONTEND``;
    ``fast=False`` additionally swaps in the frozen reference machine
    core (the scheduler's post-divergence degradation path).
    """
    from repro.core.machine_reference import Machine as ReferenceMachine
    program = get_program(benchmark)
    engine = None
    if warmup:
        from repro.frontend.build import build_engine
        engine = build_engine(program, config.frontend,
                              memory_config=config.memory, fast=fast)
        FrontEndSimulator(program, config.frontend,
                          oracle=get_oracle(benchmark), engine=engine).run()
    use_fast = fast_machine_enabled() if fast is None else fast
    machine_cls = Machine if use_fast else ReferenceMachine
    return machine_cls(program, config, max_instructions=n,
                       engine=engine).run()


def run_machine_multi(benchmark: str, configs: Sequence[MachineConfig],
                      n: Optional[int] = None, warmup: bool = True,
                      engine: Optional[str] = None) -> List[MachineResult]:
    """One-pass machine runs for several configs of one benchmark.

    The correct-path oracle stream and the generated program are
    resolved **once** and shared across every config in the batch; each
    config still gets its own fetch engine, its own warmup pass and its
    own machine window, so every result is byte-identical to an
    independent :func:`machine_result` call and is stored under the
    *unchanged* per-config cache key (the disk cache and checkpoint
    journals keep deduping per point).

    Configs already satisfied by the memo or disk cache are served from
    there; only the misses simulate.  With ``REPRO_VALIDATE`` armed the
    batch degrades to per-point :func:`machine_result` calls, because
    the lockstep guard is inherently per point.
    """
    if n is None:
        n = machine_length(benchmark)
    results: List[Optional[MachineResult]] = []
    missing: List[int] = []
    for i, config in enumerate(configs):
        cached = cached_machine_result(benchmark, config, n, warmup=warmup)
        results.append(cached)
        if cached is None:
            missing.append(i)
    if not missing:
        return results
    from repro import validate
    if engine is None and validate.armed():
        for i in missing:
            results[i] = machine_result(benchmark, configs[i], n,
                                        warmup=warmup)
        return results
    if engine is not None:
        _discard_forced_divergence()
    from repro.core.machine_reference import Machine as ReferenceMachine
    from repro.frontend.build import build_engine
    fast = None if engine is None else (engine != "reference")
    use_fast = fast_machine_enabled() if fast is None else fast
    machine_cls = Machine if use_fast else ReferenceMachine
    # Shared across the whole batch: one program build, one oracle
    # resolution (trace-file load or functional execution).
    program = get_program(benchmark)
    oracle = get_oracle(benchmark) if warmup else None
    for i in missing:
        config = configs[i]
        built = None
        if warmup:
            built = build_engine(program, config.frontend,
                                 memory_config=config.memory, fast=fast)
            FrontEndSimulator(program, config.frontend, oracle=oracle,
                              engine=built).run()
        result = machine_cls(program, config, max_instructions=n,
                             engine=built).run()
        diskcache.store(machine_cache_key(benchmark, config, n,
                                          warmup=warmup),
                        "machine", machine_result_to_dict(result))
        _machine[(benchmark, config, n)] = result
        results[i] = result
    return results


def cached_machine_result(benchmark: str, config: MachineConfig,
                          n: Optional[int] = None,
                          warmup: bool = True) -> Optional[MachineResult]:
    """Memo- or disk-cached machine result, or None (never computes)."""
    if n is None:
        n = machine_length(benchmark)
    key = (benchmark, config, n)
    result = _machine.get(key)
    if result is not None:
        return result
    payload = diskcache.load(machine_cache_key(benchmark, config, n,
                                               warmup=warmup))
    if payload is not None:
        result = machine_result_from_dict(payload)
        _machine[key] = result
        return result
    return None


def admit_machine_result(result: MachineResult, n: int) -> None:
    """Insert a result computed elsewhere (a pool worker) into the memo."""
    _machine[(result.benchmark, result.config, n)] = result
