"""Memoized simulation runners shared by every experiment.

Results are served from a two-level cache:

1. in-process memo dicts (same objects returned on repeat calls — the
   oracle stream in particular is computed once per benchmark and
   replayed against every front-end configuration), and
2. the persistent on-disk cache (:mod:`repro.experiments.diskcache`),
   keyed by content hash of (benchmark profile, config, run length,
   simulator source fingerprint), so re-running an experiment script is
   warm across processes and across parallel workers.

The oracle stream additionally persists as a compact binary trace file
(:mod:`repro.experiments.tracefile`): it is computed at most once per
(benchmark, length) machine-wide, and every other process memory-maps
the stored trace instead of re-executing the program functionally.

Run-length environment knobs (they compose):

* ``REPRO_QUICK=1`` divides all run lengths by four (fast CI passes);
* ``REPRO_SCALE=<float>`` applies an arbitrary multiplier on top.

An unparseable ``REPRO_SCALE`` warns once (via the resettable
:mod:`repro.experiments.warnonce` registry) and falls back to 1.0 — it
used to be silently ignored, which made typos look like real runs.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.config import FrontEndConfig, MachineConfig
from repro.core.machine import Machine, MachineResult
from repro.experiments import diskcache, tracefile, warnonce
from repro.experiments.cachekey import cache_key
from repro.experiments.serialize import (
    frontend_result_from_dict,
    frontend_result_to_dict,
    machine_result_from_dict,
    machine_result_to_dict,
)
from repro.frontend.simulator import FrontEndResult, FrontEndSimulator, compute_oracle
from repro.isa.program import Program
from repro.workloads import generate_program
from repro.workloads.profiles import get_profile

_programs: Dict[str, Program] = {}
_oracles: Dict[Tuple[str, int], list] = {}
_frontend: Dict[Tuple[str, FrontEndConfig, int], FrontEndResult] = {}
_machine: Dict[Tuple[str, MachineConfig, int], MachineResult] = {}

def quick_scale() -> float:
    """Run-length multiplier from the environment.

    ``REPRO_QUICK`` contributes x0.25 and ``REPRO_SCALE`` multiplies on
    top of it, so ``REPRO_QUICK=1 REPRO_SCALE=0.5`` runs at x0.125 —
    they used to be exclusive, with QUICK silently masking SCALE.
    """
    scale = 1.0
    raw = os.environ.get("REPRO_SCALE")
    if raw is not None:
        try:
            scale = float(raw)
        except ValueError:
            warnonce.warn_once(
                "repro-scale",
                f"ignoring invalid REPRO_SCALE={raw!r} (not a number); "
                "using 1.0",
            )
            scale = 1.0
    if os.environ.get("REPRO_QUICK"):
        scale *= 0.25
    return scale


def clear_caches(disk: bool = False) -> None:
    """Drop every memoized program, oracle and result.

    With ``disk=True`` also purge the persistent on-disk result cache
    and the stored oracle trace files — used by benchmarks that need
    genuinely cold runs.
    """
    _programs.clear()
    _oracles.clear()
    _frontend.clear()
    _machine.clear()
    warnonce.reset()
    if disk:
        diskcache.purge()
        tracefile.purge()


def get_program(benchmark: str) -> Program:
    """Memoized synthetic program for a paper benchmark."""
    program = _programs.get(benchmark)
    if program is None:
        program = generate_program(benchmark)
        _programs[benchmark] = program
    return program


def default_length(benchmark: str) -> int:
    """Front-end run length for this benchmark, after env scaling."""
    return max(5_000, int(get_profile(benchmark).default_dynamic * quick_scale()))


def machine_length(benchmark: str) -> int:
    """Machine runs are slower; use a third of the front-end budget."""
    return max(5_000, default_length(benchmark) // 3)


def get_oracle(benchmark: str, n: Optional[int] = None) -> list:
    """Memoized correct-path instruction stream.

    Cold path: try the shared binary trace file first (mmap read — no
    functional re-execution), and on a genuine miss compute the stream
    once and persist it for every other process on the machine.
    """
    if n is None:
        n = default_length(benchmark)
    key = (benchmark, n)
    oracle = _oracles.get(key)
    if oracle is None:
        program = get_program(benchmark)
        oracle = tracefile.load_oracle(benchmark, n, program)
        if oracle is None:
            oracle = compute_oracle(program, n)
            tracefile.store_oracle(benchmark, n, oracle)
        _oracles[key] = oracle
    return oracle


def frontend_cache_key(benchmark: str, config: FrontEndConfig, n: int) -> str:
    """The disk-cache key a front-end result is stored under."""
    return cache_key("frontend", benchmark, config, n)


def machine_cache_key(benchmark: str, config: MachineConfig, n: int,
                      warmup: bool = True) -> str:
    """The disk-cache key a machine result is stored under.

    The warmup window scales with the environment knobs, so it is part
    of the key — shared here so the scheduler's checkpoint journal and
    fault harness address exactly the entries the runner writes.
    """
    warmup_n = default_length(benchmark) if warmup else 0
    return cache_key("machine", benchmark, config, n,
                     extra={"warmup": warmup_n})


def cached_frontend_result(benchmark: str, config: FrontEndConfig,
                           n: Optional[int] = None) -> Optional[FrontEndResult]:
    """Memo- or disk-cached front-end result, or None (never computes)."""
    if n is None:
        n = default_length(benchmark)
    key = (benchmark, config, n)
    result = _frontend.get(key)
    if result is not None:
        return result
    payload = diskcache.load(frontend_cache_key(benchmark, config, n))
    if payload is not None:
        result = frontend_result_from_dict(payload)
        _frontend[key] = result
        return result
    return None


def admit_frontend_result(result: FrontEndResult, n: int) -> None:
    """Insert a result computed elsewhere (a pool worker) into the memo."""
    _frontend[(result.benchmark, result.config, n)] = result


def frontend_result(benchmark: str, config: FrontEndConfig,
                    n: Optional[int] = None) -> FrontEndResult:
    """Oracle-driven front-end run, memoized in process and on disk."""
    if n is None:
        n = default_length(benchmark)
    result = cached_frontend_result(benchmark, config, n)
    if result is not None:
        return result
    simulator = FrontEndSimulator(
        get_program(benchmark), config, oracle=get_oracle(benchmark, n)
    )
    result = simulator.run()
    diskcache.store(frontend_cache_key(benchmark, config, n),
                    "frontend", frontend_result_to_dict(result))
    _frontend[(benchmark, config, n)] = result
    return result


def machine_result(benchmark: str, config: MachineConfig,
                   n: Optional[int] = None, warmup: bool = True) -> MachineResult:
    """Cycle-level machine run with functional front-end warmup.

    The pure-Python machine is ~4x slower than the oracle-driven front-end
    simulator, so measured machine windows are short; without warmup they
    would be dominated by predictor and trace-cache cold-start.  Standard
    practice (SimpleScalar's fast-forwarding): train the front-end
    structures functionally, then measure.

    The warmup window scales with the environment knobs, so it is part
    of the disk cache key.
    """
    if n is None:
        n = machine_length(benchmark)
    result = cached_machine_result(benchmark, config, n, warmup=warmup)
    if result is not None:
        return result
    program = get_program(benchmark)
    engine = None
    if warmup:
        from repro.frontend.build import build_engine
        engine = build_engine(program, config.frontend,
                              memory_config=config.memory)
        FrontEndSimulator(program, config.frontend,
                          oracle=get_oracle(benchmark), engine=engine).run()
    result = Machine(program, config, max_instructions=n,
                     engine=engine).run()
    diskcache.store(machine_cache_key(benchmark, config, n, warmup=warmup),
                    "machine", machine_result_to_dict(result))
    _machine[(benchmark, config, n)] = result
    return result


def cached_machine_result(benchmark: str, config: MachineConfig,
                          n: Optional[int] = None,
                          warmup: bool = True) -> Optional[MachineResult]:
    """Memo- or disk-cached machine result, or None (never computes)."""
    if n is None:
        n = machine_length(benchmark)
    key = (benchmark, config, n)
    result = _machine.get(key)
    if result is not None:
        return result
    payload = diskcache.load(machine_cache_key(benchmark, config, n,
                                               warmup=warmup))
    if payload is not None:
        result = machine_result_from_dict(payload)
        _machine[key] = result
        return result
    return None


def admit_machine_result(result: MachineResult, n: int) -> None:
    """Insert a result computed elsewhere (a pool worker) into the memo."""
    _machine[(result.benchmark, result.config, n)] = result
