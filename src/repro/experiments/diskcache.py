"""Persistent on-disk result cache, safe to share between many processes.

Simulation results survive process exit as versioned JSON files under a
cache directory (``$REPRO_CACHE_DIR``, else ``~/.cache/repro``).  Files
are named by the content-hash key from :mod:`repro.experiments.cachekey`,
which folds in a fingerprint of the simulator source — editing any
``repro`` module silently invalidates every stored result, so the cache
never needs manual flushing after code changes.

Robustness rules:

* writes are atomic (temp file + ``os.replace``) so a killed process
  never leaves a half-written entry;
* unreadable, truncated, or wrong-version entries are treated as misses
  and **quarantined** (moved aside under ``quarantine/``, never silently
  destroyed — the corrupt bytes are evidence, and an unlink could lose a
  race against a concurrent good rewrite of the same key);
* ``REPRO_DISK_CACHE=0`` disables the layer entirely (the in-process
  memo caches in :mod:`repro.experiments.runner` keep working).

Multi-tenancy (the experiment service shares one cache between many
clients, workers, and server restarts) adds three mechanisms:

* **Advisory file locks** (:class:`FileLock`) — pid-stamped lock files
  under ``locks/`` claimed with an exclusive create.  A lock whose owner
  pid is dead is *stale* and is broken by the next contender, so a
  SIGKILLed writer can never wedge the cache.  Locks only serialize
  *accounting* (the size index, quota eviction); entry reads and writes
  stay lock-free and atomic, so a lost or broken lock can degrade
  bookkeeping but never corrupt a result.
* **A size-index sidecar** (``index.json``) — per-key on-disk byte
  counts maintained under the index lock, so :func:`cache_stats` answers
  without walking a huge directory; it self-heals from a filesystem scan
  whenever it is missing or disagrees with reality.
* **A disk quota** (``REPRO_CACHE_MAX_MB``) — after each store the
  writer evicts least-recently-used entries (file mtime is refreshed on
  every cache hit) until the total fits.  Keys *pinned* by in-flight
  service points (per-``(key, pid)`` pin files under ``pins/``, so
  services sharing one cache directory protect their flights
  independently; dead pids are ignored) are never evicted, so a
  computation can never have its own inputs or freshly shared outputs
  deleted out from under it.
"""

from __future__ import annotations

import itertools
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.experiments import env
from repro.experiments.cachekey import CACHE_SCHEMA_VERSION

_SUFFIX = ".json"
_INDEX_NAME = "index.json"
_INDEX_LOCK = "cache-index"
_LOCK_SUFFIX = ".lock"
_PIN_SUFFIX = ".pin"

#: A lock file whose content cannot be parsed is broken anyway after
#: this many seconds (covers writers killed before the pid hit disk).
STALE_LOCK_SECONDS = 30.0

#: Quarantined files kept for post-mortem before the oldest are pruned.
_QUARANTINE_KEEP = 16

#: Disambiguates repeat quarantines of the same entry name by one process.
_quarantine_seq = itertools.count()


def enabled() -> bool:
    """Is the disk layer on?  (``REPRO_DISK_CACHE=0`` turns it off.)"""
    return env.get_flag("REPRO_DISK_CACHE", True)


def cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = env.get_str("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = env.get_str("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def entry_path(key: str) -> Path:
    """Where the entry for ``key`` lives (whether or not it exists yet)."""
    return cache_dir() / f"{key}{_SUFFIX}"


_path_for = entry_path


def quota_bytes() -> Optional[int]:
    """The ``REPRO_CACHE_MAX_MB`` disk quota in bytes, or None (no quota)."""
    quota_mb = env.get_float("REPRO_CACHE_MAX_MB", 0.0)
    if quota_mb and quota_mb > 0:
        return int(quota_mb * 1024 * 1024)
    return None


# ------------------------------------------------------------ file locks

def lock_dir() -> Path:
    """Advisory lock files live under ``locks/`` beside the entries."""
    return cache_dir() / "locks"


class LockTimeout(OSError):
    """A :class:`FileLock` could not be acquired within its timeout."""


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a lock owner's pid."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        # EPERM and friends: some process owns the pid — assume alive.
        return True
    return True


class FileLock:
    """Pid-stamped advisory lock with stale-owner takeover.

    The lock is a file created with ``O_CREAT | O_EXCL`` containing the
    owner's pid.  Contenders poll; when they find the current owner pid
    dead (or the file unparseable and older than
    :data:`STALE_LOCK_SECONDS` — a writer killed mid-create), they break
    the lock and race to retake it, so a SIGKILLed holder stalls the
    next writer for at most one poll interval, never forever.

    The lock is *advisory over accounting only*: entry data is protected
    by atomic replaces, not by this lock, so the class degrades rather
    than fails — an unwritable lock directory means "proceed lockless"
    (``acquire`` succeeds without holding anything) because skipping
    bookkeeping is strictly better than failing an experiment.
    """

    def __init__(self, name: str, directory: Optional[Path] = None,
                 timeout: float = 10.0, poll: float = 0.02):
        self.path = (directory or lock_dir()) / f"{name}{_LOCK_SUFFIX}"
        self.timeout = timeout
        self.poll = poll
        self._held = False
        self._lockless = False

    def _owner(self) -> Optional[int]:
        """The current owner pid, or None when unreadable/unparseable."""
        try:
            return int(self.path.read_text().strip())
        except (OSError, ValueError):
            return None

    def _is_stale(self) -> bool:
        owner = self._owner()
        if owner is not None:
            return not _pid_alive(owner)
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return False  # gone already: just retry the create
        return age > STALE_LOCK_SECONDS

    def _break_stale(self) -> None:
        """Remove a stale lock; double-check first to shrink the window
        where a fresh lock from a new contender could be swept away."""
        if not self._is_stale():
            return
        try:
            self.path.unlink()
        except OSError:
            pass  # a sibling broke it first; the create below decides

    def acquire(self) -> "FileLock":
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                fd = os.open(self.path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if self._is_stale():
                    self._break_stale()
                    continue
                if time.monotonic() >= deadline:
                    raise LockTimeout(f"lock {self.path} held by live "
                                      f"pid {self._owner()}")
                time.sleep(self.poll)
                continue
            except OSError:
                # Unwritable lock directory: degrade to lockless mode.
                self._lockless = True
                return self
            try:
                os.write(fd, str(os.getpid()).encode())
            finally:
                os.close(fd)
            self._held = True
            return self

    def release(self) -> None:
        if self._held:
            self._held = False
            try:
                self.path.unlink()
            except OSError:
                pass
        self._lockless = False

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()


# ------------------------------------------------------------ quarantine

def quarantine_dir() -> Path:
    """Corrupt files are moved here instead of being destroyed."""
    return cache_dir() / "quarantine"


def quarantine(path: Path) -> Optional[Path]:
    """Move a corrupt file aside; returns its new home, or None.

    Quarantining (an atomic rename) replaces deletion for two reasons:
    the corrupt bytes are post-mortem evidence, and an ``unlink`` that
    loses the race against a concurrent *good* rewrite of the same key
    would destroy the fresh entry — a rename loses the same race
    harmlessly (``FileNotFoundError`` means a sibling already healed or
    quarantined it, which is a win, not an error).  At most
    :data:`_QUARANTINE_KEEP` files are kept; the oldest are pruned.
    """
    path = Path(path)
    directory = quarantine_dir()
    # pid + per-process sequence number: a process that quarantines the
    # same entry name twice must not overwrite its earlier evidence.
    seq = next(_quarantine_seq)
    target = directory / f"{path.name}.{os.getpid()}.{seq}.quarantined"
    try:
        directory.mkdir(parents=True, exist_ok=True)
        os.replace(path, target)
    except FileNotFoundError:
        return None  # a concurrent process already moved or replaced it
    except OSError:
        try:  # quarantine unavailable (read-only dir): fall back to unlink
            path.unlink()
        except OSError:
            pass
        return None
    try:
        kept = sorted(directory.glob("*.quarantined"),
                      key=lambda p: p.stat().st_mtime)
        for stale in kept[:-_QUARANTINE_KEEP]:
            stale.unlink()
    except OSError:
        pass
    return target


# ----------------------------------------------------------- size index

def _index_path() -> Path:
    return cache_dir() / _INDEX_NAME


def _read_index() -> Dict[str, int]:
    """The ``{key: bytes}`` sidecar, or {} when missing/corrupt."""
    try:
        data = json.loads(_index_path().read_text())
        entries = data["entries"]
        if data.get("version") != 1 or not isinstance(entries, dict):
            raise ValueError("bad index shape")
        return {str(k): int(v) for k, v in entries.items()}
    except (OSError, ValueError, KeyError, TypeError):
        return _scan_entries()


def _write_index(entries: Dict[str, int]) -> None:
    """Atomically persist the sidecar; failures are silent (it is a
    cache of the directory listing, rebuilt from a scan on demand)."""
    directory = cache_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump({"version": 1, "entries": entries}, handle,
                          sort_keys=True, separators=(",", ":"))
            os.replace(tmp_name, _index_path())
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except (KeyboardInterrupt, SystemExit):
        raise
    except OSError:
        pass


def _scan_entries() -> Dict[str, int]:
    """Ground truth: every entry file on disk with its size."""
    entries: Dict[str, int] = {}
    directory = cache_dir()
    if directory.is_dir():
        for path in directory.glob(f"*{_SUFFIX}"):
            if path.name == _INDEX_NAME:
                continue
            try:
                entries[path.stem] = path.stat().st_size
            except OSError:
                pass
    return entries


def _reconcile_index() -> Dict[str, int]:
    """Index entries that still exist, plus any files the index missed.

    Cheap self-healing: the index can drift (lockless writers, killed
    evictors), and eviction decisions must never trust a ghost entry.
    """
    index = _read_index()
    truth = _scan_entries()
    return {key: truth[key] for key in truth}


# ----------------------------------------------------------------- pins

def pin_dir() -> Path:
    """Pid-stamped pin files protecting keys from quota eviction."""
    return cache_dir() / "pins"


def pin(key: str) -> None:
    """Shield ``key`` from quota eviction while a point is in flight.

    Pins are per-``(key, pid)`` files: two services sharing one cache
    directory can pin the same key independently, so one process
    dropping its pin never strips the other's still-in-flight
    protection (a shared single file would let whichever flight
    finished first expose the slower one to eviction mid-read-back).
    """
    directory = pin_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"{key}.{os.getpid()}{_PIN_SUFFIX}").write_text(
            str(os.getpid()))
    except OSError:
        pass


def unpin(key: str) -> None:
    """Drop *this process's* pin for ``key`` (missing pins are fine)."""
    try:
        (pin_dir() / f"{key}.{os.getpid()}{_PIN_SUFFIX}").unlink()
    except OSError:
        pass


def _pin_owner(path: Path) -> Tuple[str, int]:
    """A pin file's ``(key, owner pid)``; pid is -1 when unparseable."""
    name = path.name[:-len(_PIN_SUFFIX)]
    key, dot, pid_text = name.rpartition(".")
    if dot and pid_text.isdigit():
        return key, int(pid_text)
    # Legacy one-file-per-key pin (pre per-pid): pid in the content.
    try:
        return name, int(path.read_text().strip())
    except (OSError, ValueError):
        return name, -1


def pinned_keys() -> set:
    """Keys pinned by at least one *live* process.

    A pin whose owner pid is dead is ignored (and removed) — a crashed
    service must not permanently exempt its in-flight keys from the
    quota.
    """
    pins = set()
    directory = pin_dir()
    if not directory.is_dir():
        return pins
    for path in directory.glob(f"*{_PIN_SUFFIX}"):
        key, owner = _pin_owner(path)
        if _pid_alive(owner):
            pins.add(key)
        else:
            try:
                path.unlink()
            except OSError:
                pass
    return pins


# -------------------------------------------------------------- entries

def load(key: str) -> Optional[Dict[str, Any]]:
    """Payload stored under ``key``, or None on miss/corruption.

    A file that cannot be parsed, or whose version tag does not match,
    is quarantined so it cannot shadow a future write under the same
    key.  A successful load refreshes the entry's mtime — the recency
    signal the quota evictor orders by.
    """
    if not enabled():
        return None
    path = _path_for(key)
    try:
        raw = path.read_bytes()
    except OSError:
        return None
    try:
        # Decode inside the corruption handler: stamped-over entries can
        # hold non-UTF-8 bytes (UnicodeDecodeError is a ValueError).
        envelope = json.loads(raw.decode("utf-8"))
        if not isinstance(envelope, dict):
            raise ValueError("not an object")
        if envelope.get("version") != CACHE_SCHEMA_VERSION:
            raise ValueError("version mismatch")
        payload = envelope["payload"]
    except (ValueError, KeyError):
        quarantine(path)
        return None
    try:
        os.utime(path)  # LRU touch; losing a race to eviction is fine
    except OSError:
        pass
    return payload


def store(key: str, kind: str, payload: Dict[str, Any]) -> None:
    """Atomically persist ``payload`` under ``key``; failures are silent.

    The cache is an accelerator: a full disk or read-only home directory
    must not break an experiment run.  Control-flow exceptions
    (``KeyboardInterrupt``, ``SystemExit``) are re-raised after the temp
    file is cleaned up — a Ctrl-C mid-write must stop the run, never be
    swallowed into the silent-OSError path.

    After the atomic replace the writer updates the size index and
    enforces the ``REPRO_CACHE_MAX_MB`` quota (both under the index
    lock, both best-effort).
    """
    if not enabled():
        return
    directory = cache_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        envelope = {
            "version": CACHE_SCHEMA_VERSION,
            "kind": kind,
            "payload": payload,
        }
        fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(envelope, handle, sort_keys=True,
                          separators=(",", ":"))
            os.replace(tmp_name, entry_path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except (KeyboardInterrupt, SystemExit):
        raise
    except OSError:
        return
    _account_store(key)


def _account_store(key: str) -> None:
    """Post-store bookkeeping: index update + quota enforcement."""
    try:
        with FileLock(_INDEX_LOCK):
            index = _read_index()
            try:
                index[key] = entry_path(key).stat().st_size
            except OSError:
                index.pop(key, None)
            _write_index(index)
            _enforce_quota_locked(index, protect={key})
    except (KeyboardInterrupt, SystemExit):
        raise
    except (LockTimeout, OSError):
        pass  # accounting is best-effort; the entry itself is safe


def _enforce_quota_locked(index: Dict[str, int],
                          protect: Iterable[str] = ()) -> int:
    """Evict LRU entries until the total fits the quota; returns count.

    Caller holds the index lock.  Entries pinned by live processes and
    entries in ``protect`` (the key just written) are never evicted —
    over-quota-with-everything-pinned means the quota is simply exceeded
    until pins drop, never that in-flight work loses its results.
    """
    quota = quota_bytes()
    if quota is None:
        return 0
    total = sum(index.values())
    if total <= quota:
        return 0
    exempt = set(protect) | pinned_keys()
    candidates = []
    for key in index:
        if key in exempt:
            continue
        try:
            candidates.append((entry_path(key).stat().st_mtime, key))
        except OSError:
            candidates.append((0.0, key))  # already gone: drop first
    candidates.sort()
    evicted = 0
    for _, key in candidates:
        if total <= quota:
            break
        try:
            entry_path(key).unlink()
        except FileNotFoundError:
            pass
        except OSError:
            continue
        total -= index.pop(key, 0)
        evicted += 1
    if evicted:
        _write_index(index)
    return evicted


def enforce_quota(protect: Iterable[str] = ()) -> int:
    """Re-check the quota now (the service calls this after unpinning)."""
    try:
        with FileLock(_INDEX_LOCK):
            index = _reconcile_index()
            _write_index(index)
            return _enforce_quota_locked(index, protect)
    except (LockTimeout, OSError):
        return 0


def purge() -> int:
    """Delete every cache entry; returns the number of files removed.

    Also drops the size index (now empty by definition) plus any
    quarantined files, temp files, pins and lock remnants, so a purged
    cache directory holds no orphaned bookkeeping.
    """
    directory = cache_dir()
    removed = 0
    if not directory.is_dir():
        return removed
    for path in directory.glob(f"*{_SUFFIX}"):
        if path.name == _INDEX_NAME:
            continue
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    for pattern in (_INDEX_NAME, "*.tmp"):
        for path in directory.glob(pattern):
            try:
                path.unlink()
            except OSError:
                pass
    for subdir, pattern in ((quarantine_dir(), "*.quarantined"),
                            (pin_dir(), f"*{_PIN_SUFFIX}"),
                            (lock_dir(), f"*{_LOCK_SUFFIX}")):
        if subdir.is_dir():
            for path in subdir.glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    pass
    return removed


def stats() -> Dict[str, int]:
    """Entry count and total bytes currently on disk (for reporting)."""
    directory = cache_dir()
    entries = 0
    size = 0
    if directory.is_dir():
        for path in directory.glob(f"*{_SUFFIX}"):
            if path.name == _INDEX_NAME:
                continue
            try:
                size += path.stat().st_size
                entries += 1
            except OSError:
                pass
    return {"entries": entries, "bytes": size}


def cache_stats() -> Dict[str, Any]:
    """Rich cache introspection for the service ``status`` endpoint.

    Served from the size-index sidecar reconciled against the directory
    (self-healing: a missing or drifted index is rebuilt from a scan),
    plus the quota, pin and quarantine state.
    """
    index = _reconcile_index()
    quota = quota_bytes()
    quarantined = 0
    if quarantine_dir().is_dir():
        quarantined = sum(1 for _ in quarantine_dir().glob("*.quarantined"))
    return {
        "entries": len(index),
        "bytes": sum(index.values()),
        "quota_bytes": quota,
        "pinned": len(pinned_keys()),
        "quarantined": quarantined,
    }
