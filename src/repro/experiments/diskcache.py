"""Persistent on-disk result cache.

Simulation results survive process exit as versioned JSON files under a
cache directory (``$REPRO_CACHE_DIR``, else ``~/.cache/repro``).  Files
are named by the content-hash key from :mod:`repro.experiments.cachekey`,
which folds in a fingerprint of the simulator source — editing any
``repro`` module silently invalidates every stored result, so the cache
never needs manual flushing after code changes.

Robustness rules:

* writes are atomic (temp file + ``os.replace``) so a killed process
  never leaves a half-written entry;
* unreadable, truncated, or wrong-version entries are treated as misses
  and deleted — a corrupted cache degrades to a cold one, never to an
  exception or a wrong result;
* ``REPRO_DISK_CACHE=0`` disables the layer entirely (the in-process
  memo caches in :mod:`repro.experiments.runner` keep working).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from repro.experiments import env
from repro.experiments.cachekey import CACHE_SCHEMA_VERSION

_SUFFIX = ".json"


def enabled() -> bool:
    """Is the disk layer on?  (``REPRO_DISK_CACHE=0`` turns it off.)"""
    return env.get_flag("REPRO_DISK_CACHE", True)


def cache_dir() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = env.get_str("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = env.get_str("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def entry_path(key: str) -> Path:
    """Where the entry for ``key`` lives (whether or not it exists yet)."""
    return cache_dir() / f"{key}{_SUFFIX}"


_path_for = entry_path


def load(key: str) -> Optional[Dict[str, Any]]:
    """Payload stored under ``key``, or None on miss/corruption.

    A file that cannot be parsed, or whose version tag does not match,
    is deleted so it cannot shadow a future write under the same key.
    """
    if not enabled():
        return None
    path = _path_for(key)
    try:
        text = path.read_text()
    except OSError:
        return None
    try:
        envelope = json.loads(text)
        if not isinstance(envelope, dict):
            raise ValueError("not an object")
        if envelope.get("version") != CACHE_SCHEMA_VERSION:
            raise ValueError("version mismatch")
        return envelope["payload"]
    except (ValueError, KeyError):
        try:
            path.unlink()
        except OSError:
            pass
        return None


def store(key: str, kind: str, payload: Dict[str, Any]) -> None:
    """Atomically persist ``payload`` under ``key``; failures are silent.

    The cache is an accelerator: a full disk or read-only home directory
    must not break an experiment run.  Control-flow exceptions
    (``KeyboardInterrupt``, ``SystemExit``) are re-raised after the temp
    file is cleaned up — a Ctrl-C mid-write must stop the run, never be
    swallowed into the silent-OSError path.
    """
    if not enabled():
        return
    directory = cache_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        envelope = {
            "version": CACHE_SCHEMA_VERSION,
            "kind": kind,
            "payload": payload,
        }
        fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(envelope, handle, sort_keys=True,
                          separators=(",", ":"))
            os.replace(tmp_name, entry_path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except (KeyboardInterrupt, SystemExit):
        raise
    except OSError:
        pass


def purge() -> int:
    """Delete every cache entry; returns the number of files removed."""
    directory = cache_dir()
    removed = 0
    if not directory.is_dir():
        return removed
    for path in directory.glob(f"*{_SUFFIX}"):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed


def stats() -> Dict[str, int]:
    """Entry count and total bytes currently on disk (for reporting)."""
    directory = cache_dir()
    entries = 0
    size = 0
    if directory.is_dir():
        for path in directory.glob(f"*{_SUFFIX}"):
            try:
                size += path.stat().st_size
                entries += 1
            except OSError:
                pass
    return {"entries": entries, "bytes": size}
