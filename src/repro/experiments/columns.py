"""Vectorized column scans over oracle streams (``REPRO_VECTOR``).

The tracefile v2 format already stores the oracle stream column-major —
u32 instruction addresses, direction bytes, u32 successors — yet until
this module every bulk consumer re-walked the stream row by row in
Python.  Here those walks become single array passes over numpy views:

* **per-program flag tables** — :func:`program_flags` builds (and caches
  on the program) dense u8 arrays indexed by instruction address: the
  opcode's commit code, its ``ends_fetch_block`` bit and its
  ``is_cond_branch`` bit.  One ``flags[addrs]`` gather then classifies a
  whole dynamic stream at once;
* **branch masks and run structure** — :func:`branch_mask` and
  :func:`run_length_encode` expose the taken/not-taken run encoding that
  bias-table retirement counting and branch-population profiling
  collapse over;
* **fetch-block segmentation** — :func:`fetch_block_sizes` and
  :func:`block_size_counter` turn the per-record "does this end a
  block?" loop into ``flatnonzero`` + ``diff``;
* **site aggregation** — :func:`site_counts` bincounts dynamic
  executions per static site while preserving the scalar paths'
  first-occurrence dict ordering;
* **stream census** — :func:`oracle_census` is the one-call replay scan
  the throughput bench records.

Everything is gated behind :func:`enabled`: ``REPRO_VECTOR=0`` (routed
through :mod:`repro.experiments.env`) or a missing numpy selects the
original scalar paths in every consumer, so numpy stays an *optional*
accelerator — the scalar fallback is the reference semantics and the
differential fuzzer drives both modes against each other.  When the
flag asks for vector mode but numpy is absent, :func:`enabled` warns
once (via :mod:`repro.experiments.warnonce`) so a silently slow run is
diagnosable.

This module is a leaf like :mod:`repro.experiments.env`: it imports
only the env/warn-once helpers (and numpy when present), so tracefile,
workloads, trace and branch layers can all use it without cycles.
"""

from __future__ import annotations

from collections import Counter
from typing import NamedTuple, Optional, Tuple

from repro.experiments import env, warnonce

try:  # numpy is an optional accelerator, never a hard dependency here
    import numpy as np
except ImportError:  # pragma: no cover - exercised via monkeypatch
    np = None

#: Direction byte for "not a conditional branch" — the tracefile v2
#: encoding (kept in sync with ``tracefile._NOT_BRANCH``; this module
#: must stay importable from tracefile, so it owns its own copy).
NOT_BRANCH = 2

#: ``numpy.bincount`` width for commit-code class counts (codes 0..9).
_N_COMMIT_CODES = 10


def available() -> bool:
    """Is numpy importable?  (Monkeypatch ``columns.np`` to simulate not.)"""
    return np is not None


def vector_requested() -> bool:
    """Does the environment ask for vector mode?  (Default: yes.)"""
    return env.get_flag("REPRO_VECTOR", True)


def enabled() -> bool:
    """Should consumers take the vectorized paths?

    True only when ``REPRO_VECTOR`` is on (the default) *and* numpy is
    importable.  Asking for vector mode without numpy warns once — a
    sweep silently running the scalar fallback is a diagnosable
    condition, not a mystery slowdown.
    """
    if not vector_requested():
        return False
    if np is None:
        warnonce.warn_once(
            "vector-numpy-missing",
            "REPRO_VECTOR is enabled but numpy is not importable; "
            "falling back to the scalar oracle/statistics paths "
            "(install the [vector] extra to restore throughput)")
        return False
    return True


# -------------------------------------------------------- array adapters

def as_u32(column):
    """A u32 ndarray view of a column (zero-copy for buffer-backed inputs).

    Accepts the backings :class:`repro.experiments.tracefile.OracleTrace`
    columns use: an ``array('I')``, ``bytes``, a memoryview slice, or an
    ndarray (passed through).
    """
    if isinstance(column, np.ndarray):
        return column
    return np.frombuffer(column, dtype=np.dtype("<u4"))


def as_u8(column):
    """A u8 ndarray view of a byte column (zero-copy, see :func:`as_u32`)."""
    if isinstance(column, np.ndarray):
        return column
    return np.frombuffer(column, dtype=np.uint8)


# ------------------------------------------------------- program tables

class ProgramFlags(NamedTuple):
    """Dense per-address opcode flags for one program (u8 arrays).

    ``commit_codes[a]`` is ``instructions[a].op.commit_code`` (the small
    int the commit pipeline dispatches on: STORE=1, LOAD=2,
    COND_BRANCH=3, CALL=4, RETURN=5, INDIRECT=6, TRAP=7, HALT=8, MUL=9,
    plain ALU/JUMP/NOP=0), ``ends_fetch_block[a]`` / ``is_cond_branch[a]``
    the corresponding precomputed opcode bits.  Indexing these with a
    dynamic address column classifies the whole stream in one gather.
    """

    commit_codes: "np.ndarray"
    ends_fetch_block: "np.ndarray"
    is_cond_branch: "np.ndarray"


def program_flags(program) -> ProgramFlags:
    """The (cached) :class:`ProgramFlags` tables for ``program``.

    Built with one pass over the *static* code image and cached on the
    program object, so every dynamic-stream scan of any length reuses
    the same tables.
    """
    flags = getattr(program, "_column_flags", None)
    if flags is None:
        count = len(program.instructions)
        commit = np.zeros(count, dtype=np.uint8)
        ends = np.zeros(count, dtype=np.uint8)
        cond = np.zeros(count, dtype=np.uint8)
        for index, inst in enumerate(program.instructions):
            op = inst.op
            commit[index] = op.commit_code
            if op.ends_fetch_block:
                ends[index] = 1
            if op.is_cond_branch:
                cond[index] = 1
        flags = ProgramFlags(commit, ends, cond)
        program._column_flags = flags
    return flags


# -------------------------------------------------------- stream scans

def branch_mask(dirs) -> "np.ndarray":
    """Boolean mask of the conditional-branch rows of a direction column."""
    return as_u8(dirs) != NOT_BRANCH


def run_length_encode(values) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """``(starts, lengths, run_values)`` of the maximal constant runs.

    The taken/not-taken run structure of a branch-outcome column is what
    promotion thresholds quantify; this is its one-pass encoding.
    """
    values = np.asarray(values)
    count = values.size
    if not count:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty.copy(), values[:0]
    changes = np.flatnonzero(values[1:] != values[:-1]) + 1
    starts = np.concatenate((np.zeros(1, dtype=np.intp), changes))
    lengths = np.diff(starts, append=count)
    return starts, lengths, values[starts]


def fetch_block_ends(addrs, program) -> "np.ndarray":
    """Stream positions whose instruction ends a fetch block."""
    ends = program_flags(program).ends_fetch_block
    return np.flatnonzero(ends[as_u32(addrs)])


def fetch_block_sizes(addrs, program) -> "np.ndarray":
    """Sizes of every *completed* dynamic fetch block, in stream order.

    A trailing partial block (the run truncated mid-block by the
    instruction budget) is not counted — same contract as the scalar
    per-record segmentation in :mod:`repro.workloads.stats`.
    """
    ends = fetch_block_ends(addrs, program)
    return np.diff(ends, prepend=-1)


def block_size_counter(addrs, program, cap: int = 16) -> Counter:
    """Fetch-block size histogram, sizes clipped at ``cap`` (paper Fig. 4).

    Keys are inserted in first-occurrence order, matching the scalar
    per-record Counter exactly (iteration order included) so serialized
    figures are mode-independent.
    """
    clipped = np.minimum(fetch_block_sizes(addrs, program), cap)
    sizes, counts = site_counts(clipped)
    return Counter(dict(zip((int(s) for s in sizes.tolist()),
                            (int(c) for c in counts.tolist()))))


def first_seen(values) -> "np.ndarray":
    """Unique values ordered by first occurrence (scalar dict ordering)."""
    unique, first = np.unique(np.asarray(values), return_index=True)
    return unique[np.argsort(first, kind="stable")]


def site_counts(values) -> Tuple["np.ndarray", "np.ndarray"]:
    """``(sites, counts)`` per unique value, in first-occurrence order.

    Matches the insertion order of the scalar ``dict.get(addr, 0) + 1``
    loops byte for byte, so vector-built site dicts iterate identically.
    """
    unique, first, counts = np.unique(np.asarray(values),
                                      return_index=True, return_counts=True)
    order = np.argsort(first, kind="stable")
    return unique[order], counts[order]


def oracle_census(oracle_addrs, oracle_dirs, program) -> dict:
    """One-pass replay census of an oracle stream (bench + sanity scan).

    Returns the bulk counts a scalar row walk would tally: dynamic
    instructions, conditional/taken branches, completed fetch blocks,
    distinct static addresses touched, and the commit-code class counts.
    """
    addrs = as_u32(oracle_addrs)
    dirs = as_u8(oracle_dirs)
    commit = program_flags(program).commit_codes[addrs]
    class_counts = np.bincount(commit, minlength=_N_COMMIT_CODES)
    return {
        "dynamic_instructions": int(addrs.size),
        "cond_branches": int(np.count_nonzero(dirs != NOT_BRANCH)),
        "taken_branches": int(np.count_nonzero(dirs == 1)),
        "fetch_blocks": int(fetch_block_ends(addrs, program).size),
        "static_touched": int(np.unique(addrs).size),
        "class_counts": [int(c) for c in class_counts.tolist()],
    }
