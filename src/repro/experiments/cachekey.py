"""Stable content-hash cache keys for simulation results.

The on-disk result cache (:mod:`repro.experiments.diskcache`) must key
results by *what was simulated*, not by Python object identity:

* the benchmark's generation profile (two benchmarks with the same name
  but different profile parameters must not collide),
* the full configuration, serialized field by field (enums by value so
  renaming an enum member invalidates, reordering does not),
* the run length, and
* a fingerprint of the simulator's own source code, so results
  self-invalidate whenever any file in the ``repro`` package changes.

Everything here is deterministic across processes and interpreter runs:
dictionaries are dumped with sorted keys and hashing is SHA-256, never
``hash()`` (which is salted per process for strings).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Optional

from repro.config import CoreConfig, FrontEndConfig, MachineConfig
from repro.mem.hierarchy import MemoryConfig
from repro.trace.fill_unit import PackingPolicy
from repro.workloads.profiles import get_profile

#: Bump when the serialized payload layout changes; stored inside every
#: cache file and also folded into the key so stale layouts never load.
CACHE_SCHEMA_VERSION = 1


# --------------------------------------------------------------- configs

def frontend_config_to_dict(config: FrontEndConfig) -> Dict[str, Any]:
    """Flat, JSON-able dict of every FrontEndConfig field (enums by value)."""
    out: Dict[str, Any] = {}
    for f in fields(config):
        value = getattr(config, f.name)
        if isinstance(value, PackingPolicy):
            value = value.value
        out[f.name] = value
    return out


def frontend_config_from_dict(data: Dict[str, Any]) -> FrontEndConfig:
    """Rebuild a FrontEndConfig from its flat dict (enums by value)."""
    kwargs = dict(data)
    kwargs["packing"] = PackingPolicy(kwargs["packing"])
    return FrontEndConfig(**kwargs)


def machine_config_to_dict(config: MachineConfig) -> Dict[str, Any]:
    """Nested dict covering frontend, memory, and core sub-configs."""
    return {
        "frontend": frontend_config_to_dict(config.frontend),
        "memory": {f.name: getattr(config.memory, f.name)
                   for f in fields(config.memory)},
        "core": {f.name: getattr(config.core, f.name)
                 for f in fields(config.core)},
    }


def machine_config_from_dict(data: Dict[str, Any]) -> MachineConfig:
    """Rebuild a MachineConfig from its nested dict form."""
    return MachineConfig(
        frontend=frontend_config_from_dict(data["frontend"]),
        memory=MemoryConfig(**data["memory"]),
        core=CoreConfig(**data["core"]),
    )


def config_to_dict(config) -> Dict[str, Any]:
    """Serialize either config flavour, tagged so round-trips are unambiguous."""
    if isinstance(config, MachineConfig):
        return {"type": "machine", **machine_config_to_dict(config)}
    if isinstance(config, FrontEndConfig):
        return {"type": "frontend", **frontend_config_to_dict(config)}
    raise TypeError(f"not a config: {config!r}")


def config_from_dict(data: Dict[str, Any]):
    """Inverse of :func:`config_to_dict` (dispatches on the type tag)."""
    kind = data.get("type")
    body = {k: v for k, v in data.items() if k != "type"}
    if kind == "machine":
        return machine_config_from_dict(body)
    if kind == "frontend":
        return frontend_config_from_dict(body)
    raise ValueError(f"unknown config type tag: {kind!r}")


# -------------------------------------------------------------- profiles

def profile_to_dict(benchmark: str) -> Dict[str, Any]:
    """The benchmark's generation profile as a JSON-able dict.

    Enum-keyed mappings (the branch bias mix) become name-keyed so the
    dump is stable; tuples become lists under ``json.dumps`` anyway.
    """
    profile = get_profile(benchmark)
    out: Dict[str, Any] = {}
    for f in fields(profile):
        value = getattr(profile, f.name)
        if isinstance(value, dict):
            value = {getattr(k, "name", str(k)): v for k, v in value.items()}
        out[f.name] = value
    return out


# ----------------------------------------------------------- fingerprint

@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over every source file of the ``repro`` package.

    Any edit to the simulator invalidates every cached result; this is
    deliberately coarse — a wrong cache hit silently corrupts paper
    figures, a spurious miss merely costs one re-run.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


# ----------------------------------------------------------------- keys

def canonical_json(obj: Any) -> str:
    """The one true JSON form: sorted keys, no whitespace surprises."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def cache_key(kind: str, benchmark: str, config, n: int,
              extra: Optional[Dict[str, Any]] = None) -> str:
    """Stable hex key for one (kind, benchmark, config, length) result."""
    material = {
        "schema": CACHE_SCHEMA_VERSION,
        "kind": kind,
        "benchmark": benchmark,
        "profile": profile_to_dict(benchmark),
        "config": config_to_dict(config),
        "n": n,
        "code": code_fingerprint(),
    }
    if extra:
        material["extra"] = extra
    return hashlib.sha256(canonical_json(material).encode()).hexdigest()
