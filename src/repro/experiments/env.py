"""Centralized, typed ``REPRO_*`` environment-knob parsing.

Every layer of the experiment engine is tuned through environment
variables so one setting covers every grid a script touches.  Before
this module each consumer parsed its own ``os.environ`` reads, which
meant subtly different invalid-value behavior (some raised, some
silently ignored) and duplicated warn-once bookkeeping.  All knobs now
go through four typed getters:

* :func:`get_str` — raw string with a default;
* :func:`get_flag` — tri-state boolean: unset means the default, and a
  set-but-empty or ``"0"`` value means off (the historical contract of
  ``REPRO_DISK_CACHE`` / ``REPRO_KEEP_GOING`` and friends);
* :func:`get_int` / :func:`get_float` — numeric knobs where an unset or
  empty variable yields the default and an unparseable value warns once
  (via :mod:`repro.experiments.warnonce`) and falls back to the default,
  so a typo can never be mistaken for a real run.

The module is a leaf — it imports only :mod:`os` and the warn-once
registry — so every other layer (scheduler, faults, disk cache, trace
files, checkpoints, the front-end builder, the validation guard) can
import it without cycles.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from repro.experiments import warnonce


def get_str(name: str, default: str = "") -> str:
    """The raw value of ``name``, or ``default`` when unset."""
    return os.environ.get(name, default)


def get_raw(name: str) -> Optional[str]:
    """The raw value of ``name``, or None when unset."""
    return os.environ.get(name)


def get_flag(name: str, default: bool) -> bool:
    """Boolean knob: unset -> ``default``; ``"0"`` or empty -> False.

    This preserves the historical semantics of every on/off knob
    (``REPRO_DISK_CACHE=0`` disables, ``REPRO_KEEP_GOING=1`` enables,
    an explicitly empty value always means off).
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw not in ("0", "")


def _warn_invalid(name: str, raw: str, default) -> None:
    warnonce.warn_once(
        name.lower().replace("_", "-"),
        f"ignoring invalid {name}={raw!r}; using {default!r}")


def get_int(name: str, default: Optional[int]) -> Optional[int]:
    """Integer knob: unset/empty -> ``default``; unparseable warns once."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError:
        _warn_invalid(name, raw, default)
        return default


def get_float(name: str, default: Optional[float]) -> Optional[float]:
    """Float knob: unset/empty -> ``default``; unparseable warns once."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return float(raw)
    except ValueError:
        _warn_invalid(name, raw, default)
        return default


def parse_hostport(raw: str, default: Tuple[str, int]) -> Tuple[str, int]:
    """Parse a service address; raises ValueError on a bad port.

    Accepts ``host:port``, a bare ``:port`` (uses the default host) and
    a bare ``port``.  Port 0 is legal — it asks the OS for an ephemeral
    port, which the service reports after binding (test harnesses rely
    on this).  Shared by the ``REPRO_SERVICE_ADDR`` knob and the
    positional address argument of ``repro worker``.
    """
    host, _, port_text = raw.rpartition(":")
    if not host:
        host = default[0]
    port = int(port_text)
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range: {port}")
    return host, port


def get_hostport(name: str, default: Tuple[str, int]) -> Tuple[str, int]:
    """``host:port`` knob (``REPRO_SERVICE_ADDR``): unparseable warns once."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return parse_hostport(raw, default)
    except ValueError:
        _warn_invalid(name, raw, default)
        return default
