"""Compact binary oracle-trace files shared across processes.

The oracle (correct-path) instruction stream is a pure function of the
benchmark program and the run length, yet it is the single most expensive
shared computation in a cold experiment grid: every worker process used
to re-execute the program functionally before it could simulate anything.
This module persists the stream as a versioned binary file so the oracle
is computed **once per (benchmark, length) machine-wide**; every other
process memory-maps the file read-only and rebuilds the in-memory stream
with three C-level array copies instead of a functional re-execution.

File layout (little-endian, word-addressed ISA), format version 2:

* 28-byte header: magic ``b"RPTR"``, format version (u32), record count
  (u64), payload column count (u32 — self-describing so future formats
  can append columns without a magic change), and a CRC32 of the payload
  arrays (u32, for corruption detection — a truncated or bit-flipped
  file must degrade to a cold recompute, never to a wrong figure);
* ``count`` u32 instruction addresses (``program.instructions[a].addr
  == a``, so an address is also an index into the code image);
* ``count`` direction bytes (0 = not taken, 1 = taken, 2 = not a
  conditional branch);
* ``count`` u32 correct-path successor addresses.

Version 2 also changed the in-memory contract: :func:`load_oracle`
returns an :class:`OracleTrace` — a list of row tuples (drop-in for
every existing consumer) that *also* carries the three column-major
payload arrays, so bulk consumers (re-stores, machine-side replay
scans, benchmarks) read arrays instead of a million tuples, and
:func:`store_oracle` serializes a column-carrying stream with three
C-level copies instead of a per-record packing loop.

Robustness mirrors :mod:`repro.experiments.diskcache`: writes are atomic
(temp file + ``os.replace``) and serialized per key through an advisory
file lock with dead-owner takeover, and unreadable, truncated,
wrong-version or checksum-failing files are quarantined (moved aside,
never destroyed) and treated as misses.  Files live
under ``<cache_dir>/traces`` (``$REPRO_CACHE_DIR`` aware) and their names
fold in the benchmark profile and the simulator source fingerprint, so
stale traces self-invalidate exactly like cached results.

``REPRO_TRACE_FILES=0`` disables the layer (the in-process oracle memo
in :mod:`repro.experiments.runner` keeps working).
"""

from __future__ import annotations

import hashlib
import mmap
import os
import struct
import sys
import tempfile
import zlib
from array import array
from collections import OrderedDict
from pathlib import Path
from typing import List, Optional

from repro.experiments import columns, diskcache, env, warnonce
from repro.experiments.cachekey import canonical_json, code_fingerprint, profile_to_dict
from repro.isa.program import Program

_MAGIC = b"RPTR"
#: Bump when the record layout changes; old files then fail the header
#: check and are deleted rather than misread.  v1 -> v2: the header
#: gained the payload column count and the loader started returning the
#: column-carrying :class:`OracleTrace` view.
TRACE_FORMAT_VERSION = 2
_HEADER = struct.Struct("<4sIQII")  # magic, version, count, ncols, crc32
_NCOLS = 3  # addresses, directions, successors
_SUFFIX = ".trace"

#: Direction byte for "not a conditional branch" (oracle ``taken is None``).
_NOT_BRANCH = 2
#: Direction byte -> oracle ``taken`` value, and the set of legal bytes.
_TAKEN = (False, True, None)
_DIR_BYTES = bytes((0, 1, _NOT_BRANCH))

#: array typecode with a 4-byte item ("I" on every mainstream platform).
_U32 = next(tc for tc in ("I", "L") if array(tc).itemsize == 4)


class OracleTrace(list):
    """Row-major oracle stream carrying its column-major backing arrays.

    A drop-in ``list`` of ``(instruction, taken, next_pc)`` records —
    every existing consumer keeps indexing rows — plus the three bulk
    columns the trace file stores:

    * ``addrs`` — u32 :class:`array.array` of instruction addresses
      (indices into the code image);
    * ``dirs`` — ``bytes`` of direction codes (0/1/2, see module doc);
    * ``next_pcs`` — u32 :class:`array.array` of correct-path successors.

    Bulk walks (branch-density scans, machine-side replay statistics,
    benchmark loaders) should read the columns; :func:`store_oracle`
    recognizes the class and serializes the columns directly instead of
    re-packing record by record.
    """

    #: The lazy subclass below adds no slots of its own — every field
    #: lives here so ``__class__`` reassignment (the materialize-once
    #: trick) sees layout-compatible types.
    __slots__ = ("addrs", "dirs", "next_pcs", "_count", "_program", "_buffer")

    def __init__(self, rows, addrs, dirs, next_pcs):
        super().__init__(rows)
        self.addrs = addrs
        self.dirs = dirs
        self.next_pcs = next_pcs
        self._count = None
        self._program = None
        self._buffer = None


class LazyOracleTrace(OracleTrace):
    """Mapped columns first, row tuples only on demand.

    The vectorized load path (:func:`load_oracle` under ``REPRO_VECTOR``)
    returns the three payload columns as zero-copy numpy views over the
    trace file's mmap — nothing per-record happens at load time.  Bulk
    consumers (column scans, re-stores, the machine batcher's shared
    resolution) never touch rows at all; the first *row* access
    materializes the whole tuple list in one C-level pass and then
    reassigns ``__class__`` to the plain :class:`OracleTrace`, so every
    subsequent ``oracle[i]`` is ordinary list indexing with zero
    per-access overhead.  ``len()`` works without materializing.

    Rows are built from ``.tolist()``/``bytes`` copies so they hold
    plain ``int``/``bool``/``None`` values — numpy scalars must never
    leak into the stream (consumers compare, hash and serialize row
    fields).  The mmap stays referenced (``_buffer`` and the views'
    ``base``) for the lifetime of the columns; it is opened
    ``ACCESS_READ``, so the views are read-only and the file cannot be
    mutated through them.
    """

    __slots__ = ()

    def __init__(self, count, addrs, dirs, next_pcs, program, buffer):
        list.__init__(self, ())
        self.addrs = addrs
        self.dirs = dirs
        self.next_pcs = next_pcs
        self._count = count
        self._program = program
        self._buffer = buffer

    def _materialize(self) -> None:
        instructions = self._program.instructions
        addrs = self.addrs
        next_pcs = self.next_pcs
        list.extend(self, zip(map(instructions.__getitem__, addrs.tolist()),
                              map(_TAKEN.__getitem__, bytes(self.dirs)),
                              next_pcs.tolist()))
        self.__class__ = OracleTrace

    def __len__(self):
        return self._count

    def __bool__(self):
        return self._count > 0

    def __getitem__(self, index):
        self._materialize()
        return list.__getitem__(self, index)

    def __iter__(self):
        self._materialize()
        return list.__iter__(self)

    def __reversed__(self):
        self._materialize()
        return list.__reversed__(self)

    def __contains__(self, item):
        self._materialize()
        return list.__contains__(self, item)

    def __eq__(self, other):
        self._materialize()
        return list.__eq__(self, other)

    def __ne__(self, other):
        self._materialize()
        return list.__ne__(self, other)

    __hash__ = None

    def index(self, *args):
        self._materialize()
        return list.index(self, *args)

    def count(self, *args):
        self._materialize()
        return list.count(self, *args)


#: Bounded identity memo for :func:`as_columns` over *plain* row lists:
#: a freshly executed (or v1-era) oracle used to rebuild its columns on
#: every store/scan.  Keyed by ``id`` with a strong reference to the
#: list itself, so a recycled id can never alias a dead oracle.
_column_memo: "OrderedDict[int, tuple]" = OrderedDict()
_COLUMN_MEMO_MAX = 8


def clear_column_memo() -> None:
    """Drop the plain-list column memo (``runner.clear_caches`` calls this)."""
    _column_memo.clear()


def as_columns(oracle: List[tuple]) -> "OracleTrace":
    """The column-carrying view of any oracle stream.

    An :class:`OracleTrace` passes through unchanged; a plain row list
    gets its columns built once and memoized by identity, so repeated
    stores/scans of the same stream stop re-paying the packing loop.
    """
    if isinstance(oracle, OracleTrace):
        return oracle
    key = id(oracle)
    hit = _column_memo.get(key)
    if hit is not None and hit[0] is oracle:
        _column_memo.move_to_end(key)
        return hit[1]
    count = len(oracle)
    addrs = array(_U32)
    next_pcs = array(_U32)
    dirs = bytearray(count)
    addr_append = addrs.append
    next_append = next_pcs.append
    for i, (inst, taken, next_pc) in enumerate(oracle):
        addr_append(inst.addr)
        if taken is not None:
            dirs[i] = 1 if taken else 0
        else:
            dirs[i] = _NOT_BRANCH
        next_append(next_pc)
    trace = OracleTrace(oracle, addrs, bytes(dirs), next_pcs)
    _column_memo[key] = (oracle, trace)
    while len(_column_memo) > _COLUMN_MEMO_MAX:
        _column_memo.popitem(last=False)
    return trace


def enabled() -> bool:
    """Is the trace-file layer on?  (``REPRO_TRACE_FILES=0`` turns it off.)"""
    return env.get_flag("REPRO_TRACE_FILES", True)


def trace_dir() -> Path:
    """Trace files live beside the result cache, under ``traces/``."""
    return diskcache.cache_dir() / "traces"


def trace_key(benchmark: str, n: int) -> str:
    """Stable hex key for one benchmark's oracle at one run length.

    Folds in the generation profile (same name, different parameters must
    not collide) and the package source fingerprint (an ISA or workload
    generator edit invalidates every stored trace).
    """
    material = {
        "kind": "oracle-trace",
        "format": TRACE_FORMAT_VERSION,
        "benchmark": benchmark,
        "profile": profile_to_dict(benchmark),
        "n": n,
        "code": code_fingerprint(),
    }
    return hashlib.sha256(canonical_json(material).encode()).hexdigest()


def trace_path(benchmark: str, n: int) -> Path:
    """Where this (benchmark, length) oracle's trace file lives."""
    return trace_dir() / f"{trace_key(benchmark, n)}{_SUFFIX}"


# ------------------------------------------------------------------ write

def store_oracle(benchmark: str, n: int, oracle: List[tuple]) -> Optional[Path]:
    """Persist one oracle stream; returns the path, or None when disabled.

    Atomic and failure-silent like the result cache: trace files are an
    accelerator, so a full disk must not break an experiment run.

    Concurrent writers of the same key are serialized through an
    advisory :class:`~repro.experiments.diskcache.FileLock` (pid-stamped,
    with dead-owner takeover, so a SIGKILLed writer never wedges the
    next one).  The loser of the race finds the file already present
    when it gets the lock and skips the redundant multi-megabyte write;
    a lock timeout degrades to the plain lock-free atomic write, which
    is always safe.
    """
    if not enabled():
        return None
    path = trace_path(benchmark, n)
    try:
        lock = diskcache.FileLock(f"trace-{path.stem[:32]}", timeout=30.0)
        with lock:
            if path.exists():
                return path  # a concurrent writer won; its file is ours
            return _store_oracle_unlocked(benchmark, n, oracle)
    except (KeyboardInterrupt, SystemExit):
        raise
    except (diskcache.LockTimeout, OSError):
        return _store_oracle_unlocked(benchmark, n, oracle)


def _store_oracle_unlocked(benchmark: str, n: int,
                           oracle: List[tuple]) -> Optional[Path]:
    """The atomic temp-file + replace write itself (lock-free core)."""
    columns = as_columns(oracle)
    count = len(columns)
    addrs = columns.addrs
    next_pcs = columns.next_pcs
    if sys.byteorder != "little":  # pragma: no cover - x86/arm are LE
        addrs = array(_U32, addrs)
        next_pcs = array(_U32, next_pcs)
        addrs.byteswap()
        next_pcs.byteswap()
    a_bytes = addrs.tobytes()
    d_bytes = bytes(columns.dirs)
    p_bytes = next_pcs.tobytes()
    crc = zlib.crc32(a_bytes)
    crc = zlib.crc32(d_bytes, crc)
    crc = zlib.crc32(p_bytes, crc)
    directory = trace_dir()
    path = trace_path(benchmark, n)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_HEADER.pack(_MAGIC, TRACE_FORMAT_VERSION,
                                          count, _NCOLS, crc))
                handle.write(a_bytes)
                handle.write(d_bytes)
                handle.write(p_bytes)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except (KeyboardInterrupt, SystemExit):
        raise  # control flow escapes the silent-failure contract
    except OSError:
        return None
    return path


# ------------------------------------------------------------------- read

def load_oracle(benchmark: str, n: int,
                program: Program) -> Optional[OracleTrace]:
    """Rebuild an oracle stream from its trace file, or None on miss.

    The file is memory-mapped read-only.  Under ``REPRO_VECTOR`` (with
    numpy present) the three payload columns are **zero-copy**
    ``numpy.frombuffer`` views over the mapping and the returned
    :class:`LazyOracleTrace` materializes row tuples only when a scalar
    consumer first indexes one; otherwise the arrays are materialized
    with C-level ``array.frombytes`` copies and the stream's
    ``(instruction, taken, next_pc)`` tuples are rebuilt eagerly by
    indexing the shared code image (``instructions[a].addr == a``).
    Any structural problem — bad magic, version or checksum mismatch,
    truncation, an address off the code image — quarantines the file and
    returns None so a corrupt trace can never shadow a future write.
    """
    if not enabled():
        return None
    path = trace_path(benchmark, n)
    try:
        with open(path, "rb") as handle:
            mm = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    except (OSError, ValueError):
        return None
    keep_mapped = False
    try:
        try:
            header = mm[:_HEADER.size]
            magic, version, count, ncols, crc = _HEADER.unpack(header)
            if magic != _MAGIC or version != TRACE_FORMAT_VERSION:
                raise ValueError("bad magic or version")
            if ncols != _NCOLS:
                raise ValueError("unexpected column count")
            a_off = _HEADER.size
            d_off = a_off + 4 * count
            p_off = d_off + count
            end = p_off + 4 * count
            if len(mm) != end:
                raise ValueError("truncated or oversized payload")
            if zlib.crc32(mm[a_off:end]) != crc:
                raise ValueError("checksum mismatch")
            instructions = program.instructions
            if columns.enabled():
                # Zero-copy path: the three payload columns become
                # read-only numpy views straight over the mapping (the
                # mmap stays open for their lifetime — the views and the
                # trace keep it referenced) and row tuples materialize
                # only if a scalar consumer ever asks for one.
                np = columns.np
                u32 = np.dtype("<u4")
                addrs_v = np.frombuffer(mm, dtype=u32, count=count,
                                        offset=a_off)
                dirs_v = np.frombuffer(mm, dtype=np.uint8, count=count,
                                       offset=d_off)
                next_v = np.frombuffer(mm, dtype=u32, count=count,
                                       offset=p_off)
                if count and (int(addrs_v.max()) >= len(instructions)
                              or int(dirs_v.max()) > _NOT_BRANCH):
                    raise ValueError("address or direction off the image")
                keep_mapped = True
                return LazyOracleTrace(count, addrs_v, dirs_v, next_v,
                                       program, mm)
            addrs = array(_U32)
            next_pcs = array(_U32)
            addrs.frombytes(mm[a_off:d_off])
            dirs = mm[d_off:p_off]
            next_pcs.frombytes(mm[p_off:end])
            if sys.byteorder != "little":  # pragma: no cover
                addrs.byteswap()
                next_pcs.byteswap()
            if count and (max(addrs) >= len(instructions)
                          or dirs.translate(None, _DIR_BYTES)):
                raise ValueError("address or direction off the image")
            # All-C reconstruction: three mapped columns zipped into the
            # stream's (instruction, taken, next_pc) tuples, returned
            # with the columns attached for bulk consumers.
            return OracleTrace(zip(map(instructions.__getitem__, addrs),
                                   map(_TAKEN.__getitem__, dirs),
                                   next_pcs),
                               addrs, dirs, next_pcs)
        finally:
            if not keep_mapped:
                mm.close()
    except (ValueError, struct.error) as problem:
        # One warning machine-wide (shared latch): in a worker pool every
        # process can trip over the same bad file at once, and N copies
        # of the same diagnostic would bury real output.
        warnonce.warn_once(
            f"trace-corrupt:{path.name}",
            f"discarding corrupt oracle trace for {benchmark!r} "
            f"({problem}); the stream will be recomputed",
            shared=True)
        # Quarantine, don't delete: the move preserves the evidence, and
        # if a concurrent worker already healed the key (rewrote a good
        # file) or quarantined it first, losing that race is harmless —
        # an unlink here could have destroyed the fresh rewrite.
        diskcache.quarantine(path)
        return None


# ------------------------------------------------------------------ admin

def purge() -> int:
    """Delete every trace file; returns the number removed."""
    directory = trace_dir()
    removed = 0
    if not directory.is_dir():
        return removed
    for path in directory.glob(f"*{_SUFFIX}"):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed


def stats() -> dict:
    """Trace-file count and total bytes on disk (for reporting)."""
    directory = trace_dir()
    entries = 0
    size = 0
    if directory.is_dir():
        for path in directory.glob(f"*{_SUFFIX}"):
            try:
                size += path.stat().st_size
                entries += 1
            except OSError:
                pass
    return {"entries": entries, "bytes": size}
