"""Fetch engines: trace cache + supporting icache, and the icache reference.

Both engines share the same contract: ``fetch(pc)`` returns a
:class:`FetchResult` describing the instructions supplied this cycle along
the *predicted* path (plus any inactively issued trace continuation), the
predicted next fetch address, and the bookkeeping needed to train the
predictors at retire time.  The engines maintain speculative state (global
history, return address stack) with snapshot/restore for checkpoint repair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.branch.history import GlobalHistory
from repro.branch.hybrid import HybridPredictor, HybridPrediction
from repro.branch.indirect import LastTargetPredictor
from repro.branch.multiple import MultipleBranchPredictor, SplitMultiplePredictor
from repro.branch.ras import IdealReturnAddressStack
from repro.isa.instruction import INST_BYTES, Instruction
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.program import Program
from repro.mem.hierarchy import MemoryHierarchy
from repro.frontend.stats import FetchReason
from repro.trace.fill_unit import FillUnit
from repro.trace.segment import FinalizeReason, TraceSegment
from repro.trace.trace_cache import TraceCache

#: Fetch width in instructions (also the trace segment size).
FETCH_WIDTH = 16

_REASON_FROM_FINALIZE = {
    FinalizeReason.MAX_SIZE: FetchReason.MAX_SIZE,
    FinalizeReason.MAX_BRANCHES: FetchReason.MAXIMUM_BRS,
    FinalizeReason.ATOMIC_BLOCK: FetchReason.ATOMIC_BLOCKS,
    FinalizeReason.SEG_ENDER: FetchReason.RET_INDIR_TRAP,
    FinalizeReason.RECOVERY: FetchReason.MISPRED_BR,
    FinalizeReason.FLUSH: FetchReason.ATOMIC_BLOCKS,
}


@dataclass(frozen=True, slots=True)
class PredRecord:
    """Everything needed to train the predictor for one fetched branch."""

    addr: int
    position: int      # prediction slot within this fetch (0..2)
    token: object      # predictor-specific handle (row/index/HybridPrediction)
    predicted: bool


class FetchResult:
    """One cycle's fetch.

    A hand-rolled ``__slots__`` class rather than a dataclass: one is
    constructed per fetch (the single hottest allocation in a front-end
    simulation), and the engines fill the fields in directly, so the
    constructor takes only the few values known up front.
    """

    __slots__ = (
        "pc", "source", "active", "active_dirs", "active_promoted",
        "inactive", "inactive_dirs", "inactive_promoted", "pred_records",
        "divergence", "next_pc", "stall_cycles", "raw_reason",
        "predictions_used", "ends_with_trap", "segment", "control_snapshots",
        "variant", "pred_tokens",
    )

    def __init__(self, pc: int, source: str, stall_cycles: int = 0,
                 segment: Optional[TraceSegment] = None):
        self.pc = pc
        self.source = source                     # "tc" or "icache"
        self.active: List[Instruction] = []
        #: per active instruction: the fetch path's direction for
        #: conditional branches (promoted => static direction, dynamic =>
        #: prediction); None for non-branches.
        self.active_dirs: List[Optional[bool]] = []
        self.active_promoted: List[bool] = []
        self.inactive: List[Instruction] = []
        self.inactive_dirs: List[Optional[bool]] = []
        self.inactive_promoted: List[bool] = []
        self.pred_records: List[PredRecord] = []
        self.divergence = False       # trace path diverged from predicted path
        self.next_pc: Optional[int] = None  # None => target unknown (misfetch)
        self.stall_cycles = stall_cycles    # icache miss cycles before delivery
        self.raw_reason = FetchReason.ICACHE
        self.predictions_used = 0
        self.ends_with_trap = False
        self.segment = segment
        #: position in ``active`` -> (ghr value before this branch's push,
        #: RAS snapshot at that point).  Used by the core for checkpoint
        #: repair.
        self.control_snapshots: dict = {}
        #: the CompiledVariant this fetch was served from, or None when it
        #: went through a generic path.  The front-end simulator keys its
        #: fast retire path off this.
        self.variant: Optional[CompiledVariant] = None
        #: per-fetch predictor tokens ``(t0, t1, t2)`` on the variant path;
        #: there ``pred_records`` is built lazily (``None`` until a generic
        #: consumer actually needs the records — most variant fetches
        #: retire compiled and never do).
        self.pred_tokens: Optional[tuple] = None

    @property
    def size(self) -> int:
        return len(self.active)


#: Shared by every variant-served FetchResult: capture is off on the
#: variant path, so nothing ever writes into it.
_EMPTY_SNAPSHOTS: dict = {}


class CompiledVariant:
    """One fully precomputed fetch outcome of a trace segment.

    A segment fetch is determined by the predicted directions of its
    dynamic branches: with at most three of them there are at most eight
    outcomes per segment, each compiled once (lazily, on first occurrence)
    into everything the fetch and the front-end simulator's retire path
    need — the instruction/direction/promotion lists (shared across
    fetches, never mutated), the batched GHR shift, the RAS pushes, the
    predictor-training metadata, and the fill unit's event list.  The only
    per-fetch residue is predictor-token capture (``pred_meta``) and the
    tail target when the segment ends in a return or indirect jump.
    """

    __slots__ = (
        "active", "dirs", "promoted", "inactive", "inactive_dirs",
        "inactive_promoted", "divergence", "next_pc", "tail", "last_addr",
        "ends_with_trap", "raw_reason", "predictions_used", "pred_meta",
        "ras_pushes", "ghr_count", "ghr_bits", "branch_checks", "n_active",
        "n_dyn", "n_promoted", "n_indirect", "train_meta", "ret_pop",
        "trap_last", "fill_events", "fill_branches", "key", "dyn_pos",
        "machine_plan",
    )


def compile_variant(segment: TraceSegment, key: int,
                    inactive_issue: bool) -> CompiledVariant:
    """Compile the fetch of ``segment`` under predicted pattern ``key``.

    Bit ``k`` of ``key`` is the predicted direction of the segment's
    ``k``-th dynamic branch; the compiled walk mirrors
    ``TraceFetchEngine._fetch_from_plan`` exactly, cut at the first
    dynamic branch whose prediction disagrees with the embedded path.
    """
    events, dirs_tmpl, promoted_tmpl, _promoted_addrs, tail = segment.fetch_plan()
    instructions = segment.instructions
    v = CompiledVariant()
    v.key = key
    pred_meta = []
    train_meta = []
    ras_pushes = []
    path: List[bool] = []
    ghr_bits = 0
    ghr_count = 0
    dyn_index = 0
    divergence_pos = -1
    diverging_predicted = False
    dyn_pos: dict = {}
    for kind, pos, payload in events:
        if kind == 0:
            ras_pushes.append(payload)
            continue
        if kind == 1:
            ghr_bits = (ghr_bits << 1) | payload
            ghr_count += 1
            continue
        direction, addr = payload
        predicted = bool((key >> dyn_index) & 1)
        pred_meta.append((addr, dyn_index, predicted))
        train_meta.append((tuple(path), predicted))
        dyn_pos[pos] = dyn_index
        path.append(predicted)
        dyn_index += 1
        ghr_bits = (ghr_bits << 1) | predicted
        ghr_count += 1
        if predicted != direction:
            divergence_pos = pos
            diverging_predicted = predicted
            break
    if divergence_pos >= 0:
        # The diverging slot itself must not be bit-flipped by the
        # simulator's mispredict fast path: flipping it would *extend* the
        # fetch past the divergence, not truncate it (the inactively issued
        # remainder is on the correct path there — generic territory).
        del dyn_pos[divergence_pos]
    v.dyn_pos = dyn_pos
    v.predictions_used = v.n_dyn = dyn_index
    v.pred_meta = tuple(pred_meta)
    v.train_meta = tuple(train_meta)
    v.ras_pushes = tuple(ras_pushes)
    v.ghr_bits = ghr_bits
    v.ghr_count = ghr_count
    if divergence_pos >= 0:
        cut = divergence_pos + 1
        v.active = instructions[:cut]
        dirs = dirs_tmpl[:cut]
        dirs[divergence_pos] = diverging_predicted
        v.dirs = dirs
        v.promoted = promoted_tmpl[:cut]
        v.divergence = True
        diverging = instructions[divergence_pos]
        v.next_pc = diverging.target if diverging_predicted else diverging.fall_through
        v.raw_reason = FetchReason.PARTIAL_MATCH
        v.tail = 0  # constant successor along the predicted path
        v.ends_with_trap = False
        if inactive_issue and cut < len(instructions):
            v.inactive = instructions[cut:]
            v.inactive_dirs = dirs_tmpl[cut:]
            v.inactive_promoted = promoted_tmpl[cut:]
        else:
            v.inactive = []
            v.inactive_dirs = []
            v.inactive_promoted = []
    else:
        v.active = instructions
        v.dirs = dirs_tmpl
        v.promoted = promoted_tmpl
        v.divergence = False
        v.inactive = []
        v.inactive_dirs = []
        v.inactive_promoted = []
        v.raw_reason = _REASON_FROM_FINALIZE[segment.finalize_reason]
        v.tail = tail
        v.ends_with_trap = tail == 3
        if tail == 0:
            v.next_pc = segment.next_addr
        elif tail == 3:
            v.next_pc = instructions[-1].fall_through
        else:
            v.next_pc = None  # RAS pop / indirect prediction, resolved per fetch
    v.last_addr = instructions[-1].addr
    v.n_active = len(v.active)
    v.n_indirect = 1 if (not v.divergence and tail == 2) else 0
    v.ret_pop = not v.divergence and tail == 1
    v.trap_last = (not v.divergence
                   and instructions[-1].op.opclass is OpClass.TRAP)
    # Single pass over the active slots building the oracle branch checks,
    # the promoted-branch count, and the fill-unit event list (plain runs
    # extend the pending block wholesale, conditional branches re-consult
    # the bias table live at retire time — promotion state evolves between
    # fetches of the same variant — and segment enders cut the block).
    branch_checks = []
    fill_events = []
    fill_branches = []
    n_promoted = 0
    run: List[tuple] = []
    v_dirs = v.dirs
    v_promoted = v.promoted
    for pos, inst in enumerate(v.active):
        d = v_dirs[pos]
        if d is not None:
            branch_checks.append((pos, d))
            if v_promoted[pos]:
                n_promoted += 1
            if run:
                fill_events.append((0, tuple(run)))
                run = []
            fill_events.append((1, (inst, d)))
            fill_branches.append((inst.addr, d))
        elif inst.op.ends_trace_segment:
            if run:
                fill_events.append((0, tuple(run)))
                run = []
            fill_events.append((2, (inst, None, False)))
        else:
            run.append((inst, None, False))
    if run:
        fill_events.append((0, tuple(run)))
    v.branch_checks = tuple(branch_checks)
    v.n_promoted = n_promoted
    v.fill_events = tuple(fill_events)
    v.fill_branches = tuple(fill_branches)
    # Built lazily by the machine core on the variant's first fetch into
    # the out-of-order window (decode rows + checkpoint-snapshot
    # reconstruction metadata); cleared with the variant itself.
    v.machine_plan = None
    return v


class _FrontEndBase:
    """Shared speculative state: global history, RAS, indirect predictor."""

    def __init__(self, program: Program, memory: MemoryHierarchy, ghr_bits: int):
        self.program = program
        self.memory = memory
        self.ghr = GlobalHistory(ghr_bits)
        self.ras = IdealReturnAddressStack()
        self.indirect = LastTargetPredictor()
        #: Record per-branch (GHR, RAS) snapshots in each FetchResult's
        #: ``control_snapshots``.  Only the out-of-order core reads them
        #: (checkpoint repair), and it re-enables this on engine adoption
        #: (see ``Machine.__init__``); everything else — the oracle-driven
        #: front-end simulator, benchmarks, warm-up drivers — runs with
        #: capture off, which both skips a RAS copy per fetched branch and
        #: unlocks the compiled-variant fetch path (variant results share
        #: per-variant lists, which must never leak into the core).
        self.capture_snapshots = False
        #: pc -> (block, line_breaks): the natural fetch block starting at
        #: a pc (up to the first control / fetch width / image end) is a
        #: pure function of the static program, so it is walked once; only
        #: the cache-line hit checks are replayed per fetch.
        self._block_cache: dict = {}

    def snapshot(self) -> tuple:
        return (self.ghr.snapshot(), self.ras.snapshot())

    def restore(self, state: tuple) -> None:
        ghr_value, ras_state = state
        self.ghr.restore(ghr_value)
        self.ras.restore(ras_state)

    # --- icache block fetch (shared by both engines) ---------------------

    def _fetch_icache_block(self, pc: int) -> Tuple[List[Instruction], int, bool]:
        """Fetch one block from the instruction cache with split-line fetch.

        Returns (instructions, stall_cycles, line_boundary_cut).  The block
        ends at the first control instruction, the fetch width, the end of
        the code image, or a second-line miss (split-line rule).

        The block contents and the positions where it crosses a cache line
        are static per pc, so they come from ``_block_cache``; only the
        dynamic part — the line hit checks, in address order — replays
        against the memory hierarchy on every fetch.
        """
        memory = self.memory
        latency = memory.inst_line_latency(pc)
        stall = max(0, latency - memory.config.l1i_hit_latency)
        cached = self._block_cache.get(pc)
        if cached is None:
            cached = self._build_icache_block(pc)
            self._block_cache[pc] = cached
        block, breaks = cached
        for pos, addr, byte_addr in breaks:
            if not memory.inst_line_hit(addr):
                # Second-line miss terminates the fetch; start the fill.
                memory.inst_line_latency(addr)
                return block[:pos], stall, True
            memory.l1i.access(byte_addr)
        return block, stall, False

    def _build_icache_block(self, pc: int) -> tuple:
        """Walk the static block starting at ``pc`` once (no memory access).

        Returns ``(block, breaks)`` where ``breaks`` lists, per cache-line
        crossing inside the block, ``(position, word_addr, byte_addr)`` of
        the first instruction on the new line.
        """
        line_bytes = self.memory.config.l1i_line_bytes
        line_id = (pc * INST_BYTES) // line_bytes
        program_fetch = self.program.fetch
        block: List[Instruction] = []
        breaks = []
        addr = pc
        while len(block) < FETCH_WIDTH:
            inst = program_fetch(addr)
            if inst is None:
                break
            this_line = (addr * INST_BYTES) // line_bytes
            if this_line != line_id:
                breaks.append((len(block), addr, addr * INST_BYTES))
                line_id = this_line
            block.append(inst)
            if inst.op.ends_fetch_block:
                break
            addr += 1
        return block, tuple(breaks)

    def _control_next_pc(self, inst: Instruction, predicted_taken: Optional[bool]) -> Optional[int]:
        """Predicted successor of a block-ending control instruction."""
        op = inst.op
        if op.is_cond_branch:
            return inst.target if predicted_taken else inst.fall_through
        if op is Opcode.JMP:
            return inst.target
        if op is Opcode.CALL:
            self.ras.push(inst.fall_through)
            return inst.target
        if op is Opcode.RET:
            return self.ras.pop()
        if op is Opcode.JR:
            return self.indirect.predict(inst.addr)
        # TRAP / HALT serialize; fetch resumes at the next instruction.
        return inst.fall_through


class TraceFetchEngine(_FrontEndBase):
    """Trace cache front end with partial matching and inactive issue."""

    def __init__(
        self,
        program: Program,
        memory: MemoryHierarchy,
        trace_cache: TraceCache,
        fill_unit: FillUnit,
        predictor,
        ghr_bits: Optional[int] = None,
        inactive_issue: bool = True,
    ):
        if ghr_bits is None:
            ghr_bits = getattr(predictor, "history_bits", 14)
        super().__init__(program, memory, ghr_bits)
        self.trace_cache = trace_cache
        self.fill_unit = fill_unit
        self.predictor = predictor
        #: inactive issue is always on in the paper; ablation turns the
        #: dormant remainder of partially matching lines into a plain cut
        self.inactive_issue = inactive_issue
        #: one-shot direction overrides installed by promoted-fault recovery
        self._fault_overrides = {}
        #: pc -> [epoch, candidates, ghr_value, scores]: path-associative
        #: candidate sets memoized against the trace cache's content epoch,
        #: plus the last (history -> per-segment score) scoring pass.
        self._cand_cache: dict = {}

    def add_fault_override(self, addr: int, direction: bool) -> None:
        """Force the next fetch of the promoted branch at ``addr`` to follow
        ``direction`` (its architecturally correct outcome)."""
        self._fault_overrides[addr] = direction

    def fetch(self, pc: int) -> FetchResult:
        if self.trace_cache.path_assoc:
            segment = self._select_path(pc)
        else:
            segment = self.trace_cache.lookup(pc)
        if segment is None:
            return self._fetch_from_icache(pc)
        if self._fault_overrides or self.capture_snapshots:
            return self._fetch_from_segment(pc, segment)
        return self._fetch_from_variant(pc, segment)

    def _select_path(self, pc: int) -> Optional[TraceSegment]:
        """Path-associative selection: among same-start candidates, take
        the one whose leading dynamic branch directions agree with the
        predictor for the longest prefix.

        The candidate set for a pc is memoized against the trace cache's
        content epoch (miss and single-candidate fetches skip the way
        scan), and multi-candidate scoring is memoized per (pc, history).
        Tie-breaking follows the *current* LRU way order — ``record_hit``
        reorders ways without changing membership — so the multi-candidate
        arm re-reads the order and only reuses the per-segment scores.
        """
        tc = self.trace_cache
        epoch = tc.epoch
        cached = self._cand_cache.get(pc)
        if cached is not None and cached[0] == epoch:
            candidates = cached[1]
        else:
            candidates = tc.lookup_candidates(pc)
            cached = [epoch, candidates, -1, None]
            self._cand_cache[pc] = cached
        if not candidates:
            tc.record_miss()
            return None
        if len(candidates) == 1:
            chosen = candidates[0]
        else:
            current = tc.lookup_candidates(pc)
            ghr_value = self.ghr.value
            scores = cached[3]
            if cached[2] != ghr_value:
                pattern = self.predictor.predict_pattern(pc, ghr_value)[0]
                scores = {}
                for segment in current:
                    matched = 0
                    for branch in segment.dynamic_branches[:3]:
                        if ((pattern >> matched) & 1) != branch.direction:
                            break
                        matched += 1
                    scores[id(segment)] = (matched, len(segment.instructions))
                cached[2] = ghr_value
                cached[3] = scores
            chosen = current[0]
            best = scores[id(chosen)]
            for segment in current:
                score = scores[id(segment)]
                if score > best:
                    best = score
                    chosen = segment
        tc.record_hit(chosen)
        return chosen

    def _fetch_from_segment(self, pc: int, segment: TraceSegment) -> FetchResult:
        """Slow gate: pending fault overrides or snapshot capture active."""
        events, dirs_tmpl, promoted_tmpl, promoted_addrs, tail = segment.fetch_plan()
        fault_overrides = self._fault_overrides
        if fault_overrides and not fault_overrides.keys().isdisjoint(promoted_addrs):
            return self._fetch_from_segment_slow(pc, segment)
        if self.capture_snapshots:
            # Per-branch snapshot capture needs the event walk (live GHR
            # and RAS values at each branch); variant results also share
            # per-variant lists that must never reach the core.
            return self._fetch_from_plan(pc, segment, events, dirs_tmpl,
                                         promoted_tmpl, tail)
        return self._fetch_from_variant(pc, segment)

    def _fetch_from_variant(self, pc: int, segment: TraceSegment) -> FetchResult:
        """Serve a segment fetch from its compiled variant (the hot path).

        The predictor is consulted once (iff the segment contains a
        dynamic branch, like the plan walk) and its pattern selects the
        precompiled outcome; everything else is field copies plus the
        batched GHR shift and RAS pushes.
        """
        mask = segment._pattern_mask
        if mask < 0:
            events = segment.fetch_plan()[0]
            mask = 0
            trace_key = 0
            n_dyn = 0
            for kind, _pos, payload in events:
                if kind == 2:
                    mask = (mask << 1) | 1
                    if payload[0]:
                        trace_key |= 1 << n_dyn
                    n_dyn += 1
            segment._pattern_mask = mask
            segment._trace_key = trace_key
            segment._variants = {}
        if mask:
            pattern, t0, t1, t2 = self.predictor.predict_pattern(pc, self.ghr.value)
            key = pattern & mask
        else:
            key = 0
        variants = segment._variants
        variant = variants.get(key)
        if variant is None:
            variant = compile_variant(segment, key, self.inactive_issue)
            variants[key] = variant
        result = FetchResult.__new__(FetchResult)
        result.pc = pc
        result.source = "tc"
        result.active = variant.active
        result.active_dirs = variant.dirs
        result.active_promoted = variant.promoted
        result.inactive = variant.inactive
        result.inactive_dirs = variant.inactive_dirs
        result.inactive_promoted = variant.inactive_promoted
        result.divergence = variant.divergence
        result.stall_cycles = 0
        result.raw_reason = variant.raw_reason
        result.predictions_used = variant.predictions_used
        result.ends_with_trap = variant.ends_with_trap
        result.segment = segment
        result.control_snapshots = _EMPTY_SNAPSHOTS
        result.variant = variant
        if variant.pred_meta:
            result.pred_records = None  # built lazily from pred_tokens
            result.pred_tokens = (t0, t1, t2)
        else:
            result.pred_records = ()
            result.pred_tokens = None
        if variant.ghr_count:
            self.ghr.push_bits(variant.ghr_bits, variant.ghr_count)
        ras = self.ras
        for fall_through in variant.ras_pushes:
            ras.push(fall_through)
        tail = variant.tail
        if tail == 1:
            result.next_pc = ras.pop()
        elif tail == 2:
            result.next_pc = self.indirect.predict(variant.last_addr)
        else:
            result.next_pc = variant.next_pc
        return result

    def _fetch_from_plan(self, pc: int, segment: TraceSegment, events: list,
                         dirs_tmpl: list, promoted_tmpl: list, tail: int) -> FetchResult:
        """Segment fetch along the precomputed event plan (no pending fault
        overrides, the overwhelmingly common case).

        Only the control *events* are walked — per-position work is
        replaced by slicing the segment's cached direction/promotion
        templates, which is valid because a non-diverging fetch follows
        exactly the embedded path and a diverging one follows it up to the
        diverging branch.
        """
        ghr = self.ghr
        ras = self.ras
        ghr_push = ghr.push
        # The predictor is consulted with the fetch-entry history, but only
        # if the segment actually contains a dynamically predicted branch —
        # fully promoted (or branch-free) segments skip the table walk.
        ghr_at_entry = ghr.value
        prediction = None
        result = FetchResult(pc=pc, source="tc", segment=segment)
        capture = self.capture_snapshots
        snapshots = result.control_snapshots
        ras_snap = None
        instructions = segment.instructions
        dyn_index = 0
        divergence_pos = -1
        diverging_predicted = False
        for kind, pos, payload in events:
            if kind == 0:
                ras.push(payload)
                ras_snap = None
                continue
            if capture:
                if ras_snap is None:
                    ras_snap = ras.snapshot()
                snapshots[pos] = (ghr.value, ras_snap)
            if kind == 1:
                ghr_push(payload)
            else:
                direction, addr = payload
                if prediction is None:
                    prediction = self.predictor.predict(pc, ghr_at_entry)
                predicted = prediction.taken[dyn_index]
                result.pred_records.append(
                    PredRecord(addr=addr, position=dyn_index,
                               token=prediction.indices[dyn_index], predicted=predicted)
                )
                dyn_index += 1
                ghr_push(predicted)
                if predicted != direction:
                    divergence_pos = pos
                    diverging_predicted = predicted
                    break
        result.predictions_used = dyn_index
        if divergence_pos >= 0:
            cut = divergence_pos + 1
            result.active = instructions[:cut]
            dirs = dirs_tmpl[:cut]
            dirs[divergence_pos] = diverging_predicted
            result.active_dirs = dirs
            result.active_promoted = promoted_tmpl[:cut]
            result.divergence = True
            diverging = instructions[divergence_pos]
            result.next_pc = diverging.target if diverging_predicted else diverging.fall_through
            result.raw_reason = FetchReason.PARTIAL_MATCH
            # The remainder of the line issues inactively, along the
            # segment's own (non-predicted) path.
            if self.inactive_issue and cut < len(instructions):
                result.inactive = instructions[cut:]
                result.inactive_dirs = dirs_tmpl[cut:]
                result.inactive_promoted = promoted_tmpl[cut:]
            return result
        result.active = instructions[:]
        result.active_dirs = dirs_tmpl[:]
        result.active_promoted = promoted_tmpl[:]
        result.raw_reason = _REASON_FROM_FINALIZE[segment.finalize_reason]
        if tail == 0:
            result.next_pc = segment.next_addr
        elif tail == 1:
            result.next_pc = ras.pop()
        elif tail == 2:
            result.next_pc = self.indirect.predict(instructions[-1].addr)
        else:
            result.next_pc = instructions[-1].fall_through
            result.ends_with_trap = True
        return result

    def _fetch_from_segment_slow(self, pc: int, segment: TraceSegment) -> FetchResult:
        """Per-slot segment walk, kept for fetches with a pending promoted
        fault override (which can cut the fetch at an arbitrary position)."""
        ghr = self.ghr
        ras = self.ras
        ghr_push = ghr.push
        ghr_at_entry = ghr.value
        prediction = None
        result = FetchResult(pc=pc, source="tc", segment=segment)
        active_append = result.active.append
        dirs_append = result.active_dirs.append
        promoted_append = result.active_promoted.append
        fault_overrides = self._fault_overrides
        slots = segment._fetch_slots
        if slots is None:
            slots = segment.fetch_slots()
        dyn_index = 0
        divergence_pos: Optional[int] = None
        diverging_predicted = False
        for pos, (inst, branch, call_ft) in enumerate(slots):
            direction: Optional[bool] = None
            promoted = False
            if branch is not None:
                # Snapshots are captured unconditionally on this walk: it
                # only runs for fetches carrying a pending fault override,
                # which can cut the line at an arbitrary slot — the one
                # shape the machine core's capture-off snapshot
                # reconstruction cannot model.  (With capture on this is
                # exactly the old behaviour, so reference runs are
                # unchanged.)
                result.control_snapshots[pos] = (ghr.value, ras.snapshot())
                promoted = branch.promoted
                override = None
                if promoted and fault_overrides:
                    override = fault_overrides.pop(inst.addr, None)
                if override is not None:
                    # One-shot recovery override after a promoted-branch
                    # fault: execute the branch in its known direction.
                    direction = override
                    ghr_push(direction)
                    if direction != branch.direction:
                        divergence_pos = pos
                        diverging_predicted = direction
                elif promoted:
                    direction = branch.direction
                    ghr_push(direction)
                else:
                    if prediction is None:
                        prediction = self.predictor.predict(pc, ghr_at_entry)
                    predicted = prediction.taken[dyn_index]
                    result.pred_records.append(
                        PredRecord(addr=inst.addr, position=dyn_index,
                                   token=prediction.indices[dyn_index], predicted=predicted)
                    )
                    dyn_index += 1
                    ghr_push(predicted)
                    direction = predicted
                    if predicted != branch.direction:
                        divergence_pos = pos
                        diverging_predicted = predicted
            elif call_ft is not None:
                ras.push(call_ft)
            active_append(inst)
            dirs_append(direction)
            promoted_append(promoted)
            if divergence_pos is not None:
                break
        result.predictions_used = dyn_index
        if divergence_pos is not None:
            result.divergence = True
            diverging = segment.instructions[divergence_pos]
            result.next_pc = diverging.target if diverging_predicted else diverging.fall_through
            result.raw_reason = FetchReason.PARTIAL_MATCH
            # The remainder of the line issues inactively, along the
            # segment's own (non-predicted) path.
            if self.inactive_issue:
                for pos in range(divergence_pos + 1, len(slots)):
                    inst, branch, _call_ft = slots[pos]
                    result.inactive.append(inst)
                    result.inactive_dirs.append(branch.direction if branch else None)
                    result.inactive_promoted.append(branch.promoted if branch else False)
        else:
            result.raw_reason = _REASON_FROM_FINALIZE[segment.finalize_reason]
            last = segment.instructions[-1]
            if last.op is Opcode.RET:
                result.next_pc = self.ras.pop()
            elif last.op is Opcode.JR:
                result.next_pc = self.indirect.predict(last.addr)
            elif last.op.opclass in (OpClass.TRAP, OpClass.HALT):
                result.next_pc = last.fall_through
                result.ends_with_trap = True
            else:
                result.next_pc = segment.next_addr
        return result

    def _fetch_from_icache(self, pc: int) -> FetchResult:
        block, stall, boundary_cut = self._fetch_icache_block(pc)
        result = FetchResult(pc=pc, source="icache", stall_cycles=stall)
        if not block:
            result.next_pc = pc  # off the code image (wrong path); retry
            result.raw_reason = FetchReason.ICACHE
            return result
        last = block[-1]
        predicted: Optional[bool] = None
        if last.op.is_cond_branch:
            if self.capture_snapshots:
                result.control_snapshots[len(block) - 1] = (self.ghr.value, self.ras.snapshot())
            prediction = self.predictor.predict(pc, self.ghr.value)
            predicted = prediction.taken[0]
            result.pred_records.append(
                PredRecord(addr=last.addr, position=0,
                           token=prediction.indices[0], predicted=predicted)
            )
            result.predictions_used = 1
            self.ghr.push(predicted)
        for inst in block:
            result.active.append(inst)
            result.active_dirs.append(predicted if inst is last and last.op.is_cond_branch else None)
            result.active_promoted.append(False)
        result.next_pc = self._control_next_pc(last, predicted) if last.op.ends_fetch_block else last.fall_through
        result.ends_with_trap = last.op.opclass is OpClass.TRAP
        if len(block) >= FETCH_WIDTH and not last.op.ends_fetch_block:
            result.raw_reason = FetchReason.MAX_SIZE
            result.next_pc = last.fall_through
        else:
            result.raw_reason = FetchReason.ICACHE
        return result

    def train_branch(self, record: PredRecord, taken: bool, path: Tuple[bool, ...]) -> None:
        self.predictor.update(record.token, record.position, path, taken)


class ICacheFetchEngine(_FrontEndBase):
    """The reference front end: one fetch block per cycle, hybrid predictor."""

    def __init__(
        self,
        program: Program,
        memory: MemoryHierarchy,
        predictor: Optional[HybridPredictor] = None,
        history_bits: int = 15,
    ):
        super().__init__(program, memory, ghr_bits=history_bits)
        self.predictor = predictor or HybridPredictor(history_bits=history_bits)

    def fetch(self, pc: int) -> FetchResult:
        block, stall, _boundary_cut = self._fetch_icache_block(pc)
        result = FetchResult(pc=pc, source="icache", stall_cycles=stall)
        if not block:
            result.next_pc = pc
            return result
        last = block[-1]
        predicted: Optional[bool] = None
        if last.op.is_cond_branch:
            if self.capture_snapshots:
                result.control_snapshots[len(block) - 1] = (self.ghr.value, self.ras.snapshot())
            prediction = self.predictor.predict(last.addr, self.ghr.value)
            predicted = prediction.taken
            result.pred_records.append(
                PredRecord(addr=last.addr, position=0, token=prediction, predicted=predicted)
            )
            result.predictions_used = 1
            self.ghr.push(predicted)
        for inst in block:
            result.active.append(inst)
            result.active_dirs.append(predicted if inst is last and last.op.is_cond_branch else None)
            result.active_promoted.append(False)
        result.next_pc = self._control_next_pc(last, predicted) if last.op.ends_fetch_block else last.fall_through
        result.ends_with_trap = last.op.opclass is OpClass.TRAP
        if len(block) >= FETCH_WIDTH and not last.op.ends_fetch_block:
            result.raw_reason = FetchReason.MAX_SIZE
            result.next_pc = last.fall_through
        else:
            result.raw_reason = FetchReason.ICACHE
        return result

    def train_branch(self, record: PredRecord, taken: bool, path: Tuple[bool, ...]) -> None:
        del path  # single-branch predictor
        self.predictor.update(record.addr, record.token, taken)
