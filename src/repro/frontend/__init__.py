"""The fetch engines and front-end simulation driver.

Two front ends, matching the paper's two machine families:

* :class:`TraceFetchEngine` — trace cache + supporting 4KB icache +
  multiple branch predictor, with partial matching and inactive issue
  always enabled (the paper's baseline), plus the fill unit feeding it;
* :class:`ICacheFetchEngine` — the reference front end: a large dual-ported
  instruction cache supplying one fetch block per cycle with a hybrid
  gshare/PAs predictor.

:class:`FrontEndSimulator` drives either engine against the oracle
(correct-path) instruction stream and produces every front-end metric the
paper reports: effective fetch rate, fetch-size histograms with
termination reasons, predictions-per-fetch, misprediction counts, and
cache-miss cycles.
"""

from repro.frontend.stats import (
    FetchReason,
    CycleCategory,
    FetchStats,
    FetchRecord,
)
from repro.frontend.fetch import FetchResult, PredRecord, TraceFetchEngine, ICacheFetchEngine
from repro.frontend.simulator import FrontEndSimulator, FrontEndResult

__all__ = [
    "FetchReason",
    "CycleCategory",
    "FetchStats",
    "FetchRecord",
    "FetchResult",
    "PredRecord",
    "TraceFetchEngine",
    "ICacheFetchEngine",
    "FrontEndSimulator",
    "FrontEndResult",
]
