"""Fetch termination taxonomy and front-end statistics.

The seven fetch-termination categories are the paper's Figure 4 legend;
the six cycle categories are its Figure 12 legend.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional


class FetchReason(enum.Enum):
    """Why a fetch delivered no more instructions than it did (Fig. 4)."""

    PARTIAL_MATCH = "PartialMatch"
    ATOMIC_BLOCKS = "AtomicBlocks"
    ICACHE = "Icache"
    MISPRED_BR = "MispredBR"
    MAX_SIZE = "MaxSize"
    RET_INDIR_TRAP = "Ret, Indir, Trap"
    MAXIMUM_BRS = "MaximumBRs"


class CycleCategory(enum.Enum):
    """Where each fetch cycle went (Fig. 12)."""

    USEFUL_FETCH = "Useful Fetch"
    BRANCH_MISSES = "Branch Misses"
    CACHE_MISSES = "Cache Misses"
    FULL_WINDOW = "Full Window"
    TRAPS = "Traps"
    MISFETCHES = "Misfetches"


@dataclass(frozen=True)
class FetchRecord:
    """Per-fetch outcome used to build histograms."""

    size: int            # correct-path instructions delivered
    reason: FetchReason
    predictions: int     # dynamic predictions this fetch consumed
    source: str          # "tc" or "icache"


@dataclass
class FetchStats:
    """Aggregated front-end statistics for one simulation run."""

    fetches: int = 0
    useful_instructions: int = 0
    size_reason_histogram: Counter = field(default_factory=Counter)  # (size, reason) -> n
    predictions_histogram: Counter = field(default_factory=Counter)  # n_predictions -> fetches
    cycle_accounting: Counter = field(default_factory=Counter)       # CycleCategory -> cycles
    tc_fetches: int = 0
    icache_fetches: int = 0

    # branch outcome accounting (correct-path branches only)
    cond_branches: int = 0
    cond_mispredicts: int = 0      # dynamic mispredictions on conditional branches
    promoted_branches: int = 0     # promoted conditional branch executions
    promoted_faults: int = 0       # promoted branches that went the other way
    indirect_jumps: int = 0
    indirect_mispredicts: int = 0

    cache_miss_cycles: int = 0     # fetch cycles lost to instruction-supply misses

    def record_fetch(self, record: FetchRecord) -> None:
        self.fetches += 1
        self.useful_instructions += record.size
        self.size_reason_histogram[(record.size, record.reason)] += 1
        self.predictions_histogram[record.predictions] += 1
        if record.source == "tc":
            self.tc_fetches += 1
        else:
            self.icache_fetches += 1

    # --- derived metrics ---------------------------------------------------

    @property
    def effective_fetch_rate(self) -> float:
        """Average correct-path instructions per fetch that delivered any."""
        if not self.fetches:
            return 0.0
        return self.useful_instructions / self.fetches

    @property
    def total_cond_mispredicts(self) -> int:
        """Conditional mispredictions including promoted-branch faults."""
        return self.cond_mispredicts + self.promoted_faults

    @property
    def cond_mispredict_rate(self) -> float:
        total = self.cond_branches + self.promoted_branches
        return self.total_cond_mispredicts / total if total else 0.0

    @property
    def total_mispredicted_branches(self) -> int:
        """Conditional + indirect mispredictions (the paper's Figure 14)."""
        return self.total_cond_mispredicts + self.indirect_mispredicts

    def size_histogram(self) -> Dict[int, int]:
        histogram: Dict[int, int] = {}
        for (size, _reason), count in self.size_reason_histogram.items():
            histogram[size] = histogram.get(size, 0) + count
        return histogram

    def reason_breakdown(self) -> Dict[FetchReason, int]:
        breakdown: Dict[FetchReason, int] = {}
        for (_size, reason), count in self.size_reason_histogram.items():
            breakdown[reason] = breakdown.get(reason, 0) + count
        return breakdown

    def predictions_buckets(self) -> Dict[str, float]:
        """Fractions of fetches needing 0-1 / 2 / 3 predictions (Table 3)."""
        if not self.fetches:
            return {"0 or 1": 0.0, "2": 0.0, "3": 0.0}
        zero_one = sum(c for n, c in self.predictions_histogram.items() if n <= 1)
        two = self.predictions_histogram.get(2, 0)
        three = sum(c for n, c in self.predictions_histogram.items() if n >= 3)
        return {
            "0 or 1": zero_one / self.fetches,
            "2": two / self.fetches,
            "3": three / self.fetches,
        }
