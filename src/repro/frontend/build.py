"""Factory: build a fetch engine (and its substrates) from a config."""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.branch.multiple import MultipleBranchPredictor, SplitMultiplePredictor
from repro.config import FrontEndConfig
from repro.isa.program import Program
from repro.mem.hierarchy import MemoryConfig, MemoryHierarchy
from repro.frontend.fetch import ICacheFetchEngine, TraceFetchEngine
from repro.trace.bias_table import BranchBiasTable
from repro.trace.fill_unit import FillUnit
from repro.trace.trace_cache import TraceCache


def build_memory(config: FrontEndConfig, memory_config: Optional[MemoryConfig] = None) -> MemoryHierarchy:
    """Memory hierarchy for this front end.

    The reference icache configuration replaces the 4KB supporting icache
    with the paper's large dual-ported 128KB instruction cache.
    """
    base = memory_config or MemoryConfig()
    if config.kind == "icache":
        base = replace(base, l1i_bytes=128 * 1024, l1i_assoc=4)
    return MemoryHierarchy(base)


def build_predictor(config: FrontEndConfig):
    """The multiple branch predictor organization the config names."""
    if config.predictor == "tree":
        return MultipleBranchPredictor(rows_bits=14)
    if config.predictor == "split":
        return SplitMultiplePredictor(table_bits=(16, 14, 13), history_bits=14)
    raise ValueError(f"unknown predictor kind {config.predictor!r}")


def build_engine(program: Program, config: FrontEndConfig,
                 memory_config: Optional[MemoryConfig] = None):
    """Construct the complete front end described by ``config``."""
    memory = build_memory(config, memory_config)
    if config.kind == "icache":
        return ICacheFetchEngine(program, memory)
    if config.kind != "tc":
        raise ValueError(f"unknown front end kind {config.kind!r}")
    trace_cache = TraceCache(n_lines=config.tc_lines, assoc=config.tc_assoc,
                             path_assoc=config.path_associativity)
    bias_table = (
        BranchBiasTable(entries=config.bias_entries, threshold=config.promote_threshold)
        if config.promote
        else None
    )
    static_promotions = None
    if config.promote_static:
        from repro.trace.static_promotion import profile_biased_branches
        static_promotions = profile_biased_branches(
            program,
            bias_threshold=config.static_bias_threshold,
            min_executions=config.static_min_executions,
        )
    fill_unit = FillUnit(
        trace_cache=trace_cache,
        bias_table=bias_table,
        policy=config.packing,
        promote=config.promote,
        static_promotions=static_promotions,
    )
    predictor = build_predictor(config)
    return TraceFetchEngine(
        program=program,
        memory=memory,
        trace_cache=trace_cache,
        fill_unit=fill_unit,
        predictor=predictor,
        inactive_issue=config.inactive_issue,
    )
