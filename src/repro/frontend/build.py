"""Factory: build a fetch engine (and its substrates) from a config.

Two complete front-end stacks can be wired:

* the **fast** stack (default) — the array-backed predictors and
  compiled-fetch-plan engines in :mod:`repro.branch` /
  :mod:`repro.frontend.fetch` / :mod:`repro.trace.fill_unit`;
* the **reference** stack (``REPRO_FAST_FRONTEND=0``) — the frozen seed
  copies in :mod:`repro.branch.reference`,
  :mod:`repro.frontend.fetch_reference` and
  :mod:`repro.trace.fill_unit_reference`.

Both produce byte-identical simulation results (pinned by
``tests/test_frontend_parity.py`` and ``benchmarks/bench_frontend_fetch``);
the reference stack exists as the known-good contract the fast one is
measured and verified against.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Optional

from repro.branch import reference as branch_reference
from repro.branch.multiple import MultipleBranchPredictor, SplitMultiplePredictor
from repro.config import FrontEndConfig
from repro.isa.program import Program
from repro.mem.hierarchy import MemoryConfig, MemoryHierarchy
from repro.frontend import fetch_reference
from repro.frontend.fetch import ICacheFetchEngine, TraceFetchEngine
from repro.trace import fill_unit_reference
from repro.trace.bias_table import BranchBiasTable
from repro.trace.fill_unit import FillUnit
from repro.trace.trace_cache import TraceCache


def fast_frontend_enabled() -> bool:
    """True unless ``REPRO_FAST_FRONTEND=0`` selects the frozen reference
    front end (engines, predictors, fill unit and bias table)."""
    return os.environ.get("REPRO_FAST_FRONTEND", "1") != "0"


def build_memory(config: FrontEndConfig, memory_config: Optional[MemoryConfig] = None) -> MemoryHierarchy:
    """Memory hierarchy for this front end.

    The reference icache configuration replaces the 4KB supporting icache
    with the paper's large dual-ported 128KB instruction cache.
    """
    base = memory_config or MemoryConfig()
    if config.kind == "icache":
        base = replace(base, l1i_bytes=128 * 1024, l1i_assoc=4)
    return MemoryHierarchy(base)


def build_predictor(config: FrontEndConfig, fast: Optional[bool] = None):
    """The multiple branch predictor organization the config names.

    ``fast=False`` builds it from the frozen reference stack.
    """
    if fast is None:
        fast = fast_frontend_enabled()
    if config.predictor == "tree":
        cls = MultipleBranchPredictor if fast else branch_reference.MultipleBranchPredictor
        return cls(rows_bits=14)
    if config.predictor == "split":
        cls = SplitMultiplePredictor if fast else branch_reference.SplitMultiplePredictor
        return cls(table_bits=(16, 14, 13), history_bits=14)
    raise ValueError(f"unknown predictor kind {config.predictor!r}")


def build_engine(program: Program, config: FrontEndConfig,
                 memory_config: Optional[MemoryConfig] = None,
                 fast: Optional[bool] = None):
    """Construct the complete front end described by ``config``.

    ``fast`` overrides the ``REPRO_FAST_FRONTEND`` selection: True builds
    the optimized stack, False the frozen reference stack, None (default)
    follows the environment.
    """
    if fast is None:
        fast = fast_frontend_enabled()
    memory = build_memory(config, memory_config)
    if config.kind == "icache":
        cls = ICacheFetchEngine if fast else fetch_reference.ICacheFetchEngine
        return cls(program, memory)
    if config.kind != "tc":
        raise ValueError(f"unknown front end kind {config.kind!r}")
    trace_cache = TraceCache(n_lines=config.tc_lines, assoc=config.tc_assoc,
                             path_assoc=config.path_associativity)
    bias_cls = BranchBiasTable if fast else fill_unit_reference.BranchBiasTable
    bias_table = (
        bias_cls(entries=config.bias_entries, threshold=config.promote_threshold)
        if config.promote
        else None
    )
    static_promotions = None
    if config.promote_static:
        from repro.trace.static_promotion import profile_biased_branches
        static_promotions = profile_biased_branches(
            program,
            bias_threshold=config.static_bias_threshold,
            min_executions=config.static_min_executions,
        )
    fill_cls = FillUnit if fast else fill_unit_reference.FillUnit
    fill_unit = fill_cls(
        trace_cache=trace_cache,
        bias_table=bias_table,
        policy=config.packing,
        promote=config.promote,
        static_promotions=static_promotions,
    )
    predictor = build_predictor(config, fast=fast)
    engine_cls = TraceFetchEngine if fast else fetch_reference.TraceFetchEngine
    return engine_cls(
        program=program,
        memory=memory,
        trace_cache=trace_cache,
        fill_unit=fill_unit,
        predictor=predictor,
        inactive_issue=config.inactive_issue,
    )
