"""Factory: build a fetch engine (and its substrates) from a config.

Two complete front-end stacks can be wired:

* the **fast** stack (default) — the array-backed predictors and
  compiled-fetch-plan engines in :mod:`repro.branch` /
  :mod:`repro.frontend.fetch` / :mod:`repro.trace.fill_unit`;
* the **reference** stack (``REPRO_FAST_FRONTEND=0``) — the frozen seed
  copies in :mod:`repro.branch.reference`,
  :mod:`repro.frontend.fetch_reference` and
  :mod:`repro.trace.fill_unit_reference`.

Both produce byte-identical simulation results (pinned by
``tests/test_frontend_parity.py`` and ``benchmarks/bench_frontend_fetch``);
the reference stack exists as the known-good contract the fast one is
measured and verified against.
"""

from __future__ import annotations

import weakref
from dataclasses import replace
from typing import Optional

from repro.branch import reference as branch_reference
from repro.branch.multiple import MultipleBranchPredictor, SplitMultiplePredictor
from repro.config import FrontEndConfig
from repro.isa.program import Program
from repro.mem.hierarchy import MemoryConfig, MemoryHierarchy
from repro.frontend import fetch_reference
from repro.frontend.fetch import ICacheFetchEngine, TraceFetchEngine
from repro.trace import fill_unit_reference
from repro.trace.bias_table import BranchBiasTable
from repro.trace.fill_unit import FillUnit
from repro.trace.trace_cache import TraceCache


#: Every engine this factory built and that is still alive.  Weak so the
#: registry never extends engine lifetime; used by
#: :func:`reset_compiled_state` to drop compiled caches in place.
_live_engines: "weakref.WeakSet" = weakref.WeakSet()


def fast_frontend_enabled() -> bool:
    """True unless ``REPRO_FAST_FRONTEND=0`` selects the frozen reference
    front end (engines, predictors, fill unit and bias table)."""
    from repro.experiments import env
    return env.get_str("REPRO_FAST_FRONTEND", "1") != "0"


def reset_compiled_state() -> None:
    """Drop derived/compiled caches inside every live engine.

    The fast stack memoizes aggressively: per-engine block and candidate
    caches keyed by pc, the fill unit's segment memo and interned state
    machine, and per-segment lazy artifacts (fetch slots, compiled fetch
    plans, pattern-specialized variants).  All of these are keyed by
    object identity or pc against the program the engine was built for —
    a long-lived process that regenerates programs (the differential
    fuzzer, notebook sessions) must be able to invalidate them without
    rebuilding every engine.  Architectural state (predictor counters,
    trace-cache contents, bias table) is deliberately untouched.
    """
    for engine in list(_live_engines):
        for attr in ("_block_cache", "_cand_cache"):
            cache = getattr(engine, attr, None)
            if cache is not None:
                cache.clear()
        fill_unit = getattr(engine, "fill_unit", None)
        if fill_unit is not None and hasattr(fill_unit, "_segment_memo"):
            fill_unit._segment_memo.clear()
            if hasattr(fill_unit, "_materialize"):
                # Fast fill unit only: flush edge-hit state into the live
                # lists first so dropping the interned node graph cannot
                # lose pending slots (the reference copy keeps no state
                # machine, its memo is the only derived cache).
                fill_unit._materialize()
                fill_unit._empty_node = [{}, (), (), 0, None]
                fill_unit._state_nodes = {((), ()): fill_unit._empty_node}
                fill_unit._cur_node = None
                fill_unit._state_stale = False
        trace_cache = getattr(engine, "trace_cache", None)
        if trace_cache is not None:
            for line_set in trace_cache._sets:
                for segment in line_set:
                    segment._fetch_slots = None
                    segment._fetch_plan = None
                    segment._variants = None
                    segment._pattern_mask = -1
                    segment._trace_key = 0


def build_memory(config: FrontEndConfig, memory_config: Optional[MemoryConfig] = None) -> MemoryHierarchy:
    """Memory hierarchy for this front end.

    The reference icache configuration replaces the 4KB supporting icache
    with the paper's large dual-ported 128KB instruction cache.
    """
    base = memory_config or MemoryConfig()
    if config.kind == "icache":
        base = replace(base, l1i_bytes=128 * 1024, l1i_assoc=4)
    return MemoryHierarchy(base)


def build_predictor(config: FrontEndConfig, fast: Optional[bool] = None):
    """The multiple branch predictor organization the config names.

    ``fast=False`` builds it from the frozen reference stack.
    """
    if fast is None:
        fast = fast_frontend_enabled()
    if config.predictor == "tree":
        cls = MultipleBranchPredictor if fast else branch_reference.MultipleBranchPredictor
        return cls(rows_bits=14)
    if config.predictor == "split":
        cls = SplitMultiplePredictor if fast else branch_reference.SplitMultiplePredictor
        return cls(table_bits=(16, 14, 13), history_bits=14)
    raise ValueError(f"unknown predictor kind {config.predictor!r}")


def build_engine(program: Program, config: FrontEndConfig,
                 memory_config: Optional[MemoryConfig] = None,
                 fast: Optional[bool] = None):
    """Construct the complete front end described by ``config``.

    ``fast`` overrides the ``REPRO_FAST_FRONTEND`` selection: True builds
    the optimized stack, False the frozen reference stack, None (default)
    follows the environment.
    """
    if fast is None:
        fast = fast_frontend_enabled()
    memory = build_memory(config, memory_config)
    if config.kind == "icache":
        cls = ICacheFetchEngine if fast else fetch_reference.ICacheFetchEngine
        engine = cls(program, memory)
        _live_engines.add(engine)
        return engine
    if config.kind != "tc":
        raise ValueError(f"unknown front end kind {config.kind!r}")
    trace_cache = TraceCache(n_lines=config.tc_lines, assoc=config.tc_assoc,
                             path_assoc=config.path_associativity)
    bias_cls = BranchBiasTable if fast else fill_unit_reference.BranchBiasTable
    bias_table = (
        bias_cls(entries=config.bias_entries, threshold=config.promote_threshold)
        if config.promote
        else None
    )
    static_promotions = None
    if config.promote_static:
        from repro.trace.static_promotion import profile_biased_branches
        static_promotions = profile_biased_branches(
            program,
            bias_threshold=config.static_bias_threshold,
            min_executions=config.static_min_executions,
        )
    fill_cls = FillUnit if fast else fill_unit_reference.FillUnit
    fill_unit = fill_cls(
        trace_cache=trace_cache,
        bias_table=bias_table,
        policy=config.packing,
        promote=config.promote,
        static_promotions=static_promotions,
    )
    predictor = build_predictor(config, fast=fast)
    engine_cls = TraceFetchEngine if fast else fetch_reference.TraceFetchEngine
    engine = engine_cls(
        program=program,
        memory=memory,
        trace_cache=trace_cache,
        fill_unit=fill_unit,
        predictor=predictor,
        inactive_issue=config.inactive_issue,
    )
    _live_engines.add(engine)
    return engine
