"""Oracle-driven front-end simulation.

This driver replays the correct-path (oracle) instruction stream against a
fetch engine, cycle by cycle, with fixed recovery penalties standing in for
the back end.  It produces every *front-end* metric in the paper: effective
fetch rate, the fetch-size/termination histograms (Figs. 4 and 6),
predictions per fetch (Table 3), misprediction counts (Fig. 7), and cache
miss cycles (Table 4).  End-to-end IPC and resolution-time results come
from the full out-of-order machine in :mod:`repro.core`.

Because the oracle stream is independent of front-end configuration it is
computed once per benchmark and shared across every configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.config import FrontEndConfig
from repro.frontend.build import build_engine
from repro.frontend.fetch import FetchResult, TraceFetchEngine
from repro.frontend.stats import CycleCategory, FetchReason, FetchRecord, FetchStats
from repro.isa.executor import FunctionalExecutor
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.program import Program

#: One oracle element: (instruction, taken-or-None, next correct-path pc).
OracleEntry = Tuple[Instruction, Optional[bool], int]


def compute_oracle(program: Program, max_instructions: Optional[int]) -> List[OracleEntry]:
    """Execute functionally and return the correct-path stream."""
    executor = FunctionalExecutor(program, max_instructions=max_instructions)
    return [(dyn.inst, dyn.result.taken, dyn.result.next_pc) for dyn in executor.run()]


@dataclass
class FrontEndResult:
    """Everything one front-end run produced."""

    benchmark: str
    config: FrontEndConfig
    stats: FetchStats
    cycles: int
    instructions_retired: int
    recoveries: int
    tc_hits: int = 0
    tc_misses: int = 0
    tc_writes: int = 0
    fill_reasons: dict = field(default_factory=dict)
    l1i_misses: int = 0
    promotions: int = 0
    demotions: int = 0

    @property
    def effective_fetch_rate(self) -> float:
        return self.stats.effective_fetch_rate

    @property
    def fetch_ipc(self) -> float:
        """Correct-path instructions per *cycle* (includes penalty cycles)."""
        return self.instructions_retired / self.cycles if self.cycles else 0.0


@dataclass
class _UsefulInst:
    inst: Instruction
    taken: Optional[bool]
    promoted: bool
    record: Optional[object]  # PredRecord for dynamically predicted branches


class FrontEndSimulator:
    """Drive one fetch engine over one benchmark's oracle stream."""

    def __init__(
        self,
        program: Program,
        config: FrontEndConfig,
        oracle: Optional[List[OracleEntry]] = None,
        max_instructions: Optional[int] = 100_000,
        engine=None,
    ):
        self.program = program
        self.config = config
        self.oracle = oracle if oracle is not None else compute_oracle(program, max_instructions)
        self.engine = engine if engine is not None else build_engine(program, config)
        self.fill_unit = getattr(self.engine, "fill_unit", None)
        self.stats = FetchStats()
        self._arch_ghr = 0
        self._arch_ras: List[int] = []
        self.cycles = 0
        self.recoveries = 0

    # ----------------------------------------------------------------- run

    def run(self) -> FrontEndResult:
        oracle = self.oracle
        n = len(oracle)
        i = 0
        pc = self.program.entry
        while i < n:
            result = self.engine.fetch(pc)
            self.cycles += 1
            if result.stall_cycles:
                self.cycles += result.stall_cycles
                self.stats.cycle_accounting[CycleCategory.CACHE_MISSES] += result.stall_cycles
                self.stats.cache_miss_cycles += result.stall_cycles
            if not result.active:
                # Off-image fetch cannot happen on the correct path.
                raise RuntimeError(f"empty fetch at pc={pc}")

            useful, i, event = self._match(result, oracle, i, n)
            self.stats.cycle_accounting[CycleCategory.USEFUL_FETCH] += 1
            self._retire(useful, oracle, i)
            self._record_fetch(result, useful, event)

            if i >= n:
                break
            next_oracle_pc = oracle[i][0].addr
            pc = self._advance(result, event, next_oracle_pc, useful)
        return self._build_result()

    # --------------------------------------------------------------- match

    def _match(self, result: FetchResult, oracle, i: int, n: int):
        """Walk the fetched instructions against the oracle stream.

        Returns (useful instructions, new oracle index, event) where event
        is one of None, "mispredict", "fault", "indirect", "misfetch".
        """
        useful: List[_UsefulInst] = []
        event: Optional[str] = None
        rec_ptr = 0
        for idx, inst in enumerate(result.active):
            if i >= n:
                return useful, i, event
            o_inst, o_taken, _o_next = oracle[i]
            if o_inst.addr != inst.addr:  # pragma: no cover - defensive
                raise RuntimeError(
                    f"fetch desync at {inst.addr} vs oracle {o_inst.addr}"
                )
            record = None
            promoted = result.active_promoted[idx]
            if inst.op.is_cond_branch and not promoted:
                record = result.pred_records[rec_ptr]
                rec_ptr += 1
            useful.append(_UsefulInst(inst=inst, taken=o_taken, promoted=promoted, record=record))
            i += 1
            if inst.op.is_cond_branch:
                fetch_dir = result.active_dirs[idx]
                if fetch_dir != o_taken:
                    event = "fault" if promoted else "mispredict"
                    if promoted:
                        self.stats.promoted_faults += 1
                    else:
                        self.stats.cond_mispredicts += 1
                    if result.divergence and idx == len(result.active) - 1:
                        # The trace disagreed with the (wrong) prediction, so
                        # the inactively issued remainder is on the correct
                        # path: it retires from this same fetch.
                        i = self._consume_inactive(result, oracle, i, n, useful)
                    return useful, i, event
        # Every supplied direction matched; check the fetch's successor.
        if i < n:
            expected = oracle[i][0].addr
            if result.next_pc is None:
                event = "misfetch"
            elif result.next_pc != expected:
                # Only an indirect jump / return target can be wrong here.
                event = "indirect"
                self.stats.indirect_mispredicts += 1
        return useful, i, event

    def _consume_inactive(self, result: FetchResult, oracle, i: int, n: int,
                          useful: List[_UsefulInst]) -> int:
        for idx, inst in enumerate(result.inactive):
            if i >= n:
                return i
            o_inst, o_taken, _o_next = oracle[i]
            if o_inst.addr != inst.addr:
                return i
            promoted = result.inactive_promoted[idx]
            useful.append(_UsefulInst(inst=inst, taken=o_taken, promoted=promoted, record=None))
            i += 1
            if inst.op.is_cond_branch and result.inactive_dirs[idx] != o_taken:
                # The trace path itself leaves the correct path here; a
                # second recovery folds into this one in the simple model.
                if promoted:
                    self.stats.promoted_faults += 1
                else:
                    self.stats.cond_mispredicts += 1
                return i
        return i

    # -------------------------------------------------------------- retire

    def _retire(self, useful: List[_UsefulInst], oracle, i_after: int) -> None:
        path: List[bool] = []
        oracle_index = i_after - len(useful)
        for offset, entry in enumerate(useful):
            inst = entry.inst
            if self.fill_unit is not None:
                self.fill_unit.retire(inst, entry.taken)
            opclass = inst.op.opclass
            if opclass is OpClass.COND_BRANCH:
                self._arch_ghr = ((self._arch_ghr << 1) | int(entry.taken)) & self.engine.ghr.mask
                if entry.promoted:
                    self.stats.promoted_branches += 1
                else:
                    self.stats.cond_branches += 1
                    if entry.record is not None:
                        self.engine.train_branch(entry.record, entry.taken, tuple(path))
                        path.append(entry.taken)
            elif opclass is OpClass.CALL:
                self._arch_ras.append(inst.fall_through)
            elif opclass is OpClass.RETURN:
                if self._arch_ras:
                    self._arch_ras.pop()
            elif opclass is OpClass.INDIRECT:
                self.stats.indirect_jumps += 1
                actual_target = oracle[oracle_index + offset][2]
                self.engine.indirect.update(inst.addr, actual_target)

    # ------------------------------------------------------------- account

    def _record_fetch(self, result: FetchResult, useful: List[_UsefulInst],
                      event: Optional[str]) -> None:
        if event in ("mispredict", "fault"):
            reason = FetchReason.MISPRED_BR
        else:
            reason = result.raw_reason
        self.stats.record_fetch(
            FetchRecord(
                size=len(useful),
                reason=reason,
                predictions=result.predictions_used,
                source=result.source,
            )
        )

    def _advance(self, result: FetchResult, event: Optional[str],
                 next_oracle_pc: int, useful: List[_UsefulInst]) -> int:
        """Charge penalties, repair speculative state, pick the next pc."""
        config = self.config
        if event in ("mispredict", "fault", "indirect"):
            self.cycles += config.mispredict_penalty
            self.stats.cycle_accounting[CycleCategory.BRANCH_MISSES] += config.mispredict_penalty
            self._repair()
            self.recoveries += 1
            pc = next_oracle_pc
        elif event == "misfetch":
            self.cycles += config.misfetch_penalty
            self.stats.cycle_accounting[CycleCategory.MISFETCHES] += config.misfetch_penalty
            self._repair()
            pc = next_oracle_pc
        else:
            pc = result.next_pc
            if pc != next_oracle_pc:  # pragma: no cover - defensive
                raise RuntimeError(
                    f"predicted next pc {pc} != oracle {next_oracle_pc} without event"
                )
        if useful and useful[-1].inst.op.opclass is OpClass.TRAP:
            self.cycles += config.trap_penalty
            self.stats.cycle_accounting[CycleCategory.TRAPS] += config.trap_penalty
        return pc

    def _repair(self) -> None:
        self.engine.restore((self._arch_ghr, tuple(self._arch_ras)))
        if self.fill_unit is not None:
            self.fill_unit.note_recovery()

    # --------------------------------------------------------------- result

    def _build_result(self) -> FrontEndResult:
        if self.fill_unit is not None:
            self.fill_unit.flush()
        engine = self.engine
        result = FrontEndResult(
            benchmark=self.program.name,
            config=self.config,
            stats=self.stats,
            cycles=self.cycles,
            instructions_retired=self.stats.useful_instructions,
            recoveries=self.recoveries,
            l1i_misses=engine.memory.l1i.stats.misses,
        )
        if isinstance(engine, TraceFetchEngine):
            result.tc_hits = engine.trace_cache.stats.hits
            result.tc_misses = engine.trace_cache.stats.misses
            result.tc_writes = engine.trace_cache.stats.writes
            result.fill_reasons = dict(engine.fill_unit.finalize_reasons)
            if engine.fill_unit.bias_table is not None:
                result.promotions = engine.fill_unit.bias_table.promotions
                result.demotions = engine.fill_unit.bias_table.demotions
        return result
