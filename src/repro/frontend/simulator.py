"""Oracle-driven front-end simulation.

This driver replays the correct-path (oracle) instruction stream against a
fetch engine, cycle by cycle, with fixed recovery penalties standing in for
the back end.  It produces every *front-end* metric in the paper: effective
fetch rate, the fetch-size/termination histograms (Figs. 4 and 6),
predictions per fetch (Table 3), misprediction counts (Fig. 7), and cache
miss cycles (Table 4).  End-to-end IPC and resolution-time results come
from the full out-of-order machine in :mod:`repro.core`.

Because the oracle stream is independent of front-end configuration it is
computed once per benchmark and shared across every configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.config import FrontEndConfig
from repro.frontend.build import build_engine
from repro.frontend.fetch import (
    FetchResult,
    PredRecord,
    TraceFetchEngine,
    compile_variant,
)
from repro.frontend.stats import CycleCategory, FetchReason, FetchRecord, FetchStats
from repro.isa.executor import run_oracle
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.program import Program

#: One oracle element: (instruction, taken-or-None, next correct-path pc).
OracleEntry = Tuple[Instruction, Optional[bool], int]


def compute_oracle(program: Program, max_instructions: Optional[int]) -> List[OracleEntry]:
    """Execute functionally and return the correct-path stream."""
    return run_oracle(program, max_instructions)


@dataclass
class FrontEndResult:
    """Everything one front-end run produced."""

    benchmark: str
    config: FrontEndConfig
    stats: FetchStats
    cycles: int
    instructions_retired: int
    recoveries: int
    tc_hits: int = 0
    tc_misses: int = 0
    tc_writes: int = 0
    fill_reasons: dict = field(default_factory=dict)
    l1i_misses: int = 0
    promotions: int = 0
    demotions: int = 0

    @property
    def effective_fetch_rate(self) -> float:
        return self.stats.effective_fetch_rate

    @property
    def fetch_ipc(self) -> float:
        """Correct-path instructions per *cycle* (includes penalty cycles)."""
        return self.instructions_retired / self.cycles if self.cycles else 0.0


#: One correct-path instruction consumed from a fetch:
#: ``(inst, taken, promoted, record)`` where ``record`` is the PredRecord
#: for dynamically predicted branches.  A plain tuple — one is built per
#: retired instruction, so dataclass construction cost dominated the
#: simulator's profile.
_UsefulInst = Tuple[Instruction, Optional[bool], bool, Optional[object]]


class FrontEndSimulator:
    """Drive one fetch engine over one benchmark's oracle stream."""

    def __init__(
        self,
        program: Program,
        config: FrontEndConfig,
        oracle: Optional[List[OracleEntry]] = None,
        max_instructions: Optional[int] = 100_000,
        engine=None,
        observer=None,
    ):
        self.program = program
        self.config = config
        self.oracle = oracle if oracle is not None else compute_oracle(program, max_instructions)
        self.engine = engine if engine is not None else build_engine(program, config)
        #: Optional validation observer (repro.validate.observer): its
        #: ``wrap(fetch)`` intercepts every fetch — generic and compiled-
        #: variant alike pass through the one ``fetch`` callable.  None
        #: (the default) leaves the hot loop untouched.
        self.observer = observer
        # This driver repairs from its own architectural GHR/RAS copies and
        # never reads FetchResult.control_snapshots; skip capturing them
        # (one RAS copy per fetched branch — only the core needs it).
        self.engine.capture_snapshots = False
        self.fill_unit = getattr(self.engine, "fill_unit", None)
        self.stats = FetchStats()
        self._arch_ghr = 0
        self._arch_ras: List[int] = []
        self.cycles = 0
        self.recoveries = 0

    # ----------------------------------------------------------------- run

    def run(self) -> FrontEndResult:
        oracle = self.oracle
        n = len(oracle)
        i = 0
        pc = self.program.entry
        engine = self.engine
        fetch = engine.fetch
        if self.observer is not None:
            fetch = self.observer.wrap(fetch)
        stats = self.stats
        cycle_accounting = stats.cycle_accounting
        match = self._match
        retire = self._retire
        record_fetch = self._record_fetch
        advance = self._advance
        # Fast-retire locals for fetches served from a compiled variant:
        # the variant precomputes the whole fetch outcome, so matching it
        # against the oracle reduces to comparing its branch directions
        # and its successor, and retiring it reduces to the fill unit's
        # compiled event feed plus batched architectural-state updates.
        fill_unit = self.fill_unit
        # getattr: the frozen reference fill unit has no compiled feed, but
        # reference engines never emit variant results either.
        retire_compiled = getattr(fill_unit, "retire_compiled", None)
        note_recovery = getattr(fill_unit, "note_recovery", None)
        engine_restore = engine.restore
        inactive_issue = getattr(engine, "inactive_issue", False)
        # The fast paths bypass PredRecord and feed the predictor the raw
        # (token, position) pair train_branch would have unpacked.
        predictor = getattr(engine, "predictor", None)
        predictor_update = predictor.update if predictor is not None else None
        # Batched per-fetch training (REPRO_VECTOR): one update_batch call
        # flushes a compiled plan's whole training record instead of one
        # Python call per branch.  Counter movements are identical, so
        # REPRO_VECTOR=0 (which keeps the per-branch loop) is a pure
        # parity surface for the differential fuzzer.  Local import: the
        # experiments package initializes through this module.
        from repro.experiments import columns
        predictor_train = None
        if predictor is not None and columns.enabled():
            predictor_train = getattr(predictor, "update_batch", None)
        indirect_update = engine.indirect.update
        ghr_mask = engine.ghr.mask
        arch_ras = self._arch_ras
        arch_ghr = self._arch_ghr
        trap_penalty = self.config.trap_penalty
        mispredict_penalty = self.config.mispredict_penalty
        misfetch_penalty = self.config.misfetch_penalty
        #: variant -> fetch count; histogram/attribute accounting for fast
        #: fetches is deferred and folded into stats once after the loop.
        var_counts: dict = {}
        #: (variant, fetch-time predictions_used) -> count for fetches that
        #: retired a compiled *mispredicted prefix* (recorded under
        #: MISPRED_BR with the original fetch's prediction count, exactly
        #: like the generic path).
        mis_counts: dict = {}
        trap_cycles = 0
        branch_miss_cycles = 0
        misfetch_cycles = 0
        # Accumulate per-fetch bookkeeping in locals and fold it into the
        # stats Counters once after the loop: Counter.__getitem__ hashes an
        # enum member per access, which showed up in the hot-loop profile.
        cycles = self.cycles
        useful_fetches = 0
        miss_cycles = 0
        while i < n:
            result = fetch(pc)
            cycles += 1
            variant = getattr(result, "variant", None)
            if variant is not None:
                i_end = i + variant.n_active
                if i_end <= n:
                    fail_pos = -1
                    for pos, direction in variant.branch_checks:
                        if oracle[i + pos][1] != direction:
                            fail_pos = pos
                            break
                    if fail_pos < 0:
                        next_pc = result.next_pc
                        if i_end < n and (next_pc is None
                                          or next_pc != oracle[i_end][0].addr):
                            # Every supplied direction matched but the
                            # successor is wrong (stale indirect/return
                            # target) or unknown (misfetch): the whole
                            # fetch still retires, then the front end
                            # repairs and refetches from the oracle pc.
                            retire_compiled(variant)
                            if variant.ghr_count:
                                arch_ghr = ((arch_ghr << variant.ghr_count)
                                            | variant.ghr_bits) & ghr_mask
                            if variant.ras_pushes:
                                arch_ras.extend(variant.ras_pushes)
                            if variant.ret_pop and arch_ras:
                                arch_ras.pop()
                            if variant.n_indirect:
                                indirect_update(variant.last_addr,
                                                oracle[i_end - 1][2])
                            train_meta = variant.train_meta
                            if train_meta:
                                tokens = result.pred_tokens
                                if predictor_train is not None:
                                    predictor_train(tokens, train_meta)
                                else:
                                    for k, (path, taken) in enumerate(train_meta):
                                        predictor_update(tokens[k], k, path, taken)
                            var_counts[variant] = var_counts.get(variant, 0) + 1
                            useful_fetches += 1
                            i = i_end
                            if next_pc is None:
                                cycles += misfetch_penalty
                                misfetch_cycles += misfetch_penalty
                            else:
                                stats.indirect_mispredicts += 1
                                self.recoveries += 1
                                cycles += mispredict_penalty
                                branch_miss_cycles += mispredict_penalty
                            engine_restore((arch_ghr, tuple(arch_ras)))
                            note_recovery()
                            if variant.trap_last:
                                cycles += trap_penalty
                                trap_cycles += trap_penalty
                            pc = oracle[i][0].addr
                            continue
                        # The whole fetch is on the correct path and its
                        # successor prediction holds: retire it wholesale.
                        retire_compiled(variant)
                        if variant.ghr_count:
                            arch_ghr = ((arch_ghr << variant.ghr_count)
                                        | variant.ghr_bits) & ghr_mask
                        if variant.ras_pushes:
                            arch_ras.extend(variant.ras_pushes)
                        if variant.ret_pop and arch_ras:
                            arch_ras.pop()
                        if variant.n_indirect:
                            indirect_update(variant.last_addr, oracle[i_end - 1][2])
                        train_meta = variant.train_meta
                        if train_meta:
                            tokens = result.pred_tokens
                            if predictor_train is not None:
                                predictor_train(tokens, train_meta)
                            else:
                                for k, (path, taken) in enumerate(train_meta):
                                    predictor_update(tokens[k], k, path, taken)
                        var_counts[variant] = var_counts.get(variant, 0) + 1
                        useful_fetches += 1
                        i = i_end
                        if i >= n:
                            break
                        if variant.trap_last:
                            cycles += trap_penalty
                            trap_cycles += trap_penalty
                        pc = result.next_pc
                        continue
                    else:
                        dyn_k = variant.dyn_pos.get(fail_pos)
                        if dyn_k is not None:
                            # A dynamic branch was mispredicted at a
                            # non-diverging slot: the correct-path prefix of
                            # this fetch is exactly the compiled variant
                            # with that prediction bit flipped (it diverges
                            # there), so the prefix retires compiled too.
                            segment = result.segment
                            variants = segment._variants
                            key2 = variant.key ^ (1 << dyn_k)
                            prefix = variants.get(key2)
                            if prefix is None:
                                prefix = compile_variant(segment, key2,
                                                         inactive_issue)
                                variants[key2] = prefix
                            stats.cond_mispredicts += 1
                            retire_compiled(prefix)
                            if prefix.ghr_count:
                                arch_ghr = ((arch_ghr << prefix.ghr_count)
                                            | prefix.ghr_bits) & ghr_mask
                            if prefix.ras_pushes:
                                arch_ras.extend(prefix.ras_pushes)
                            tokens = result.pred_tokens
                            if predictor_train is not None:
                                predictor_train(tokens, prefix.train_meta)
                            else:
                                for k, (path, taken) in enumerate(
                                        prefix.train_meta):
                                    predictor_update(tokens[k], k, path, taken)
                            mis_key = (prefix, result.predictions_used)
                            mis_counts[mis_key] = mis_counts.get(mis_key, 0) + 1
                            useful_fetches += 1
                            i += prefix.n_active
                            if i >= n:
                                break
                            self.recoveries += 1
                            cycles += mispredict_penalty
                            branch_miss_cycles += mispredict_penalty
                            engine_restore((arch_ghr, tuple(arch_ras)))
                            note_recovery()
                            pc = oracle[i][0].addr
                            continue
                        elif (inactive_issue and variant.divergence
                              and fail_pos == variant.n_active - 1):
                            # The trace disagreed with a (wrong) prediction
                            # at the diverging branch, so the inactively
                            # issued remainder is on the correct path: when
                            # the oracle follows the embedded path to the
                            # segment's end, the consumed instructions are
                            # exactly the full-trace variant (the one whose
                            # key matches every embedded direction), and it
                            # retires compiled.
                            segment = result.segment
                            variants = segment._variants
                            key2 = segment._trace_key
                            vstar = variants.get(key2)
                            if vstar is None:
                                vstar = compile_variant(segment, key2,
                                                        inactive_issue)
                                variants[key2] = vstar
                            i_star = i + vstar.n_active
                            ok2 = i_star <= n
                            if ok2:
                                for pos2, d2 in vstar.branch_checks:
                                    if oracle[i + pos2][1] != d2:
                                        ok2 = False
                                        break
                            if ok2:
                                stats.cond_mispredicts += 1
                                retire_compiled(vstar)
                                if vstar.ghr_count:
                                    arch_ghr = ((arch_ghr << vstar.ghr_count)
                                                | vstar.ghr_bits) & ghr_mask
                                if vstar.ras_pushes:
                                    arch_ras.extend(vstar.ras_pushes)
                                if vstar.ret_pop and arch_ras:
                                    arch_ras.pop()
                                if vstar.n_indirect:
                                    indirect_update(vstar.last_addr,
                                                    oracle[i_star - 1][2])
                                # Only the branches the fetch actually
                                # predicted train (the inactive remainder
                                # carries no prediction records).
                                tokens = result.pred_tokens
                                train_meta = vstar.train_meta
                                if predictor_train is not None:
                                    predictor_train(
                                        tokens, train_meta[:variant.n_dyn])
                                else:
                                    for k in range(variant.n_dyn):
                                        path, taken = train_meta[k]
                                        predictor_update(
                                            tokens[k], k, path, taken)
                                mis_key = (vstar, result.predictions_used)
                                mis_counts[mis_key] = (
                                    mis_counts.get(mis_key, 0) + 1)
                                useful_fetches += 1
                                i = i_star
                                if i >= n:
                                    break
                                self.recoveries += 1
                                cycles += mispredict_penalty
                                branch_miss_cycles += mispredict_penalty
                                engine_restore((arch_ghr, tuple(arch_ras)))
                                note_recovery()
                                if vstar.trap_last:
                                    cycles += trap_penalty
                                    trap_cycles += trap_penalty
                                pc = oracle[i][0].addr
                                continue
            stall = result.stall_cycles
            if stall:
                cycles += stall
                miss_cycles += stall
            if not result.active:
                # Off-image fetch cannot happen on the correct path.
                raise RuntimeError(f"empty fetch at pc={pc}")
            if variant is not None and result.pred_records is None:
                # This variant fetch falls back to the generic walk: build
                # the PredRecords the fetch deferred.
                tokens = result.pred_tokens
                result.pred_records = [
                    PredRecord(addr=addr, position=k, token=tokens[k],
                               predicted=p)
                    for addr, k, p in variant.pred_meta
                ]

            self._arch_ghr = arch_ghr
            useful, i, event = match(result, oracle, i, n)
            useful_fetches += 1
            retire(useful, oracle, i)
            arch_ghr = self._arch_ghr
            record_fetch(result, useful, event)

            if i >= n:
                break
            next_oracle_pc = oracle[i][0].addr
            self.cycles = cycles  # _advance charges penalties to self.cycles
            pc = advance(result, event, next_oracle_pc, useful)
            cycles = self.cycles
        self.cycles = cycles
        self._arch_ghr = arch_ghr
        cycle_accounting[CycleCategory.USEFUL_FETCH] += useful_fetches
        if miss_cycles:
            cycle_accounting[CycleCategory.CACHE_MISSES] += miss_cycles
            stats.cache_miss_cycles += miss_cycles
        if trap_cycles:
            cycle_accounting[CycleCategory.TRAPS] += trap_cycles
        if branch_miss_cycles:
            cycle_accounting[CycleCategory.BRANCH_MISSES] += branch_miss_cycles
        if misfetch_cycles:
            cycle_accounting[CycleCategory.MISFETCHES] += misfetch_cycles
        if mis_counts:
            size_reason = stats.size_reason_histogram
            predictions = stats.predictions_histogram
            for (prefix, preds), count in mis_counts.items():
                stats.fetches += count
                stats.tc_fetches += count
                stats.useful_instructions += prefix.n_active * count
                size_reason[(prefix.n_active, FetchReason.MISPRED_BR)] += count
                predictions[preds] += count
                stats.cond_branches += prefix.n_dyn * count
                stats.promoted_branches += prefix.n_promoted * count
                stats.indirect_jumps += prefix.n_indirect * count
        if var_counts:
            size_reason = stats.size_reason_histogram
            predictions = stats.predictions_histogram
            for variant, count in var_counts.items():
                stats.fetches += count
                stats.tc_fetches += count
                stats.useful_instructions += variant.n_active * count
                size_reason[(variant.n_active, variant.raw_reason)] += count
                predictions[variant.predictions_used] += count
                stats.cond_branches += variant.n_dyn * count
                stats.promoted_branches += variant.n_promoted * count
                stats.indirect_jumps += variant.n_indirect * count
        return self._build_result()

    # --------------------------------------------------------------- match

    def _match(self, result: FetchResult, oracle, i: int, n: int):
        """Walk the fetched instructions against the oracle stream.

        Returns (useful instructions, new oracle index, event) where event
        is one of None, "mispredict", "fault", "indirect", "misfetch".
        """
        useful: List[_UsefulInst] = []
        useful_append = useful.append
        event: Optional[str] = None
        rec_ptr = 0
        active = result.active
        active_dirs = result.active_dirs
        active_promoted = result.active_promoted
        pred_records = result.pred_records
        for idx, inst in enumerate(active):
            if i >= n:
                return useful, i, event
            o_inst, o_taken, _o_next = oracle[i]
            if o_inst.addr != inst.addr:  # pragma: no cover - defensive
                raise RuntimeError(
                    f"fetch desync at {inst.addr} vs oracle {o_inst.addr}"
                )
            # A non-None fetch direction marks exactly the conditional
            # branches (every engine fills active_dirs that way).
            if active_dirs[idx] is not None:
                promoted = active_promoted[idx]
                record = None
                if not promoted:
                    record = pred_records[rec_ptr]
                    rec_ptr += 1
                useful_append((inst, o_taken, promoted, record))
                i += 1
                if active_dirs[idx] != o_taken:
                    event = "fault" if promoted else "mispredict"
                    if promoted:
                        self.stats.promoted_faults += 1
                    else:
                        self.stats.cond_mispredicts += 1
                    if result.divergence and idx == len(active) - 1:
                        # The trace disagreed with the (wrong) prediction, so
                        # the inactively issued remainder is on the correct
                        # path: it retires from this same fetch.
                        i = self._consume_inactive(result, oracle, i, n, useful)
                    return useful, i, event
            else:
                useful_append((inst, o_taken, False, None))
                i += 1
        # Every supplied direction matched; check the fetch's successor.
        if i < n:
            expected = oracle[i][0].addr
            if result.next_pc is None:
                event = "misfetch"
            elif result.next_pc != expected:
                # Only an indirect jump / return target can be wrong here.
                event = "indirect"
                self.stats.indirect_mispredicts += 1
        return useful, i, event

    def _consume_inactive(self, result: FetchResult, oracle, i: int, n: int,
                          useful: List[_UsefulInst]) -> int:
        for idx, inst in enumerate(result.inactive):
            if i >= n:
                return i
            o_inst, o_taken, _o_next = oracle[i]
            if o_inst.addr != inst.addr:
                return i
            promoted = result.inactive_promoted[idx]
            useful.append((inst, o_taken, promoted, None))
            i += 1
            if inst.op.is_cond_branch and result.inactive_dirs[idx] != o_taken:
                # The trace path itself leaves the correct path here; a
                # second recovery folds into this one in the simple model.
                if promoted:
                    self.stats.promoted_faults += 1
                else:
                    self.stats.cond_mispredicts += 1
                return i
        return i

    # -------------------------------------------------------------- retire

    def _retire(self, useful: List[_UsefulInst], oracle, i_after: int) -> None:
        path: List[bool] = []
        oracle_index = i_after - len(useful)
        fill_unit = self.fill_unit
        if fill_unit is not None:
            fill_unit.retire_batch(useful)
        engine = self.engine
        stats = self.stats
        ghr_mask = engine.ghr.mask
        arch_ras = self._arch_ras
        arch_ghr = self._arch_ghr
        for offset, (inst, taken, promoted, record) in enumerate(useful):
            code = inst.op.commit_code
            if code == 3:  # conditional branch
                arch_ghr = ((arch_ghr << 1) | taken) & ghr_mask
                if promoted:
                    stats.promoted_branches += 1
                else:
                    stats.cond_branches += 1
                    if record is not None:
                        engine.train_branch(record, taken, tuple(path))
                        path.append(taken)
            elif code == 4:  # call
                arch_ras.append(inst.fall_through)
            elif code == 5:  # return
                if arch_ras:
                    arch_ras.pop()
            elif code == 6:  # indirect
                stats.indirect_jumps += 1
                actual_target = oracle[oracle_index + offset][2]
                engine.indirect.update(inst.addr, actual_target)
        self._arch_ghr = arch_ghr

    # ------------------------------------------------------------- account

    def _record_fetch(self, result: FetchResult, useful: List[_UsefulInst],
                      event: Optional[str]) -> None:
        if event in ("mispredict", "fault"):
            reason = FetchReason.MISPRED_BR
        else:
            reason = result.raw_reason
        self.stats.record_fetch(
            FetchRecord(
                size=len(useful),
                reason=reason,
                predictions=result.predictions_used,
                source=result.source,
            )
        )

    def _advance(self, result: FetchResult, event: Optional[str],
                 next_oracle_pc: int, useful: List[_UsefulInst]) -> int:
        """Charge penalties, repair speculative state, pick the next pc."""
        config = self.config
        if event in ("mispredict", "fault", "indirect"):
            self.cycles += config.mispredict_penalty
            self.stats.cycle_accounting[CycleCategory.BRANCH_MISSES] += config.mispredict_penalty
            self._repair()
            self.recoveries += 1
            pc = next_oracle_pc
        elif event == "misfetch":
            self.cycles += config.misfetch_penalty
            self.stats.cycle_accounting[CycleCategory.MISFETCHES] += config.misfetch_penalty
            self._repair()
            pc = next_oracle_pc
        else:
            pc = result.next_pc
            if pc != next_oracle_pc:  # pragma: no cover - defensive
                raise RuntimeError(
                    f"predicted next pc {pc} != oracle {next_oracle_pc} without event"
                )
        if useful and useful[-1][0].op.opclass is OpClass.TRAP:
            self.cycles += config.trap_penalty
            self.stats.cycle_accounting[CycleCategory.TRAPS] += config.trap_penalty
        return pc

    def _repair(self) -> None:
        self.engine.restore((self._arch_ghr, tuple(self._arch_ras)))
        if self.fill_unit is not None:
            self.fill_unit.note_recovery()

    # --------------------------------------------------------------- result

    def _build_result(self) -> FrontEndResult:
        if self.fill_unit is not None:
            self.fill_unit.flush()
        engine = self.engine
        result = FrontEndResult(
            benchmark=self.program.name,
            config=self.config,
            stats=self.stats,
            cycles=self.cycles,
            instructions_retired=self.stats.useful_instructions,
            recoveries=self.recoveries,
            l1i_misses=engine.memory.l1i.stats.misses,
        )
        # Duck-typed: matches both the fast TraceFetchEngine and the frozen
        # reference copy (repro.frontend.fetch_reference).
        if getattr(engine, "trace_cache", None) is not None:
            result.tc_hits = engine.trace_cache.stats.hits
            result.tc_misses = engine.trace_cache.stats.misses
            result.tc_writes = engine.trace_cache.stats.writes
            result.fill_reasons = dict(engine.fill_unit.finalize_reasons)
            if engine.fill_unit.bias_table is not None:
                result.promotions = engine.fill_unit.bias_table.promotions
                result.demotions = engine.fill_unit.bias_table.demotions
        return result
