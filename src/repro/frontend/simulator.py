"""Oracle-driven front-end simulation.

This driver replays the correct-path (oracle) instruction stream against a
fetch engine, cycle by cycle, with fixed recovery penalties standing in for
the back end.  It produces every *front-end* metric in the paper: effective
fetch rate, the fetch-size/termination histograms (Figs. 4 and 6),
predictions per fetch (Table 3), misprediction counts (Fig. 7), and cache
miss cycles (Table 4).  End-to-end IPC and resolution-time results come
from the full out-of-order machine in :mod:`repro.core`.

Because the oracle stream is independent of front-end configuration it is
computed once per benchmark and shared across every configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.config import FrontEndConfig
from repro.frontend.build import build_engine
from repro.frontend.fetch import FetchResult, TraceFetchEngine
from repro.frontend.stats import CycleCategory, FetchReason, FetchRecord, FetchStats
from repro.isa.executor import run_oracle
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.program import Program

#: One oracle element: (instruction, taken-or-None, next correct-path pc).
OracleEntry = Tuple[Instruction, Optional[bool], int]


def compute_oracle(program: Program, max_instructions: Optional[int]) -> List[OracleEntry]:
    """Execute functionally and return the correct-path stream."""
    return run_oracle(program, max_instructions)


@dataclass
class FrontEndResult:
    """Everything one front-end run produced."""

    benchmark: str
    config: FrontEndConfig
    stats: FetchStats
    cycles: int
    instructions_retired: int
    recoveries: int
    tc_hits: int = 0
    tc_misses: int = 0
    tc_writes: int = 0
    fill_reasons: dict = field(default_factory=dict)
    l1i_misses: int = 0
    promotions: int = 0
    demotions: int = 0

    @property
    def effective_fetch_rate(self) -> float:
        return self.stats.effective_fetch_rate

    @property
    def fetch_ipc(self) -> float:
        """Correct-path instructions per *cycle* (includes penalty cycles)."""
        return self.instructions_retired / self.cycles if self.cycles else 0.0


#: One correct-path instruction consumed from a fetch:
#: ``(inst, taken, promoted, record)`` where ``record`` is the PredRecord
#: for dynamically predicted branches.  A plain tuple — one is built per
#: retired instruction, so dataclass construction cost dominated the
#: simulator's profile.
_UsefulInst = Tuple[Instruction, Optional[bool], bool, Optional[object]]


class FrontEndSimulator:
    """Drive one fetch engine over one benchmark's oracle stream."""

    def __init__(
        self,
        program: Program,
        config: FrontEndConfig,
        oracle: Optional[List[OracleEntry]] = None,
        max_instructions: Optional[int] = 100_000,
        engine=None,
    ):
        self.program = program
        self.config = config
        self.oracle = oracle if oracle is not None else compute_oracle(program, max_instructions)
        self.engine = engine if engine is not None else build_engine(program, config)
        # This driver repairs from its own architectural GHR/RAS copies and
        # never reads FetchResult.control_snapshots; skip capturing them
        # (one RAS copy per fetched branch — only the core needs it).
        self.engine.capture_snapshots = False
        self.fill_unit = getattr(self.engine, "fill_unit", None)
        self.stats = FetchStats()
        self._arch_ghr = 0
        self._arch_ras: List[int] = []
        self.cycles = 0
        self.recoveries = 0

    # ----------------------------------------------------------------- run

    def run(self) -> FrontEndResult:
        oracle = self.oracle
        n = len(oracle)
        i = 0
        pc = self.program.entry
        fetch = self.engine.fetch
        stats = self.stats
        cycle_accounting = stats.cycle_accounting
        match = self._match
        retire = self._retire
        record_fetch = self._record_fetch
        advance = self._advance
        # Accumulate per-fetch bookkeeping in locals and fold it into the
        # stats Counters once after the loop: Counter.__getitem__ hashes an
        # enum member per access, which showed up in the hot-loop profile.
        cycles = self.cycles
        useful_fetches = 0
        miss_cycles = 0
        while i < n:
            result = fetch(pc)
            cycles += 1
            stall = result.stall_cycles
            if stall:
                cycles += stall
                miss_cycles += stall
            if not result.active:
                # Off-image fetch cannot happen on the correct path.
                raise RuntimeError(f"empty fetch at pc={pc}")

            useful, i, event = match(result, oracle, i, n)
            useful_fetches += 1
            retire(useful, oracle, i)
            record_fetch(result, useful, event)

            if i >= n:
                break
            next_oracle_pc = oracle[i][0].addr
            self.cycles = cycles  # _advance charges penalties to self.cycles
            pc = advance(result, event, next_oracle_pc, useful)
            cycles = self.cycles
        self.cycles = cycles
        cycle_accounting[CycleCategory.USEFUL_FETCH] += useful_fetches
        if miss_cycles:
            cycle_accounting[CycleCategory.CACHE_MISSES] += miss_cycles
            stats.cache_miss_cycles += miss_cycles
        return self._build_result()

    # --------------------------------------------------------------- match

    def _match(self, result: FetchResult, oracle, i: int, n: int):
        """Walk the fetched instructions against the oracle stream.

        Returns (useful instructions, new oracle index, event) where event
        is one of None, "mispredict", "fault", "indirect", "misfetch".
        """
        useful: List[_UsefulInst] = []
        useful_append = useful.append
        event: Optional[str] = None
        rec_ptr = 0
        active = result.active
        active_dirs = result.active_dirs
        active_promoted = result.active_promoted
        pred_records = result.pred_records
        for idx, inst in enumerate(active):
            if i >= n:
                return useful, i, event
            o_inst, o_taken, _o_next = oracle[i]
            if o_inst.addr != inst.addr:  # pragma: no cover - defensive
                raise RuntimeError(
                    f"fetch desync at {inst.addr} vs oracle {o_inst.addr}"
                )
            # A non-None fetch direction marks exactly the conditional
            # branches (every engine fills active_dirs that way).
            if active_dirs[idx] is not None:
                promoted = active_promoted[idx]
                record = None
                if not promoted:
                    record = pred_records[rec_ptr]
                    rec_ptr += 1
                useful_append((inst, o_taken, promoted, record))
                i += 1
                if active_dirs[idx] != o_taken:
                    event = "fault" if promoted else "mispredict"
                    if promoted:
                        self.stats.promoted_faults += 1
                    else:
                        self.stats.cond_mispredicts += 1
                    if result.divergence and idx == len(active) - 1:
                        # The trace disagreed with the (wrong) prediction, so
                        # the inactively issued remainder is on the correct
                        # path: it retires from this same fetch.
                        i = self._consume_inactive(result, oracle, i, n, useful)
                    return useful, i, event
            else:
                useful_append((inst, o_taken, False, None))
                i += 1
        # Every supplied direction matched; check the fetch's successor.
        if i < n:
            expected = oracle[i][0].addr
            if result.next_pc is None:
                event = "misfetch"
            elif result.next_pc != expected:
                # Only an indirect jump / return target can be wrong here.
                event = "indirect"
                self.stats.indirect_mispredicts += 1
        return useful, i, event

    def _consume_inactive(self, result: FetchResult, oracle, i: int, n: int,
                          useful: List[_UsefulInst]) -> int:
        for idx, inst in enumerate(result.inactive):
            if i >= n:
                return i
            o_inst, o_taken, _o_next = oracle[i]
            if o_inst.addr != inst.addr:
                return i
            promoted = result.inactive_promoted[idx]
            useful.append((inst, o_taken, promoted, None))
            i += 1
            if inst.op.is_cond_branch and result.inactive_dirs[idx] != o_taken:
                # The trace path itself leaves the correct path here; a
                # second recovery folds into this one in the simple model.
                if promoted:
                    self.stats.promoted_faults += 1
                else:
                    self.stats.cond_mispredicts += 1
                return i
        return i

    # -------------------------------------------------------------- retire

    def _retire(self, useful: List[_UsefulInst], oracle, i_after: int) -> None:
        path: List[bool] = []
        oracle_index = i_after - len(useful)
        fill_unit = self.fill_unit
        if fill_unit is not None:
            fill_unit.retire_batch(useful)
        engine = self.engine
        stats = self.stats
        ghr_mask = engine.ghr.mask
        arch_ras = self._arch_ras
        arch_ghr = self._arch_ghr
        for offset, (inst, taken, promoted, record) in enumerate(useful):
            code = inst.op.commit_code
            if code == 3:  # conditional branch
                arch_ghr = ((arch_ghr << 1) | taken) & ghr_mask
                if promoted:
                    stats.promoted_branches += 1
                else:
                    stats.cond_branches += 1
                    if record is not None:
                        engine.train_branch(record, taken, tuple(path))
                        path.append(taken)
            elif code == 4:  # call
                arch_ras.append(inst.fall_through)
            elif code == 5:  # return
                if arch_ras:
                    arch_ras.pop()
            elif code == 6:  # indirect
                stats.indirect_jumps += 1
                actual_target = oracle[oracle_index + offset][2]
                engine.indirect.update(inst.addr, actual_target)
        self._arch_ghr = arch_ghr

    # ------------------------------------------------------------- account

    def _record_fetch(self, result: FetchResult, useful: List[_UsefulInst],
                      event: Optional[str]) -> None:
        if event in ("mispredict", "fault"):
            reason = FetchReason.MISPRED_BR
        else:
            reason = result.raw_reason
        self.stats.record_fetch(
            FetchRecord(
                size=len(useful),
                reason=reason,
                predictions=result.predictions_used,
                source=result.source,
            )
        )

    def _advance(self, result: FetchResult, event: Optional[str],
                 next_oracle_pc: int, useful: List[_UsefulInst]) -> int:
        """Charge penalties, repair speculative state, pick the next pc."""
        config = self.config
        if event in ("mispredict", "fault", "indirect"):
            self.cycles += config.mispredict_penalty
            self.stats.cycle_accounting[CycleCategory.BRANCH_MISSES] += config.mispredict_penalty
            self._repair()
            self.recoveries += 1
            pc = next_oracle_pc
        elif event == "misfetch":
            self.cycles += config.misfetch_penalty
            self.stats.cycle_accounting[CycleCategory.MISFETCHES] += config.misfetch_penalty
            self._repair()
            pc = next_oracle_pc
        else:
            pc = result.next_pc
            if pc != next_oracle_pc:  # pragma: no cover - defensive
                raise RuntimeError(
                    f"predicted next pc {pc} != oracle {next_oracle_pc} without event"
                )
        if useful and useful[-1][0].op.opclass is OpClass.TRAP:
            self.cycles += config.trap_penalty
            self.stats.cycle_accounting[CycleCategory.TRAPS] += config.trap_penalty
        return pc

    def _repair(self) -> None:
        self.engine.restore((self._arch_ghr, tuple(self._arch_ras)))
        if self.fill_unit is not None:
            self.fill_unit.note_recovery()

    # --------------------------------------------------------------- result

    def _build_result(self) -> FrontEndResult:
        if self.fill_unit is not None:
            self.fill_unit.flush()
        engine = self.engine
        result = FrontEndResult(
            benchmark=self.program.name,
            config=self.config,
            stats=self.stats,
            cycles=self.cycles,
            instructions_retired=self.stats.useful_instructions,
            recoveries=self.recoveries,
            l1i_misses=engine.memory.l1i.stats.misses,
        )
        if isinstance(engine, TraceFetchEngine):
            result.tc_hits = engine.trace_cache.stats.hits
            result.tc_misses = engine.trace_cache.stats.misses
            result.tc_writes = engine.trace_cache.stats.writes
            result.fill_reasons = dict(engine.fill_unit.finalize_reasons)
            if engine.fill_unit.bias_table is not None:
                result.promotions = engine.fill_unit.bias_table.promotions
                result.demotions = engine.fill_unit.bias_table.demotions
        return result
