"""Frozen reference copy of the seed fetch engines (PR 4 freeze).

A **verbatim copy** of :mod:`repro.frontend.fetch` exactly as it stood
before the fast front-end rewrite, with its predictor imports redirected
to the frozen stack in :mod:`repro.branch.reference`.  Selecting
``REPRO_FAST_FRONTEND=0`` makes :func:`repro.frontend.build.build_engine`
construct these engines instead of the optimized ones;
``benchmarks/bench_frontend_fetch.py`` and
``tests/test_frontend_parity.py`` pin the optimized path byte-identical
to this one.

Do not optimize or otherwise edit this module; it is the contract.
"""


from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.branch.reference import (
    GlobalHistory,
    HybridPredictor,
    IdealReturnAddressStack,
    LastTargetPredictor,
)
from repro.isa.instruction import INST_BYTES, Instruction
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.program import Program
from repro.mem.hierarchy import MemoryHierarchy
from repro.frontend.stats import FetchReason
from repro.trace.fill_unit import FillUnit
from repro.trace.segment import FinalizeReason, TraceSegment
from repro.trace.trace_cache import TraceCache

#: Fetch width in instructions (also the trace segment size).
FETCH_WIDTH = 16

_REASON_FROM_FINALIZE = {
    FinalizeReason.MAX_SIZE: FetchReason.MAX_SIZE,
    FinalizeReason.MAX_BRANCHES: FetchReason.MAXIMUM_BRS,
    FinalizeReason.ATOMIC_BLOCK: FetchReason.ATOMIC_BLOCKS,
    FinalizeReason.SEG_ENDER: FetchReason.RET_INDIR_TRAP,
    FinalizeReason.RECOVERY: FetchReason.MISPRED_BR,
    FinalizeReason.FLUSH: FetchReason.ATOMIC_BLOCKS,
}


@dataclass(frozen=True, slots=True)
class PredRecord:
    """Everything needed to train the predictor for one fetched branch."""

    addr: int
    position: int      # prediction slot within this fetch (0..2)
    token: object      # predictor-specific handle (row/index/HybridPrediction)
    predicted: bool


class FetchResult:
    """One cycle's fetch.

    A hand-rolled ``__slots__`` class rather than a dataclass: one is
    constructed per fetch (the single hottest allocation in a front-end
    simulation), and the engines fill the fields in directly, so the
    constructor takes only the few values known up front.
    """

    __slots__ = (
        "pc", "source", "active", "active_dirs", "active_promoted",
        "inactive", "inactive_dirs", "inactive_promoted", "pred_records",
        "divergence", "next_pc", "stall_cycles", "raw_reason",
        "predictions_used", "ends_with_trap", "segment", "control_snapshots",
    )

    def __init__(self, pc: int, source: str, stall_cycles: int = 0,
                 segment: Optional[TraceSegment] = None):
        self.pc = pc
        self.source = source                     # "tc" or "icache"
        self.active: List[Instruction] = []
        #: per active instruction: the fetch path's direction for
        #: conditional branches (promoted => static direction, dynamic =>
        #: prediction); None for non-branches.
        self.active_dirs: List[Optional[bool]] = []
        self.active_promoted: List[bool] = []
        self.inactive: List[Instruction] = []
        self.inactive_dirs: List[Optional[bool]] = []
        self.inactive_promoted: List[bool] = []
        self.pred_records: List[PredRecord] = []
        self.divergence = False       # trace path diverged from predicted path
        self.next_pc: Optional[int] = None  # None => target unknown (misfetch)
        self.stall_cycles = stall_cycles    # icache miss cycles before delivery
        self.raw_reason = FetchReason.ICACHE
        self.predictions_used = 0
        self.ends_with_trap = False
        self.segment = segment
        #: position in ``active`` -> (ghr value before this branch's push,
        #: RAS snapshot at that point).  Used by the core for checkpoint
        #: repair.
        self.control_snapshots: dict = {}

    @property
    def size(self) -> int:
        return len(self.active)


class _FrontEndBase:
    """Shared speculative state: global history, RAS, indirect predictor."""

    def __init__(self, program: Program, memory: MemoryHierarchy, ghr_bits: int):
        self.program = program
        self.memory = memory
        self.ghr = GlobalHistory(ghr_bits)
        self.ras = IdealReturnAddressStack()
        self.indirect = LastTargetPredictor()
        #: Record per-branch (GHR, RAS) snapshots in each FetchResult's
        #: ``control_snapshots``.  Only the out-of-order core reads them
        #: (checkpoint repair); the oracle-driven front-end simulator
        #: restores from its own architectural state, so it turns this off
        #: to skip a RAS copy per fetched branch.
        self.capture_snapshots = True

    def snapshot(self) -> tuple:
        return (self.ghr.snapshot(), self.ras.snapshot())

    def restore(self, state: tuple) -> None:
        ghr_value, ras_state = state
        self.ghr.restore(ghr_value)
        self.ras.restore(ras_state)

    # --- icache block fetch (shared by both engines) ---------------------

    def _fetch_icache_block(self, pc: int) -> Tuple[List[Instruction], int, bool]:
        """Fetch one block from the instruction cache with split-line fetch.

        Returns (instructions, stall_cycles, line_boundary_cut).  The block
        ends at the first control instruction, the fetch width, the end of
        the code image, or a second-line miss (split-line rule).
        """
        memory = self.memory
        latency = memory.inst_line_latency(pc)
        stall = max(0, latency - memory.config.l1i_hit_latency)
        line_bytes = memory.config.l1i_line_bytes
        line_id = (pc * INST_BYTES) // line_bytes
        block: List[Instruction] = []
        boundary_cut = False
        addr = pc
        while len(block) < FETCH_WIDTH:
            inst = self.program.fetch(addr)
            if inst is None:
                break
            this_line = (addr * INST_BYTES) // line_bytes
            if this_line != line_id:
                if not memory.inst_line_hit(addr):
                    # Second-line miss terminates the fetch; start the fill.
                    memory.inst_line_latency(addr)
                    boundary_cut = True
                    break
                memory.l1i.access(addr * INST_BYTES)
                line_id = this_line
            block.append(inst)
            if inst.op.ends_fetch_block:
                break
            addr += 1
        return block, stall, boundary_cut

    def _control_next_pc(self, inst: Instruction, predicted_taken: Optional[bool]) -> Optional[int]:
        """Predicted successor of a block-ending control instruction."""
        op = inst.op
        if op.is_cond_branch:
            return inst.target if predicted_taken else inst.fall_through
        if op is Opcode.JMP:
            return inst.target
        if op is Opcode.CALL:
            self.ras.push(inst.fall_through)
            return inst.target
        if op is Opcode.RET:
            return self.ras.pop()
        if op is Opcode.JR:
            return self.indirect.predict(inst.addr)
        # TRAP / HALT serialize; fetch resumes at the next instruction.
        return inst.fall_through


class TraceFetchEngine(_FrontEndBase):
    """Trace cache front end with partial matching and inactive issue."""

    def __init__(
        self,
        program: Program,
        memory: MemoryHierarchy,
        trace_cache: TraceCache,
        fill_unit: FillUnit,
        predictor,
        ghr_bits: Optional[int] = None,
        inactive_issue: bool = True,
    ):
        if ghr_bits is None:
            ghr_bits = getattr(predictor, "history_bits", 14)
        super().__init__(program, memory, ghr_bits)
        self.trace_cache = trace_cache
        self.fill_unit = fill_unit
        self.predictor = predictor
        #: inactive issue is always on in the paper; ablation turns the
        #: dormant remainder of partially matching lines into a plain cut
        self.inactive_issue = inactive_issue
        #: one-shot direction overrides installed by promoted-fault recovery
        self._fault_overrides = {}

    def add_fault_override(self, addr: int, direction: bool) -> None:
        """Force the next fetch of the promoted branch at ``addr`` to follow
        ``direction`` (its architecturally correct outcome)."""
        self._fault_overrides[addr] = direction

    def fetch(self, pc: int) -> FetchResult:
        if self.trace_cache.path_assoc:
            segment = self._select_path(pc)
        else:
            segment = self.trace_cache.lookup(pc)
        if segment is None:
            return self._fetch_from_icache(pc)
        return self._fetch_from_segment(pc, segment)

    def _select_path(self, pc: int) -> Optional[TraceSegment]:
        """Path-associative selection: among same-start candidates, take
        the one whose leading dynamic branch directions agree with the
        predictor for the longest prefix."""
        candidates = self.trace_cache.lookup_candidates(pc)
        if not candidates:
            self.trace_cache.record_miss()
            return None
        if len(candidates) == 1:
            chosen = candidates[0]
        else:
            prediction = self.predictor.predict(pc, self.ghr.value)

            def score(segment: TraceSegment) -> tuple:
                matched = 0
                for branch in segment.dynamic_branches[:3]:
                    if prediction.taken[matched] != branch.direction:
                        break
                    matched += 1
                return (matched, len(segment))

            chosen = max(candidates, key=score)
        self.trace_cache.record_hit(chosen)
        return chosen

    def _fetch_from_segment(self, pc: int, segment: TraceSegment) -> FetchResult:
        events, dirs_tmpl, promoted_tmpl, promoted_addrs, tail = segment.fetch_plan()
        fault_overrides = self._fault_overrides
        if not fault_overrides or fault_overrides.keys().isdisjoint(promoted_addrs):
            return self._fetch_from_plan(pc, segment, events, dirs_tmpl,
                                         promoted_tmpl, tail)
        return self._fetch_from_segment_slow(pc, segment)

    def _fetch_from_plan(self, pc: int, segment: TraceSegment, events: list,
                         dirs_tmpl: list, promoted_tmpl: list, tail: int) -> FetchResult:
        """Segment fetch along the precomputed event plan (no pending fault
        overrides, the overwhelmingly common case).

        Only the control *events* are walked — per-position work is
        replaced by slicing the segment's cached direction/promotion
        templates, which is valid because a non-diverging fetch follows
        exactly the embedded path and a diverging one follows it up to the
        diverging branch.
        """
        ghr = self.ghr
        ras = self.ras
        ghr_push = ghr.push
        # The predictor is consulted with the fetch-entry history, but only
        # if the segment actually contains a dynamically predicted branch —
        # fully promoted (or branch-free) segments skip the table walk.
        ghr_at_entry = ghr.value
        prediction = None
        result = FetchResult(pc=pc, source="tc", segment=segment)
        capture = self.capture_snapshots
        snapshots = result.control_snapshots
        ras_snap = None
        instructions = segment.instructions
        dyn_index = 0
        divergence_pos = -1
        diverging_predicted = False
        for kind, pos, payload in events:
            if kind == 0:
                ras.push(payload)
                ras_snap = None
                continue
            if capture:
                if ras_snap is None:
                    ras_snap = ras.snapshot()
                snapshots[pos] = (ghr.value, ras_snap)
            if kind == 1:
                ghr_push(payload)
            else:
                direction, addr = payload
                if prediction is None:
                    prediction = self.predictor.predict(pc, ghr_at_entry)
                predicted = prediction.taken[dyn_index]
                result.pred_records.append(
                    PredRecord(addr=addr, position=dyn_index,
                               token=prediction.indices[dyn_index], predicted=predicted)
                )
                dyn_index += 1
                ghr_push(predicted)
                if predicted != direction:
                    divergence_pos = pos
                    diverging_predicted = predicted
                    break
        result.predictions_used = dyn_index
        if divergence_pos >= 0:
            cut = divergence_pos + 1
            result.active = instructions[:cut]
            dirs = dirs_tmpl[:cut]
            dirs[divergence_pos] = diverging_predicted
            result.active_dirs = dirs
            result.active_promoted = promoted_tmpl[:cut]
            result.divergence = True
            diverging = instructions[divergence_pos]
            result.next_pc = diverging.target if diverging_predicted else diverging.fall_through
            result.raw_reason = FetchReason.PARTIAL_MATCH
            # The remainder of the line issues inactively, along the
            # segment's own (non-predicted) path.
            if self.inactive_issue and cut < len(instructions):
                result.inactive = instructions[cut:]
                result.inactive_dirs = dirs_tmpl[cut:]
                result.inactive_promoted = promoted_tmpl[cut:]
            return result
        result.active = instructions[:]
        result.active_dirs = dirs_tmpl[:]
        result.active_promoted = promoted_tmpl[:]
        result.raw_reason = _REASON_FROM_FINALIZE[segment.finalize_reason]
        if tail == 0:
            result.next_pc = segment.next_addr
        elif tail == 1:
            result.next_pc = ras.pop()
        elif tail == 2:
            result.next_pc = self.indirect.predict(instructions[-1].addr)
        else:
            result.next_pc = instructions[-1].fall_through
            result.ends_with_trap = True
        return result

    def _fetch_from_segment_slow(self, pc: int, segment: TraceSegment) -> FetchResult:
        """Per-slot segment walk, kept for fetches with a pending promoted
        fault override (which can cut the fetch at an arbitrary position)."""
        ghr = self.ghr
        ras = self.ras
        ghr_push = ghr.push
        ghr_at_entry = ghr.value
        prediction = None
        result = FetchResult(pc=pc, source="tc", segment=segment)
        active_append = result.active.append
        dirs_append = result.active_dirs.append
        promoted_append = result.active_promoted.append
        fault_overrides = self._fault_overrides
        capture = self.capture_snapshots
        slots = segment._fetch_slots
        if slots is None:
            slots = segment.fetch_slots()
        dyn_index = 0
        divergence_pos: Optional[int] = None
        diverging_predicted = False
        for pos, (inst, branch, call_ft) in enumerate(slots):
            direction: Optional[bool] = None
            promoted = False
            if branch is not None:
                if capture:
                    result.control_snapshots[pos] = (ghr.value, ras.snapshot())
                promoted = branch.promoted
                override = None
                if promoted and fault_overrides:
                    override = fault_overrides.pop(inst.addr, None)
                if override is not None:
                    # One-shot recovery override after a promoted-branch
                    # fault: execute the branch in its known direction.
                    direction = override
                    ghr_push(direction)
                    if direction != branch.direction:
                        divergence_pos = pos
                        diverging_predicted = direction
                elif promoted:
                    direction = branch.direction
                    ghr_push(direction)
                else:
                    if prediction is None:
                        prediction = self.predictor.predict(pc, ghr_at_entry)
                    predicted = prediction.taken[dyn_index]
                    result.pred_records.append(
                        PredRecord(addr=inst.addr, position=dyn_index,
                                   token=prediction.indices[dyn_index], predicted=predicted)
                    )
                    dyn_index += 1
                    ghr_push(predicted)
                    direction = predicted
                    if predicted != branch.direction:
                        divergence_pos = pos
                        diverging_predicted = predicted
            elif call_ft is not None:
                ras.push(call_ft)
            active_append(inst)
            dirs_append(direction)
            promoted_append(promoted)
            if divergence_pos is not None:
                break
        result.predictions_used = dyn_index
        if divergence_pos is not None:
            result.divergence = True
            diverging = segment.instructions[divergence_pos]
            result.next_pc = diverging.target if diverging_predicted else diverging.fall_through
            result.raw_reason = FetchReason.PARTIAL_MATCH
            # The remainder of the line issues inactively, along the
            # segment's own (non-predicted) path.
            if self.inactive_issue:
                for pos in range(divergence_pos + 1, len(slots)):
                    inst, branch, _call_ft = slots[pos]
                    result.inactive.append(inst)
                    result.inactive_dirs.append(branch.direction if branch else None)
                    result.inactive_promoted.append(branch.promoted if branch else False)
        else:
            result.raw_reason = _REASON_FROM_FINALIZE[segment.finalize_reason]
            last = segment.instructions[-1]
            if last.op is Opcode.RET:
                result.next_pc = self.ras.pop()
            elif last.op is Opcode.JR:
                result.next_pc = self.indirect.predict(last.addr)
            elif last.op.opclass in (OpClass.TRAP, OpClass.HALT):
                result.next_pc = last.fall_through
                result.ends_with_trap = True
            else:
                result.next_pc = segment.next_addr
        return result

    def _fetch_from_icache(self, pc: int) -> FetchResult:
        block, stall, boundary_cut = self._fetch_icache_block(pc)
        result = FetchResult(pc=pc, source="icache", stall_cycles=stall)
        if not block:
            result.next_pc = pc  # off the code image (wrong path); retry
            result.raw_reason = FetchReason.ICACHE
            return result
        last = block[-1]
        predicted: Optional[bool] = None
        if last.op.is_cond_branch:
            if self.capture_snapshots:
                result.control_snapshots[len(block) - 1] = (self.ghr.value, self.ras.snapshot())
            prediction = self.predictor.predict(pc, self.ghr.value)
            predicted = prediction.taken[0]
            result.pred_records.append(
                PredRecord(addr=last.addr, position=0,
                           token=prediction.indices[0], predicted=predicted)
            )
            result.predictions_used = 1
            self.ghr.push(predicted)
        for inst in block:
            result.active.append(inst)
            result.active_dirs.append(predicted if inst is last and last.op.is_cond_branch else None)
            result.active_promoted.append(False)
        result.next_pc = self._control_next_pc(last, predicted) if last.op.ends_fetch_block else last.fall_through
        result.ends_with_trap = last.op.opclass is OpClass.TRAP
        if len(block) >= FETCH_WIDTH and not last.op.ends_fetch_block:
            result.raw_reason = FetchReason.MAX_SIZE
            result.next_pc = last.fall_through
        else:
            result.raw_reason = FetchReason.ICACHE
        return result

    def train_branch(self, record: PredRecord, taken: bool, path: Tuple[bool, ...]) -> None:
        self.predictor.update(record.token, record.position, path, taken)


class ICacheFetchEngine(_FrontEndBase):
    """The reference front end: one fetch block per cycle, hybrid predictor."""

    def __init__(
        self,
        program: Program,
        memory: MemoryHierarchy,
        predictor: Optional[HybridPredictor] = None,
        history_bits: int = 15,
    ):
        super().__init__(program, memory, ghr_bits=history_bits)
        self.predictor = predictor or HybridPredictor(history_bits=history_bits)

    def fetch(self, pc: int) -> FetchResult:
        block, stall, _boundary_cut = self._fetch_icache_block(pc)
        result = FetchResult(pc=pc, source="icache", stall_cycles=stall)
        if not block:
            result.next_pc = pc
            return result
        last = block[-1]
        predicted: Optional[bool] = None
        if last.op.is_cond_branch:
            if self.capture_snapshots:
                result.control_snapshots[len(block) - 1] = (self.ghr.value, self.ras.snapshot())
            prediction = self.predictor.predict(last.addr, self.ghr.value)
            predicted = prediction.taken
            result.pred_records.append(
                PredRecord(addr=last.addr, position=0, token=prediction, predicted=predicted)
            )
            result.predictions_used = 1
            self.ghr.push(predicted)
        for inst in block:
            result.active.append(inst)
            result.active_dirs.append(predicted if inst is last and last.op.is_cond_branch else None)
            result.active_promoted.append(False)
        result.next_pc = self._control_next_pc(last, predicted) if last.op.ends_fetch_block else last.fall_through
        result.ends_with_trap = last.op.opclass is OpClass.TRAP
        if len(block) >= FETCH_WIDTH and not last.op.ends_fetch_block:
            result.raw_reason = FetchReason.MAX_SIZE
            result.next_pc = last.fall_through
        else:
            result.raw_reason = FetchReason.ICACHE
        return result

    def train_branch(self, record: PredRecord, taken: bool, path: Tuple[bool, ...]) -> None:
        del path  # single-branch predictor
        self.predictor.update(record.addr, record.token, taken)
