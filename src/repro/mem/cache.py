"""A generic set-associative cache with true-LRU replacement."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssocCache:
    """Tag store of a set-associative cache (no data payload).

    Addresses are byte addresses.  Each set keeps its ways in LRU order,
    most recent last.  ``access`` allocates on miss; ``probe`` checks
    without side effects.
    """

    def __init__(self, size_bytes: int, assoc: int, line_bytes: int, name: str = "cache"):
        if not _is_power_of_two(line_bytes):
            raise ValueError("line_bytes must be a power of two")
        if size_bytes % (assoc * line_bytes) != 0:
            raise ValueError("size must be divisible by assoc * line_bytes")
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.name = name
        self.n_sets = size_bytes // (assoc * line_bytes)
        if not _is_power_of_two(self.n_sets):
            raise ValueError("set count must be a power of two")
        self._set_mask = self.n_sets - 1
        self._line_shift = line_bytes.bit_length() - 1
        self._tag_shift = self.n_sets.bit_length() - 1
        # Each set: list of tags in LRU order (least recent first).
        self._sets: List[List[int]] = [[] for _ in range(self.n_sets)]
        self.stats = CacheStats()

    def _index_tag(self, addr: int) -> tuple:
        line = addr >> self._line_shift
        return line & self._set_mask, line >> self._tag_shift

    def probe(self, addr: int) -> bool:
        """Hit check without LRU update or allocation."""
        line = addr >> self._line_shift
        return (line >> self._tag_shift) in self._sets[line & self._set_mask]

    def access(self, addr: int) -> bool:
        """Access a byte address: returns True on hit.  Misses allocate.

        The hit path does a single way scan: ``list.remove`` both finds
        and unlinks the tag (the ``in`` + ``remove`` pair it replaces
        scanned the ways twice per hit).
        """
        line = addr >> self._line_shift
        tag = line >> self._tag_shift
        ways = self._sets[line & self._set_mask]
        try:
            ways.remove(tag)
        except ValueError:
            self.stats.misses += 1
            if len(ways) >= self.assoc:
                ways.pop(0)
            ways.append(tag)
            return False
        ways.append(tag)
        self.stats.hits += 1
        return True

    def touch(self, addr: int) -> None:
        """Allocate/refresh a line without counting stats (e.g. prefetch)."""
        index, tag = self._index_tag(addr)
        ways = self._sets[index]
        if tag in ways:
            ways.remove(tag)
        elif len(ways) >= self.assoc:
            ways.pop(0)
        ways.append(tag)

    def invalidate(self, addr: int) -> bool:
        """Drop the line holding ``addr``; True if it was present."""
        index, tag = self._index_tag(addr)
        ways = self._sets[index]
        if tag in ways:
            ways.remove(tag)
            return True
        return False

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.n_sets)]

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)
