"""Memory hierarchy: set-associative caches and the paper's configuration.

Paper section 3: a 4KB 4-way L1 instruction cache supporting the trace
cache (or a 128KB dual-ported instruction cache in the reference front
end), a 64KB L1 data cache, a unified 1MB second-level cache with 6-cycle
latency, and 50-cycle main memory.
"""

from repro.mem.cache import SetAssocCache
from repro.mem.hierarchy import MemoryHierarchy, MemoryConfig

__all__ = ["SetAssocCache", "MemoryHierarchy", "MemoryConfig"]
