"""The paper's memory hierarchy wired together with latencies."""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instruction import INST_BYTES
from repro.mem.cache import SetAssocCache

#: Bytes per data word in the simulator's word-addressed data space.
WORD_BYTES = 8


@dataclass(frozen=True)
class MemoryConfig:
    """Sizes and latencies; defaults are the paper's Section 3 values."""

    l1i_bytes: int = 4 * 1024
    l1i_assoc: int = 4
    l1i_line_bytes: int = 64  # 16 instructions: one fetch width
    l1d_bytes: int = 64 * 1024
    l1d_assoc: int = 4
    l1d_line_bytes: int = 32
    l2_bytes: int = 1024 * 1024
    l2_assoc: int = 8
    l2_line_bytes: int = 64
    l1i_hit_latency: int = 1
    l1d_hit_latency: int = 2
    l2_latency: int = 6
    memory_latency: int = 50


class MemoryHierarchy:
    """L1I + L1D backed by a unified L2 and flat main memory.

    Returns access latencies in cycles; the unified L2 is shared between
    the instruction and data paths as in the paper.
    """

    def __init__(self, config: MemoryConfig | None = None):
        self.config = config or MemoryConfig()
        cfg = self.config
        self.l1i = SetAssocCache(cfg.l1i_bytes, cfg.l1i_assoc, cfg.l1i_line_bytes, "L1I")
        self.l1d = SetAssocCache(cfg.l1d_bytes, cfg.l1d_assoc, cfg.l1d_line_bytes, "L1D")
        self.l2 = SetAssocCache(cfg.l2_bytes, cfg.l2_assoc, cfg.l2_line_bytes, "L2")
        # Hot-path shortcuts: the fetch engines call the instruction side
        # once per fetch (plus once per line crossing), so the frozen
        # config latencies and bound cache methods are hoisted here.
        self._l1i_hit_latency = cfg.l1i_hit_latency
        self._l2_latency = cfg.l2_latency
        self._memory_latency = cfg.memory_latency
        self._l1i_access = self.l1i.access
        self._l2_access = self.l2.access

    # --- instruction side -------------------------------------------------

    def inst_line_latency(self, inst_addr: int) -> int:
        """Latency to obtain the icache line holding instruction ``inst_addr``."""
        byte_addr = inst_addr * INST_BYTES
        if self._l1i_access(byte_addr):
            return self._l1i_hit_latency
        if self._l2_access(byte_addr):
            return self._l2_latency
        return self._memory_latency

    def inst_line_hit(self, inst_addr: int) -> bool:
        """Probe-only: is the line already in the L1I?"""
        return self.l1i.probe(inst_addr * INST_BYTES)

    # --- data side ----------------------------------------------------------

    def data_latency(self, word_addr: int) -> int:
        """Latency of a load/store to data word ``word_addr``."""
        # Keep code and data in disjoint L2 regions: offset the data space.
        byte_addr = (word_addr * WORD_BYTES) | (1 << 40)
        if self.l1d.access(byte_addr):
            return self.config.l1d_hit_latency
        if self.l2.access(byte_addr):
            return self.config.l2_latency
        return self.config.memory_latency
