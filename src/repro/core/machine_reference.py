"""Frozen reference copy of the per-cycle-scan machine core.

This is the seed implementation of :mod:`repro.core.machine`, kept
verbatim (imports aside) as the behavioural reference for the
event-driven core that replaced it:

* the parity tests (``tests/test_machine_parity.py``) run both cores on
  the same inputs and require byte-identical serialized results, and
* the machine-throughput benchmark times this core to measure the
  event-driven core's end-to-end speedup (``BENCH_machine.json``).

Do not optimize or otherwise modify this file — its value is that it
stays exactly as slow and exactly as correct as the seed.

Pipeline per cycle (processed in reverse order so stages are pipelined):

1. **retire** — in-order commit of up to 16 instructions: stores write the
   committed memory image, the fill unit and bias table consume the retired
   stream, and branch predictors train.
2. **complete** — instructions finishing execution this cycle wake their
   dependents; branches verify their predictions and trigger checkpoint
   repair on a misprediction, promoted-branch fault, or wrong indirect
   target.
3. **schedule** — each of the 16 universal function units issues its oldest
   ready instruction; loads additionally pass the memory scheduler
   (conservative: every older store's address must be known; perfect:
   oracle dependences only) with store-queue forwarding.
4. **dispatch** — up to 16 instructions rename, allocate reservation-station
   slots, *functionally execute* against the speculative state (so
   wrong-path instructions run real semantics), and take checkpoints at
   fetch-block boundaries (up to 3/cycle).
5. **fetch** — the front end supplies the next trace segment or icache
   block along the predicted path, stalling for traps, full windows,
   icache misses, unknown indirect targets, or recovery bubbles.

Inactive issue: when a trace line partially matches the prediction, its
remainder is dispatched *dormant* — occupying window slots but not
executing.  If the diverging branch resolves against its prediction the
dormant instructions activate immediately (zero refetch penalty); otherwise
they squash.
"""

from __future__ import annotations

import enum
import heapq
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import MachineConfig
from repro.frontend.build import build_engine
from repro.frontend.fetch import FetchResult
from repro.frontend.stats import CycleCategory
from repro.isa.executor import step_instruction
from repro.isa.instruction import NUM_REGS, REG_SP
from repro.isa.executor import STACK_BASE
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.program import Program

#: Extra recovery cycles charged when a promoted branch faults: the machine
#: backs up to the previous checkpoint rather than the branch itself.
FAULT_EXTRA_PENALTY = 2

#: Pipeline bubble between a recovery and the first redirected fetch.
REDIRECT_BUBBLE = 1


# --------------------------------------------------------------------------
# Seed copies of the in-flight structures (repro.core.inflight as of the
# seed).  Kept inline so the live inflight module can evolve with the
# event-driven core without silently changing this reference.

class InstState(enum.Enum):
    """Lifecycle of an in-flight instruction in the window."""

    DORMANT = "dormant"
    WAITING = "waiting"
    READY = "ready"
    MEM_BLOCKED = "memblk"
    EXECUTING = "exec"
    DONE = "done"
    SQUASHED = "squashed"


class FetchGroup:
    """Shared bookkeeping for all instructions of one fetch."""

    __slots__ = ("fetch_id", "cycle", "actual_path", "retired_any")

    def __init__(self, fetch_id: int, cycle: int):
        self.fetch_id = fetch_id
        self.cycle = cycle
        self.actual_path: List[bool] = []
        self.retired_any = False


class Checkpoint:
    """A checkpoint-repair snapshot taken at a fetch-block boundary."""

    __slots__ = ("regs", "rename", "ghr_before", "ras_state", "sq_len", "lq_len",
                 "seq", "resume_pc")

    def __init__(self, regs, rename, ghr_before, ras_state, sq_len, lq_len, seq,
                 resume_pc=None):
        self.regs = regs
        self.rename = rename
        self.ghr_before = ghr_before
        self.ras_state = ras_state
        self.sq_len = sq_len
        self.lq_len = lq_len
        self.seq = seq
        self.resume_pc = resume_pc


class InFlight:
    """One instruction in the machine's window."""

    __slots__ = (
        "seq", "inst", "group", "state", "fu",
        "pending_srcs", "dependents", "cp_snapshot",
        "next_pc", "taken", "mem_addr", "value", "dest",
        "pred_record", "predicted_taken", "promoted", "static_dir",
        "predicted_next", "checkpoint", "inactive_buffer",
        "store_blockers", "forward_from", "addr_known",
        "fetch_cycle", "dispatch_cycle", "complete_cycle",
        "is_active",
    )

    def __init__(self, seq: int, inst, group: FetchGroup, fetch_cycle: int):
        self.seq = seq
        self.inst = inst
        self.group = group
        self.state = InstState.WAITING
        self.fu = -1
        self.pending_srcs = 0
        self.dependents: List["InFlight"] = []
        self.next_pc: Optional[int] = None
        self.taken: Optional[bool] = None
        self.mem_addr: Optional[int] = None
        self.value: Optional[int] = None
        self.dest: Optional[int] = None
        self.pred_record = None
        self.cp_snapshot = None
        self.predicted_taken: Optional[bool] = None
        self.promoted = False
        self.static_dir: Optional[bool] = None
        self.predicted_next: Optional[int] = None
        self.checkpoint: Optional[Checkpoint] = None
        self.inactive_buffer = None
        self.store_blockers = 0
        self.forward_from: Optional["InFlight"] = None
        self.addr_known = False
        self.fetch_cycle = fetch_cycle
        self.dispatch_cycle = -1
        self.complete_cycle = -1
        self.is_active = True

    @property
    def squashed(self) -> bool:
        return self.state is InstState.SQUASHED


@dataclass
class MachineResult:
    """End-to-end statistics of one machine run."""

    benchmark: str
    config: MachineConfig
    cycles: int = 0
    retired: int = 0
    fetches: int = 0
    cycle_accounting: Counter = field(default_factory=Counter)
    # branches (retired, correct-path only)
    cond_branches: int = 0
    promoted_branches: int = 0
    cond_mispredicts: int = 0
    promoted_faults: int = 0
    indirect_jumps: int = 0
    indirect_mispredicts: int = 0
    # resolution times of mispredicted branches (fetch -> redirect)
    resolution_time_sum: int = 0
    resolution_count: int = 0
    # memory behaviour
    load_forwards: int = 0
    dcache_accesses: int = 0
    # inactive issue
    inactive_issued: int = 0       # instructions issued dormant
    dormant_activations: int = 0   # dormant instructions activated by recovery
    # structures
    tc_hits: int = 0
    tc_misses: int = 0
    l1i_misses: int = 0
    promotions: int = 0
    demotions: int = 0
    fill_reasons: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.retired / self.cycles if self.cycles else 0.0

    @property
    def total_mispredicted_branches(self) -> int:
        return self.cond_mispredicts + self.promoted_faults + self.indirect_mispredicts

    @property
    def avg_resolution_time(self) -> float:
        if not self.resolution_count:
            return 0.0
        return self.resolution_time_sum / self.resolution_count

    @property
    def mispredict_lost_cycles(self) -> int:
        return self.cycle_accounting[CycleCategory.BRANCH_MISSES]


class Machine:
    """One configured machine bound to one program."""

    def __init__(self, program: Program, config: MachineConfig,
                 max_instructions: Optional[int] = 100_000, engine=None):
        self.program = program
        self.config = config
        self.max_instructions = max_instructions
        if engine is None:
            engine = build_engine(program, config.frontend, memory_config=config.memory)
        else:
            # A functionally warmed engine: predictors, caches and bias
            # table stay trained, but the speculative fetch state must
            # match a machine starting at the program entry.
            engine.restore((0, ()))
        self.engine = engine
        # The core repairs from per-branch checkpoints, so it needs the
        # engine to capture (GHR, RAS) snapshots — engines default to the
        # capture-off fast path (warmed engines may also arrive with
        # capture disabled by the front-end simulator).
        engine.capture_snapshots = True
        self.fill_unit = getattr(self.engine, "fill_unit", None)
        core = config.core

        # Speculative architectural state (dispatch-order functional execution).
        self.spec_regs = [0] * NUM_REGS
        self.spec_regs[REG_SP] = STACK_BASE
        self.memory_image: Dict[int, int] = dict(program.data)
        self.rename: List[Optional[InFlight]] = [None] * NUM_REGS
        self.store_queue: List[InFlight] = []
        self.load_queue: List[InFlight] = []
        # Committed architectural state, maintained at retire.  Only used to
        # reconstruct speculative state when a recovery has no live
        # checkpoint to restore (rare: promoted fault before any boundary).
        self.arch_regs = list(self.spec_regs)
        self.arch_ghr = 0
        self.arch_ras: List[int] = []

        # Window structures.
        self.rob: deque = deque()
        self.rs_count = [0] * core.n_fus
        self.ready_heaps: List[list] = [[] for _ in range(core.n_fus)]
        self.completions: Dict[int, List[InFlight]] = {}
        self.checkpoints: List[Tuple[int, Checkpoint]] = []  # (seq, cp), sorted
        self.blocked_loads: List[InFlight] = []

        # Fetch state.
        self.pc = program.entry
        self.cycle = 0
        self.seq = 0
        self.fetch_id = 0
        self.halted = False
        self.redirect_bubble = 0
        self.icache_stall = 0
        self.pending_fetch: Optional[Tuple[FetchResult, FetchGroup]] = None
        self.dispatch_queue: deque = deque()  # InFlights awaiting dispatch slots
        self.trap_pending: Optional[int] = None     # seq of in-flight trap
        self.misfetch_waiting: Optional[int] = None  # seq of unresolved JR
        self.fault_redirect_delay = 0

        self.result = MachineResult(benchmark=program.name, config=config)
        # Reusable store-effect capture buffer for dispatch-time functional
        # execution: one list + one lambda per dispatched instruction was a
        # measurable allocation cost in the dispatch hot loop.
        self._store_capture: List[Tuple[int, int]] = []
        self._fetch_cycle_groups: List[Tuple[int, FetchGroup]] = []
        self._mem_waiters: Dict[int, List[InFlight]] = {}  # store seq -> loads
        # Sequence numbers after which the fill unit's pending segment is
        # cut: recoveries re-synchronize filling with fetch alignment, but
        # the cut must land where the *retire* stream reaches the
        # recovered branch, not where the out-of-order resolution happened.
        self._fill_cuts: set = set()

    # ------------------------------------------------------------------ run

    def run(self) -> MachineResult:
        core = self.config.core
        max_cycles = 200 * (self.max_instructions or 100_000)
        while not self.halted and self.cycle < max_cycles:
            self.cycle += 1
            self._retire(core.retire_width)
            self._complete()
            self._schedule()
            self._dispatch(core.issue_width)
            self._fetch()
        return self._finish()

    # ---------------------------------------------------------------- retire

    def _retire(self, width: int) -> None:
        retired = 0
        rob = self.rob
        while rob and retired < width:
            head = rob[0]
            if head.state is InstState.SQUASHED:
                rob.popleft()
                continue
            if head.state is not InstState.DONE or not head.is_active:
                break
            rob.popleft()
            retired += 1
            self._commit(head)
            if self.halted:
                break

    def _commit(self, rec: InFlight) -> None:
        result = self.result
        result.retired += 1
        rec.group.retired_any = True
        inst = rec.inst
        opclass = inst.op.opclass
        if rec.dest is not None:
            self.arch_regs[rec.dest] = rec.value
        if self.fill_unit is not None:
            self.fill_unit.retire(inst, rec.taken)
            if rec.seq in self._fill_cuts:
                self._fill_cuts.discard(rec.seq)
                self.fill_unit.note_recovery()
        if opclass is OpClass.STORE:
            self.memory_image[rec.mem_addr] = rec.value
            if self.store_queue and self.store_queue[0] is rec:
                self.store_queue.pop(0)
            else:  # pragma: no cover - defensive
                self.store_queue.remove(rec)
        elif opclass is OpClass.LOAD:
            if self.load_queue and self.load_queue[0] is rec:
                self.load_queue.pop(0)
            elif rec in self.load_queue:
                self.load_queue.remove(rec)
        elif opclass is OpClass.COND_BRANCH:
            self.arch_ghr = ((self.arch_ghr << 1) | int(rec.taken)) & self.engine.ghr.mask
            if rec.promoted:
                result.promoted_branches += 1
            else:
                result.cond_branches += 1
                if rec.pred_record is not None:
                    self.engine.train_branch(
                        rec.pred_record, rec.taken, tuple(rec.group.actual_path)
                    )
                    rec.group.actual_path.append(rec.taken)
        elif opclass is OpClass.CALL:
            self.arch_ras.append(inst.fall_through)
        elif opclass is OpClass.RETURN:
            if self.arch_ras:
                self.arch_ras.pop()
        elif opclass is OpClass.INDIRECT:
            result.indirect_jumps += 1
            self.engine.indirect.update(inst.addr, rec.next_pc)
        elif opclass is OpClass.TRAP:
            if self.trap_pending == rec.seq:
                self.trap_pending = None
        elif opclass is OpClass.HALT:
            self.halted = True
        self._drop_checkpoint(rec)
        if self.max_instructions is not None and result.retired >= self.max_instructions:
            self.halted = True

    def _drop_checkpoint(self, rec: InFlight) -> None:
        if rec.checkpoint is not None:
            for i, (seq, _cp) in enumerate(self.checkpoints):
                if seq == rec.seq:
                    del self.checkpoints[i]
                    break
            rec.checkpoint = None

    # -------------------------------------------------------------- complete

    def _complete(self) -> None:
        done = self.completions.pop(self.cycle, None)
        if not done:
            return
        for rec in done:
            if rec.state is InstState.SQUASHED:
                continue
            rec.state = InstState.DONE
            rec.complete_cycle = self.cycle
            for dep in rec.dependents:
                if dep.state is InstState.WAITING:
                    dep.pending_srcs -= 1
                    if dep.pending_srcs <= 0:
                        self._make_ready(dep)
            rec.dependents = []
            opclass = rec.inst.op.opclass
            if opclass is OpClass.STORE:
                rec.addr_known = True
                self._wake_store_waiters(rec)
            elif opclass is OpClass.COND_BRANCH:
                self._resolve_branch(rec)
            elif opclass in (OpClass.INDIRECT, OpClass.RETURN):
                self._resolve_indirect(rec)
            if self.misfetch_waiting == rec.seq:
                self.misfetch_waiting = None
                self.pc = rec.next_pc

    def _wake_store_waiters(self, store: InFlight) -> None:
        waiters = self._mem_waiters.pop(store.seq, None)
        if waiters:
            for load in waiters:
                if load.state is InstState.MEM_BLOCKED:
                    self._make_ready(load)
        if self.blocked_loads:
            still_blocked = []
            for load in self.blocked_loads:
                if load.state is not InstState.MEM_BLOCKED:
                    continue
                if self._older_unknown_store(load) is None:
                    self._make_ready(load)
                else:
                    still_blocked.append(load)
            self.blocked_loads = still_blocked

    def _make_ready(self, rec: InFlight) -> None:
        rec.state = InstState.READY
        heapq.heappush(self.ready_heaps[rec.fu], (rec.seq, rec))

    # --------------------------------------------------------- branch repair

    def _resolve_branch(self, rec: InFlight) -> None:
        actual = rec.taken
        if rec.promoted:
            predicted = rec.static_dir
        else:
            predicted = rec.predicted_taken
        if predicted == actual:
            if rec.inactive_buffer:
                for dormant in rec.inactive_buffer:
                    self._squash_one(dormant)
                rec.inactive_buffer = None
            return
        # Mispredicted.  Track stats, then repair.
        self.result.resolution_time_sum += self.cycle + REDIRECT_BUBBLE - rec.fetch_cycle
        self.result.resolution_count += 1
        if rec.promoted:
            self.result.promoted_faults += 1
            self._recover_fault(rec)
        else:
            self.result.cond_mispredicts += 1
            self._recover_mispredict(rec)

    def _recover_mispredict(self, branch: InFlight) -> None:
        """Checkpoint repair at the branch's own checkpoint."""
        cp = branch.checkpoint
        assert cp is not None, "dynamic branch without checkpoint"
        self._restore(cp)
        self.engine.ghr.push(branch.taken)
        buffer = branch.inactive_buffer
        branch.inactive_buffer = None
        activate = bool(buffer) and buffer[0].inst.addr == branch.next_pc
        exempt = frozenset(rec.seq for rec in buffer) if activate else frozenset()
        self._squash_younger(branch.seq, exempt=exempt)
        self._fill_cuts.add(branch.seq)
        # The checkpoint stays live until the branch retires; a later fault
        # rolling back to it must resume along the now-known-correct path.
        cp.resume_pc = branch.next_pc
        if activate:
            redirect = self._activate_dormant(buffer)
        else:
            redirect = branch.next_pc
        self.pc = redirect
        self.redirect_bubble = REDIRECT_BUBBLE
        self._clear_fetch_state()

    def _recover_fault(self, branch: InFlight) -> None:
        """Promoted-branch fault: back up to the *previous* checkpoint.

        The machine restores the nearest older checkpoint, squashes
        everything younger than it (including correct-path work in the
        faulting atomic unit), and refetches from the checkpoint's resume
        point with a one-shot direction override installed so the branch
        executes correctly this time.
        """
        cp_entry = None
        for seq, cp in reversed(self.checkpoints):
            if seq < branch.seq:
                cp_entry = (seq, cp)
                break
        if branch.inactive_buffer:
            for dormant in branch.inactive_buffer:
                self._squash_one(dormant)
            branch.inactive_buffer = None
        add_fault_override = getattr(self.engine, "add_fault_override", None)
        if add_fault_override is not None:
            add_fault_override(branch.inst.addr, branch.taken)
        if cp_entry is None:
            # No older checkpoint alive (fault very early in a fetch
            # burst): fall back to branch-local recovery.
            self._restore_at_branch(branch)
            self.pc = branch.next_pc
        else:
            seq, cp = cp_entry
            owner = self._find_in_rob(seq)
            self._fill_cuts.add(seq)
            self._restore(cp)
            if owner is not None and owner.inst.op.is_cond_branch:
                if owner.state is InstState.DONE:
                    self.engine.ghr.push(owner.taken)
                else:
                    self.engine.ghr.push(
                        owner.static_dir if owner.promoted else owner.predicted_taken
                    )
            self._squash_younger(seq)
            self.pc = cp.resume_pc if cp.resume_pc is not None else branch.next_pc
        self.redirect_bubble = REDIRECT_BUBBLE + FAULT_EXTRA_PENALTY
        self._clear_fetch_state()

    def _restore_at_branch(self, branch: InFlight) -> None:
        """Recovery at a branch without its own checkpoint.

        Reconstructs speculative state by replaying the window on top of
        the committed architectural state: registers and rename from every
        live instruction up to the branch, global history and return
        address stack from the in-flight control instructions.
        """
        regs = list(self.arch_regs)
        rename: List[Optional[InFlight]] = [None] * NUM_REGS
        ghr = self.arch_ghr
        ras = list(self.arch_ras)
        for rec in self.rob:
            if rec.seq > branch.seq or rec.squashed or not rec.is_active:
                continue
            if rec.dest is not None:
                regs[rec.dest] = rec.value
                rename[rec.dest] = rec
            op = rec.inst.op
            if op.is_cond_branch:
                fetched_dir = rec.static_dir if rec.promoted else rec.predicted_taken
                if rec.seq == branch.seq:
                    fetched_dir = rec.taken  # the repair pushes the actual outcome
                ghr = ((ghr << 1) | int(bool(fetched_dir))) & self.engine.ghr.mask
            elif op.opclass is OpClass.CALL:
                ras.append(rec.inst.fall_through)
            elif op.opclass is OpClass.RETURN and ras:
                ras.pop()
        self.spec_regs = regs
        self.rename = rename
        self.engine.ghr.restore(ghr)
        self.engine.ras.restore(tuple(ras))
        self._truncate_mem_queues(branch.seq)
        self._rescan_mem_blocked()
        self._squash_younger(branch.seq)

    def _resolve_indirect(self, rec: InFlight) -> None:
        """JR / RET target verification."""
        if rec.predicted_next is None:
            # Misfetch: fetch has been stalled on this jump; _complete
            # redirects via misfetch_waiting.
            return
        if rec.predicted_next == rec.next_pc:
            return
        self.result.indirect_mispredicts += 1
        self.result.resolution_time_sum += self.cycle + REDIRECT_BUBBLE - rec.fetch_cycle
        self.result.resolution_count += 1
        cp = rec.checkpoint
        self._fill_cuts.add(rec.seq)
        if cp is not None:
            self._restore(cp)
            self._squash_younger(rec.seq)
            cp.resume_pc = rec.next_pc
        else:  # pragma: no cover - indirect fetch-enders always checkpoint
            self._restore_at_branch(rec)
        self.pc = rec.next_pc
        self.redirect_bubble = REDIRECT_BUBBLE
        self._clear_fetch_state()

    def _restore(self, cp: Checkpoint) -> None:
        self.spec_regs = list(cp.regs)
        self.rename = list(cp.rename)
        self.engine.ghr.restore(cp.ghr_before)
        self.engine.ras.restore(cp.ras_state)
        self._truncate_mem_queues(cp.seq)
        self._rescan_mem_blocked()

    def _truncate_mem_queues(self, seq: int) -> None:
        """Drop store/load-queue entries younger than ``seq``.

        Truncation is by sequence number, not by remembered length: older
        entries may have retired from the queue front since the checkpoint
        was taken.
        """
        keep = []
        for store in self.store_queue:
            if store.seq <= seq:
                keep.append(store)
            else:
                store.addr_known = True  # squashed; stop blocking loads
        self.store_queue = keep
        self.load_queue = [load for load in self.load_queue if load.seq <= seq]

    def _rescan_mem_blocked(self) -> None:
        """Re-evaluate every memory-blocked load after a recovery.

        The store a load was waiting on may have been squashed; waking the
        loads and letting the scheduler re-run its checks is always safe.
        """
        waiting = list(self.blocked_loads)
        for loads in self._mem_waiters.values():
            waiting.extend(loads)
        self.blocked_loads = []
        self._mem_waiters = {}
        for load in waiting:
            if load.state is InstState.MEM_BLOCKED:
                self._make_ready(load)

    def _squash_younger(self, seq: int, exempt: frozenset = frozenset()) -> None:
        """Kill everything younger than ``seq`` except exempted sequence
        numbers (an inactive buffer about to be activated)."""
        for rec in self.rob:
            if rec.seq > seq and rec.seq not in exempt \
                    and rec.state is not InstState.SQUASHED:
                self._squash_one(rec)
        # Anything still waiting to dispatch is on the wrong path too;
        # exempted records leave the queue and are force-dispatched by
        # dormant activation.
        for rec in self.dispatch_queue:
            if rec.seq not in exempt and rec.state is not InstState.SQUASHED:
                self._squash_one(rec)
        self.dispatch_queue.clear()
        self.checkpoints = [(s, c) for s, c in self.checkpoints if s <= seq]
        if self.trap_pending is not None and self.trap_pending > seq:
            self.trap_pending = None
        if self.misfetch_waiting is not None and self.misfetch_waiting > seq:
            self.misfetch_waiting = None

    def _squash_one(self, rec: InFlight) -> None:
        previous = rec.state
        rec.state = InstState.SQUASHED
        rec.dependents = []
        rec.checkpoint = None
        if rec.inactive_buffer:
            for dormant in rec.inactive_buffer:
                if dormant.state is not InstState.SQUASHED:
                    self._squash_one(dormant)
            rec.inactive_buffer = None
        in_window = rec.dispatch_cycle >= 0
        if in_window and previous in (
            InstState.DORMANT, InstState.WAITING, InstState.READY, InstState.MEM_BLOCKED
        ):
            self.rs_count[rec.fu] -= 1

    def _find_in_rob(self, seq: int) -> Optional[InFlight]:
        for rec in reversed(self.rob):
            if rec.seq == seq:
                return rec
            if rec.seq < seq:
                return None
        return None

    def _clear_fetch_state(self) -> None:
        self.pending_fetch = None
        self.icache_stall = 0

    def _activate_dormant(self, buffer: List[InFlight]) -> int:
        """Wake inactively issued instructions after their branch
        mispredicted in their favour; returns the fetch resume address."""
        resume = buffer[-1].inst.addr + 1
        core = self.config.core
        for rec in buffer:
            if rec.state is InstState.SQUASHED and rec.dispatch_cycle >= 0:
                # An *older* recovery (e.g. a promoted-branch fault rolling
                # back past this fetch) squashed the buffer while its branch
                # was still unresolved.  The entry is still in the ROB at
                # the right position: resurrect it in place.
                self.rs_count[rec.seq % core.n_fus] += 1
            if rec.dispatch_cycle < 0:
                # Still in (or squashed out of) the dispatch queue: give it
                # its window slot now — it issues as part of the recovery.
                rec.fu = rec.seq % core.n_fus
                self.rs_count[rec.fu] += 1
                self.rob.append(rec)
                rec.dispatch_cycle = self.cycle
            rec.is_active = True
            self._wire_and_execute(rec)
            self.result.dormant_activations += 1
            resume = rec.next_pc
            inst = rec.inst
            if inst.op.is_cond_branch:
                # The embedded trace direction serves as the prediction
                # (these branches were never dynamically predicted).
                # Promoted branches do not get checkpoints, matching the
                # dispatch policy.
                if not rec.promoted:
                    rec.predicted_taken = rec.static_dir
                    self._checkpoint_for(rec)
                self.engine.ghr.push(rec.static_dir)
            elif inst.op is Opcode.CALL:
                self.engine.ras.push(inst.fall_through)
        return resume

    # -------------------------------------------------------------- schedule

    def _schedule(self) -> None:
        core = self.config.core
        for fu in range(core.n_fus):
            heap = self.ready_heaps[fu]
            issued = False
            while heap and not issued:
                _seq, rec = heapq.heappop(heap)
                if rec.state is not InstState.READY:
                    continue  # squashed or stale entry
                if rec.inst.op.is_load:
                    verdict = self._try_schedule_load(rec)
                    if verdict is None:
                        continue  # blocked; parked with the memory scheduler
                    latency = verdict
                else:
                    latency = self._latency_of(rec)
                rec.state = InstState.EXECUTING
                self.rs_count[fu] -= 1
                self.completions.setdefault(self.cycle + latency, []).append(rec)
                issued = True

    def _latency_of(self, rec: InFlight) -> int:
        core = self.config.core
        opclass = rec.inst.op.opclass
        if opclass is OpClass.MUL:
            return core.mul_latency
        return core.alu_latency

    def _older_unknown_store(self, load: InFlight) -> Optional[InFlight]:
        for store in reversed(self.store_queue):
            if store.seq >= load.seq or store.squashed:
                continue
            if not store.addr_known and store.state is not InstState.DONE:
                return store
        return None

    def _youngest_older_matching_store(self, load: InFlight) -> Optional[InFlight]:
        for store in reversed(self.store_queue):
            if store.seq >= load.seq or store.squashed:
                continue
            if store.mem_addr == load.mem_addr:
                return store
        return None

    def _try_schedule_load(self, load: InFlight) -> Optional[int]:
        """Memory scheduling for a load; returns latency or None if blocked."""
        if not self.config.core.perfect_disambiguation:
            blocker = self._older_unknown_store(load)
            if blocker is not None:
                load.state = InstState.MEM_BLOCKED
                self.blocked_loads.append(load)
                return None
        match = self._youngest_older_matching_store(load)
        if match is not None:
            if match.state is not InstState.DONE:
                load.state = InstState.MEM_BLOCKED
                self._mem_waiters.setdefault(match.seq, []).append(load)
                return None
            self.result.load_forwards += 1
            return 1
        self.result.dcache_accesses += 1
        return self.engine.memory.data_latency(load.mem_addr)

    # -------------------------------------------------------------- dispatch

    def _dispatch(self, width: int) -> None:
        dispatched = 0
        checkpoints_this_cycle = 0
        core = self.config.core
        queue = self.dispatch_queue
        while queue and dispatched < width:
            rec = queue[0]
            fu = rec.seq % core.n_fus
            if self.rs_count[fu] >= core.rs_per_fu:
                break  # window full
            # A checkpoint accompanies every fetch-block boundary: each
            # dynamically predicted branch and the end of each fetch.
            needs_cp = rec.is_active and (
                (rec.inst.op.is_cond_branch and not rec.promoted)
                or rec.predicted_next is not None
            )
            if needs_cp and (
                # Reserve three checkpoints for dormant activation: an
                # inactive buffer holds at most three dynamic branches and
                # its checkpoints are created during recovery, outside the
                # dispatch stage's budget check.
                len(self.checkpoints) >= core.max_checkpoints - 3
                or checkpoints_this_cycle > core.checkpoints_per_cycle
            ):
                break  # out of checkpoint resources; resume next cycle
            queue.popleft()
            rec.fu = fu
            self.rs_count[fu] += 1
            self.rob.append(rec)
            rec.dispatch_cycle = self.cycle
            dispatched += 1
            if not rec.is_active:
                rec.state = InstState.DORMANT
                continue
            self._wire_and_execute(rec)
            if needs_cp:
                self._checkpoint_for(rec)
                checkpoints_this_cycle += 1

    def _wire_and_execute(self, rec: InFlight) -> None:
        """Rename, functionally execute, and queue one instruction."""
        inst = rec.inst
        rename = self.rename
        pending = 0
        for reg in inst.src_regs():
            producer = rename[reg]
            if producer is not None and producer.state is not InstState.DONE \
                    and producer.state is not InstState.SQUASHED:
                pending += 1
                producer.dependents.append(rec)
        rec.pending_srcs = pending

        captured = self._store_capture
        captured.clear()
        result = step_instruction(inst, self.spec_regs, self._spec_read,
                                  self._capture_store)
        rec.next_pc = result.next_pc
        rec.taken = result.taken
        rec.mem_addr = result.mem_addr
        rec.value = result.value
        rec.dest = result.dest
        if captured:
            rec.mem_addr, rec.value = captured[0]
        if rec.dest is not None:
            rename[rec.dest] = rec
        op = inst.op
        if op.is_store:
            self.store_queue.append(rec)
        elif op.is_load:
            self.load_queue.append(rec)
        if pending == 0:
            self._make_ready(rec)
        else:
            rec.state = InstState.WAITING

    def _capture_store(self, addr: int, value: int) -> None:
        self._store_capture.append((addr, value))

    def _spec_read(self, addr: int) -> int:
        for store in reversed(self.store_queue):
            if store.mem_addr == addr and not store.squashed:
                return store.value
        return self.memory_image.get(addr, 0)

    def _checkpoint_for(self, rec: InFlight) -> None:
        if rec.cp_snapshot is not None:
            ghr_before, ras_state = rec.cp_snapshot
        else:
            ghr_before = self.engine.ghr.value
            ras_state = self.engine.ras.snapshot()
        if rec.inst.op.is_cond_branch and rec.predicted_taken is not None:
            resume_pc = rec.inst.target if rec.predicted_taken else rec.inst.fall_through
        elif rec.inst.op.is_cond_branch and rec.static_dir is not None:
            # Promoted branch: its static prediction is the fetched path.
            resume_pc = rec.inst.target if rec.static_dir else rec.inst.fall_through
        elif rec.predicted_next is not None:
            resume_pc = rec.predicted_next
        else:
            resume_pc = rec.inst.fall_through
        cp = Checkpoint(
            regs=list(self.spec_regs),
            rename=list(self.rename),
            ghr_before=ghr_before,
            ras_state=ras_state,
            sq_len=len(self.store_queue),
            lq_len=len(self.load_queue),
            seq=rec.seq,
            resume_pc=resume_pc,
        )
        rec.checkpoint = cp
        self.checkpoints.append((rec.seq, cp))

    # ----------------------------------------------------------------- fetch

    def _fetch(self) -> None:
        if self.halted:
            return
        accounting = self.result.cycle_accounting
        if self.trap_pending is not None:
            accounting[CycleCategory.TRAPS] += 1
            return
        if self.misfetch_waiting is not None:
            accounting[CycleCategory.MISFETCHES] += 1
            return
        if self.redirect_bubble > 0:
            self.redirect_bubble -= 1
            accounting[CycleCategory.BRANCH_MISSES] += 1
            return
        if self.icache_stall > 0:
            self.icache_stall -= 1
            accounting[CycleCategory.CACHE_MISSES] += 1
            if self.icache_stall == 0 and self.pending_fetch is not None:
                result, group = self.pending_fetch
                self.pending_fetch = None
                self._enqueue_fetch(result, group)
            return
        if self.dispatch_queue:
            accounting[CycleCategory.FULL_WINDOW] += 1
            return

        result = self.engine.fetch(self.pc)
        if not result.active:
            # Wrong-path fetch ran off the code image; spin until repair.
            accounting[CycleCategory.BRANCH_MISSES] += 1
            return
        self.fetch_id += 1
        group = FetchGroup(self.fetch_id, self.cycle)
        self.result.fetches += 1
        if result.stall_cycles > 0:
            self.icache_stall = result.stall_cycles
            self.pending_fetch = (result, group)
            accounting[CycleCategory.CACHE_MISSES] += 1
            return
        self._fetch_cycle_groups.append((self.cycle, group))
        self._enqueue_fetch(result, group)

    def _enqueue_fetch(self, result: FetchResult, group: FetchGroup) -> None:
        records: List[InFlight] = []
        for idx, inst in enumerate(result.active):
            self.seq += 1
            rec = InFlight(self.seq, inst, group, fetch_cycle=group.cycle)
            if inst.op.is_cond_branch:
                direction = result.active_dirs[idx]
                if result.active_promoted[idx]:
                    rec.promoted = True
                    rec.static_dir = direction
                else:
                    rec.predicted_taken = direction
                snapshot = result.control_snapshots.get(idx)
                if snapshot is not None:
                    rec.cp_snapshot = snapshot
            records.append(rec)
        # Attach the end-of-fetch bookkeeping to the last instruction: the
        # fetch's predicted successor doubles as the final block boundary's
        # checkpoint resume point, and for indirect jumps/returns it is the
        # target to verify at execute.
        last = records[-1]
        if result.next_pc is not None:
            last.predicted_next = result.next_pc
        dormant: List[InFlight] = []
        if result.inactive:
            for idx, inst in enumerate(result.inactive):
                self.seq += 1
                drec = InFlight(self.seq, inst, group, fetch_cycle=group.cycle)
                drec.is_active = False
                if inst.op.is_cond_branch:
                    drec.static_dir = result.inactive_dirs[idx]
                    drec.promoted = result.inactive_promoted[idx]
                dormant.append(drec)
            last.inactive_buffer = dormant
            self.result.inactive_issued += len(dormant)
        # Prediction records attach in order to the dynamic branches.
        rec_iter = iter(result.pred_records)
        for rec in records:
            if rec.inst.op.is_cond_branch and not rec.promoted:
                rec.pred_record = next(rec_iter, None)
        self.dispatch_queue.extend(records)
        self.dispatch_queue.extend(dormant)
        if result.ends_with_trap:
            for rec in records:
                if rec.inst.op.opclass is OpClass.TRAP:
                    self.trap_pending = rec.seq
                    break
        if result.next_pc is None:
            self.misfetch_waiting = last.seq
        else:
            self.pc = result.next_pc

    # ---------------------------------------------------------------- finish

    def _finish(self) -> MachineResult:
        result = self.result
        result.cycles = self.cycle
        # Deferred classification of fetch cycles: useful vs wrong-path.
        for _cycle, group in self._fetch_cycle_groups:
            if group.retired_any:
                result.cycle_accounting[CycleCategory.USEFUL_FETCH] += 1
            else:
                result.cycle_accounting[CycleCategory.BRANCH_MISSES] += 1
        if self.fill_unit is not None:
            self.fill_unit.flush()
            result.fill_reasons = dict(self.fill_unit.finalize_reasons)
            if self.fill_unit.bias_table is not None:
                result.promotions = self.fill_unit.bias_table.promotions
                result.demotions = self.fill_unit.bias_table.demotions
        trace_cache = getattr(self.engine, "trace_cache", None)
        if trace_cache is not None:
            result.tc_hits = trace_cache.stats.hits
            result.tc_misses = trace_cache.stats.misses
        result.l1i_misses = self.engine.memory.l1i.stats.misses
        return result


def simulate(program: Program, config: MachineConfig,
             max_instructions: Optional[int] = 100_000) -> MachineResult:
    """Convenience wrapper: build a machine, run it, return the result."""
    return Machine(program, config, max_instructions=max_instructions).run()
