"""In-flight instruction records, checkpoints, and fetch groups."""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.isa.instruction import Instruction


class InstState(enum.Enum):
    """Lifecycle of an in-flight instruction in the window."""

    DORMANT = "dormant"    # inactively issued; occupies the window, not runnable
    WAITING = "waiting"    # dispatched, operands outstanding
    READY = "ready"        # operands available, awaiting a function unit
    MEM_BLOCKED = "memblk" # load waiting on the memory scheduler
    EXECUTING = "exec"     # issued to a function unit
    DONE = "done"          # completed
    SQUASHED = "squashed"  # killed by recovery


class FetchGroup:
    """Shared bookkeeping for all instructions of one fetch.

    Carries the retire-time actual outcomes of the fetch's dynamically
    predicted branches so the multiple branch predictor can select the
    right tree counter for B1/B2 updates.
    """

    __slots__ = ("fetch_id", "cycle", "actual_path", "retired_any")

    def __init__(self, fetch_id: int, cycle: int):
        self.fetch_id = fetch_id
        self.cycle = cycle
        self.actual_path: List[bool] = []
        self.retired_any = False


class Checkpoint:
    """A checkpoint-repair snapshot taken at a fetch-block boundary.

    Restores the speculative register file, rename table, global history
    (pre-branch, so the repair can push the actual outcome), return address
    stack, and the store/load queue high-water marks.
    """

    __slots__ = ("regs", "rename", "ghr_before", "ras_state", "sq_len", "lq_len",
                 "seq", "resume_pc")

    def __init__(self, regs, rename, ghr_before, ras_state, sq_len, lq_len, seq,
                 resume_pc=None):
        self.regs = regs
        self.rename = rename
        self.ghr_before = ghr_before
        self.ras_state = ras_state
        self.sq_len = sq_len
        self.lq_len = lq_len
        self.seq = seq
        self.resume_pc = resume_pc


class InFlight:
    """One instruction in the machine's window."""

    __slots__ = (
        "seq", "inst", "group", "state", "fu",
        "pending_srcs", "dependents", "cp_snapshot",
        # functional results (filled at dispatch-time speculative execution)
        "next_pc", "taken", "mem_addr", "value", "dest",
        # branch metadata
        "pred_record", "predicted_taken", "promoted", "static_dir",
        "predicted_next", "checkpoint", "inactive_buffer",
        # memory scheduling
        "store_blockers", "forward_from", "addr_known",
        # timing
        "fetch_cycle", "dispatch_cycle", "complete_cycle",
        "is_active",
    )

    def __init__(self, seq: int, inst: Instruction, group: FetchGroup, fetch_cycle: int):
        self.seq = seq
        self.inst = inst
        self.group = group
        self.state = InstState.WAITING
        self.fu = -1
        self.pending_srcs = 0
        self.dependents: List["InFlight"] = []
        self.next_pc: Optional[int] = None
        self.taken: Optional[bool] = None
        self.mem_addr: Optional[int] = None
        self.value: Optional[int] = None
        self.dest: Optional[int] = None
        self.pred_record = None
        self.cp_snapshot = None
        self.predicted_taken: Optional[bool] = None
        self.promoted = False
        self.static_dir: Optional[bool] = None
        self.predicted_next: Optional[int] = None
        self.checkpoint: Optional[Checkpoint] = None
        self.inactive_buffer = None  # list of (inst, dir, promoted) past a divergence
        self.store_blockers = 0
        self.forward_from: Optional["InFlight"] = None
        self.addr_known = False
        self.fetch_cycle = fetch_cycle
        self.dispatch_cycle = -1
        self.complete_cycle = -1
        self.is_active = True

    @property
    def squashed(self) -> bool:
        return self.state is InstState.SQUASHED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<InFlight #{self.seq} {self.inst.disassemble()} {self.state.value}>"
