"""In-flight instruction records, checkpoints, and fetch groups."""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.isa.instruction import Instruction


class InstState(enum.IntEnum):
    """Lifecycle of an in-flight instruction in the window.

    An ``IntEnum`` whose values the core stores as plain ints on
    :attr:`InFlight.state`: state tests run tens of millions of times per
    simulation and small-int comparison avoids the Python-level enum
    identity/attribute machinery.  The numeric order is meaningful — every
    state below :data:`EXECUTING` still occupies a reservation-station
    slot, which the squash path exploits with a single ``<`` test.
    """

    DORMANT = 0      # inactively issued; occupies the window, not runnable
    WAITING = 1      # dispatched, operands outstanding
    READY = 2        # operands available, awaiting a function unit
    MEM_BLOCKED = 3  # load waiting on the memory scheduler
    EXECUTING = 4    # issued to a function unit
    DONE = 5         # completed
    SQUASHED = 6     # killed by recovery


# Plain-int aliases for the core's hot loops.
S_DORMANT = 0
S_WAITING = 1
S_READY = 2
S_MEM_BLOCKED = 3
S_EXECUTING = 4
S_DONE = 5
S_SQUASHED = 6


class FetchGroup:
    """Shared bookkeeping for all instructions of one fetch.

    Carries the retire-time actual outcomes of the fetch's dynamically
    predicted branches so the multiple branch predictor can select the
    right tree counter for B1/B2 updates.
    """

    __slots__ = ("fetch_id", "cycle", "actual_path", "retired_any")

    def __init__(self, fetch_id: int, cycle: int):
        self.fetch_id = fetch_id
        self.cycle = cycle
        self.actual_path: List[bool] = []
        self.retired_any = False


class Checkpoint:
    """A checkpoint-repair snapshot taken at a fetch-block boundary.

    Restores the speculative register file, rename table, global history
    (pre-branch, so the repair can push the actual outcome), return address
    stack, and the store/load queue high-water marks.
    """

    __slots__ = ("regs", "rename", "ghr_before", "ras_state", "sq_len", "lq_len",
                 "seq", "resume_pc")

    def __init__(self, regs, rename, ghr_before, ras_state, sq_len, lq_len, seq,
                 resume_pc=None):
        self.regs = regs
        self.rename = rename
        self.ghr_before = ghr_before
        self.ras_state = ras_state
        self.sq_len = sq_len
        self.lq_len = lq_len
        self.seq = seq
        self.resume_pc = resume_pc


class InFlight:
    """One instruction in the machine's window.

    Dependence metadata is pre-resolved once: ``dependents`` starts as
    ``None`` (most instructions complete with no waiter, so the list is
    allocated lazily on first registration), and ``cp_need`` caches the
    dispatch stage's checkpoint-boundary test, assigned when the record is
    enqueued from a fetch.

    ``sq_live`` mirrors store-queue membership for store records (set at
    dispatch, cleared at commit or recovery truncation) so the core's
    per-address store index can filter departed entries without scanning
    the queue; it is only ever assigned/read for stores.
    """

    __slots__ = (
        "seq", "inst", "group", "state", "fu",
        "pending_srcs", "dependents", "cp_snapshot",
        # functional results (filled at dispatch-time speculative execution)
        "next_pc", "taken", "mem_addr", "value", "dest",
        # branch metadata
        "pred_record", "predicted_taken", "promoted", "static_dir",
        "predicted_next", "checkpoint", "inactive_buffer", "cp_need",
        # memory scheduling
        "addr_known", "sq_live",
        # timing
        "fetch_cycle", "dispatch_cycle",
        "is_active",
    )

    def __init__(self, seq: int, inst: Instruction, group: FetchGroup, fetch_cycle: int):
        # The functional-result slots (next_pc, taken, mem_addr, value,
        # dest) and pending_srcs are deliberately NOT initialized here:
        # the core assigns all of them unconditionally when the record is
        # wired at dispatch, and nothing reads them before that.  The
        # branch-metadata slots (promoted, static_dir, predicted_taken,
        # pred_record) are likewise left unset: every read of them is
        # gated on the record being a conditional branch, and the core's
        # fetch-enqueue stage assigns all of them for every branch record.
        # One record is allocated per fetched instruction (wrong path
        # included), so the constructor is a hot path.
        self.seq = seq
        self.inst = inst
        self.group = group
        self.state = S_WAITING
        self.fu = -1
        self.dependents: Optional[List["InFlight"]] = None
        self.cp_snapshot = None
        self.predicted_next: Optional[int] = None
        self.checkpoint: Optional[Checkpoint] = None
        self.inactive_buffer = None  # dormant InFlights past a divergence
        self.cp_need = False
        self.addr_known = False
        self.fetch_cycle = fetch_cycle
        self.dispatch_cycle = -1
        self.is_active = True

    @property
    def squashed(self) -> bool:
        return self.state == S_SQUASHED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<InFlight #{self.seq} {self.inst.disassemble()} "
                f"{InstState(self.state).name.lower()}>")
